"""Brute-force enumeration solvers.

These exist to *validate* the clever solvers: they enumerate every
schedule of small instances and take the argmin, which makes them the
ground truth in unit and property-based tests.

Sizes are guarded: single-task enumeration visits ``2^(n-1)``
partitions, multi-task enumeration ``2^(m·(n-1))`` indicator matrices.

The multi-task enumeration no longer scores one
:func:`~repro.core.sync_cost.sync_switch_cost` call per matrix: the
indicator matrices are *generated in chunks* straight from the binary
counter (bit tricks instead of :func:`itertools.product`) and each
chunk is scored with a single lane-packed
:meth:`~repro.core.packed.PackedProblem.population_cost` call —
bit-identical costs, thousands of schedules per NumPy dispatch.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import product

import numpy as np

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.machine import MachineModel
from repro.core.packed import PackedProblem
from repro.core.schedule import MultiTaskSchedule, SingleTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult, SolveResult

__all__ = [
    "enumerate_single_schedules",
    "enumerate_mt_schedules",
    "indicator_chunks",
    "solve_single_exhaustive",
    "solve_mt_exhaustive",
]

_MAX_SINGLE_N = 18
_MAX_MT_BITS = 22


def enumerate_single_schedules(n: int) -> Iterator[SingleTaskSchedule]:
    """Yield every partition of ``n`` steps into consecutive blocks."""
    if n == 0:
        yield SingleTaskSchedule(n=0, hyper_steps=())
        return
    for bits in product((False, True), repeat=n - 1):
        steps = (0,) + tuple(i + 1 for i, b in enumerate(bits) if b)
        yield SingleTaskSchedule(n=n, hyper_steps=steps)


def solve_single_exhaustive(seq: RequirementSequence, w: float) -> SolveResult:
    """Ground-truth single-task optimum by full enumeration."""
    n = len(seq)
    if n > _MAX_SINGLE_N:
        raise ValueError(
            f"exhaustive single-task search limited to n ≤ {_MAX_SINGLE_N}"
        )
    best_cost = float("inf")
    best_schedule = None
    count = 0
    for schedule in enumerate_single_schedules(n):
        count += 1
        cost = switch_cost(seq, schedule, w) if n else 0.0
        if cost < best_cost:
            best_cost = cost
            best_schedule = schedule
    return SolveResult(
        schedule=best_schedule,
        cost=best_cost if n else 0.0,
        optimal=True,
        solver="single_exhaustive",
        stats={"evaluated": count},
    )


def enumerate_mt_schedules(m: int, n: int) -> Iterator[MultiTaskSchedule]:
    """Yield every m × n indicator matrix with an all-ones first column."""
    if n == 0:
        yield MultiTaskSchedule([[ ] for _ in range(m)])
        return
    free_bits = m * (n - 1)
    for assignment in product((False, True), repeat=free_bits):
        rows = []
        k = 0
        for _ in range(m):
            row = [True] + list(assignment[k : k + n - 1])
            k += n - 1
            rows.append(row)
        yield MultiTaskSchedule(rows)


def indicator_chunks(
    m: int, n: int, chunk_size: int = 4096
) -> Iterator[np.ndarray]:
    """Yield ``(C, m, n)`` boolean indicator chunks in enumeration order.

    Matches :func:`enumerate_mt_schedules` matrix for matrix: the
    ``m·(n-1)`` free bits count down from the most significant
    assignment position (the :func:`itertools.product` order), but an
    entire chunk materializes from one shift-and-mask over the binary
    counter instead of per-matrix Python tuples.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if n == 0:
        yield np.zeros((1, m, 0), dtype=bool)
        return
    free_bits = m * (n - 1)
    total = 1 << free_bits
    shifts = np.arange(free_bits - 1, -1, -1, dtype=np.int64)
    for lo in range(0, total, chunk_size):
        counters = np.arange(lo, min(lo + chunk_size, total), dtype=np.int64)
        bits = (counters[:, None] >> shifts[None, :]) & 1
        chunk = np.ones((len(counters), m, n), dtype=bool)
        chunk[:, :, 1:] = bits.astype(bool).reshape(len(counters), m, n - 1)
        yield chunk


def solve_mt_exhaustive(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    w: float = 0.0,
    chunk_size: int = 4096,
) -> MTSolveResult:
    """Ground-truth fully synchronized MT-Switch optimum.

    Enumerates all ``2^(m(n-1))`` indicator matrices; refuses instances
    beyond ~4M schedules.  Chunks of ``chunk_size`` matrices are scored
    with one lane-packed population call each (machine classes without
    partial hyperreconfiguration keep only the aligned matrices, the
    same set the per-matrix reference evaluation accepted).
    """
    m = system.m
    n = len(seqs[0]) if seqs else 0
    if m * max(0, n - 1) > _MAX_MT_BITS:
        raise ValueError(
            f"exhaustive multi-task search limited to m(n-1) ≤ {_MAX_MT_BITS}"
        )
    if model is None:
        model = MachineModel.paper_experimental()
    packed = PackedProblem.compile(system, seqs, model)
    best_cost = float("inf")
    best_rows: np.ndarray | None = None
    count = 0
    chunks = 0
    for chunk in indicator_chunks(m, n, chunk_size):
        if not packed.partial_hyper_ok:
            aligned = (chunk == chunk[:, :1, :]).all(axis=(1, 2))
            chunk = chunk[aligned]
            if not len(chunk):
                continue
        chunks += 1
        costs = packed.population_cost(chunk, w=w)
        count += len(chunk)
        k = int(np.argmin(costs))
        if costs[k] < best_cost:
            best_cost = float(costs[k])
            best_rows = chunk[k]
    if best_rows is None:
        raise ValueError("no feasible schedule found")
    return MTSolveResult(
        schedule=MultiTaskSchedule(best_rows.tolist()),
        cost=best_cost,
        optimal=True,
        solver="mt_exhaustive",
        stats={"evaluated": count, "chunks": chunks},
    )
