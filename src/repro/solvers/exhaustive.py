"""Brute-force enumeration solvers.

These exist to *validate* the clever solvers: they enumerate every
schedule of small instances and take the argmin, which makes them the
ground truth in unit and property-based tests.

Sizes are guarded: single-task enumeration visits ``2^(n-1)``
partitions, multi-task enumeration ``2^(m·(n-1))`` indicator matrices.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from itertools import product

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.machine import MachineModel
from repro.core.schedule import MultiTaskSchedule, SingleTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult, SolveResult

__all__ = [
    "enumerate_single_schedules",
    "enumerate_mt_schedules",
    "solve_single_exhaustive",
    "solve_mt_exhaustive",
]

_MAX_SINGLE_N = 18
_MAX_MT_BITS = 22


def enumerate_single_schedules(n: int) -> Iterator[SingleTaskSchedule]:
    """Yield every partition of ``n`` steps into consecutive blocks."""
    if n == 0:
        yield SingleTaskSchedule(n=0, hyper_steps=())
        return
    for bits in product((False, True), repeat=n - 1):
        steps = (0,) + tuple(i + 1 for i, b in enumerate(bits) if b)
        yield SingleTaskSchedule(n=n, hyper_steps=steps)


def solve_single_exhaustive(seq: RequirementSequence, w: float) -> SolveResult:
    """Ground-truth single-task optimum by full enumeration."""
    n = len(seq)
    if n > _MAX_SINGLE_N:
        raise ValueError(
            f"exhaustive single-task search limited to n ≤ {_MAX_SINGLE_N}"
        )
    best_cost = float("inf")
    best_schedule = None
    count = 0
    for schedule in enumerate_single_schedules(n):
        count += 1
        cost = switch_cost(seq, schedule, w) if n else 0.0
        if cost < best_cost:
            best_cost = cost
            best_schedule = schedule
    return SolveResult(
        schedule=best_schedule,
        cost=best_cost if n else 0.0,
        optimal=True,
        solver="single_exhaustive",
        stats={"evaluated": count},
    )


def enumerate_mt_schedules(m: int, n: int) -> Iterator[MultiTaskSchedule]:
    """Yield every m × n indicator matrix with an all-ones first column."""
    if n == 0:
        yield MultiTaskSchedule([[ ] for _ in range(m)])
        return
    free_bits = m * (n - 1)
    for assignment in product((False, True), repeat=free_bits):
        rows = []
        k = 0
        for _ in range(m):
            row = [True] + list(assignment[k : k + n - 1])
            k += n - 1
            rows.append(row)
        yield MultiTaskSchedule(rows)


def solve_mt_exhaustive(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    w: float = 0.0,
) -> MTSolveResult:
    """Ground-truth fully synchronized MT-Switch optimum.

    Enumerates all ``2^(m(n-1))`` indicator matrices; refuses instances
    beyond ~4M schedules.
    """
    m = system.m
    n = len(seqs[0]) if seqs else 0
    if m * max(0, n - 1) > _MAX_MT_BITS:
        raise ValueError(
            f"exhaustive multi-task search limited to m(n-1) ≤ {_MAX_MT_BITS}"
        )
    best_cost = float("inf")
    best_schedule = None
    count = 0
    for schedule in enumerate_mt_schedules(m, n):
        try:
            cost = sync_switch_cost(system, seqs, schedule, model, w=w)
        except Exception:
            continue  # machine-class constraint violations etc.
        count += 1
        if cost < best_cost:
            best_cost = cost
            best_schedule = schedule
    if best_schedule is None:
        raise ValueError("no feasible schedule found")
    return MTSolveResult(
        schedule=best_schedule,
        cost=best_cost,
        optimal=True,
        solver="mt_exhaustive",
        stats={"evaluated": count},
    )
