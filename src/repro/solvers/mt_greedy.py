"""Greedy constructions and local search for the MT-Switch problem.

Three cheap schedule constructions plus a hill-climbing local search;
these serve as baselines, GA seeds, and as the comparison points of the
solver-quality ablation (experiment E4):

* :func:`solve_mt_from_single` — solve the merged single-task instance
  optimally and copy its partition to every task.  Under task-parallel
  uploads this never costs more than the single-task optimum (the
  per-step maxima are bounded by the single-task terms), which yields
  the guaranteed multi-task win reported in Section 6.
* :func:`solve_mt_independent` — each task solves its own single-task
  DP with ``w = v_j``, ignoring the cross-task ``max`` coupling.
* :func:`local_search` — first-improvement bit-flip hill climbing on
  the indicator matrix.
* :func:`solve_mt_greedy_merge` — best construction + local search.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.context import RequirementSequence
from repro.core.delta import (
    ColumnFlipMove,
    FlipMove,
    make_evaluator,
    merge_evaluator_stats,
)
from repro.core.machine import MachineModel
from repro.core.packed import PackedProblem
from repro.core.schedule import MultiTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.single_dp import solve_single_switch

__all__ = [
    "combined_sequence",
    "solve_mt_from_single",
    "solve_mt_independent",
    "local_search",
    "solve_mt_greedy_merge",
]


def combined_sequence(
    seqs: Sequence[RequirementSequence],
) -> RequirementSequence:
    """Merge per-task sequences into the whole-machine sequence.

    Step ``i`` of the result is the union of every task's step ``i``
    requirement — the m = 1 view of the same computation.
    """
    if not seqs:
        raise ValueError("need at least one sequence")
    universe = seqs[0].universe
    n = len(seqs[0])
    for s in seqs:
        if s.universe != universe or len(s) != n:
            raise ValueError("sequences must share universe and length")
    merged = [0] * n
    for s in seqs:
        for i, m in enumerate(s.masks):
            merged[i] |= m
    return RequirementSequence(universe, merged)


def solve_mt_from_single(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    w_single: float | None = None,
) -> MTSolveResult:
    """Copy the merged-instance single-task optimum to all tasks.

    ``w_single`` is the hyperreconfiguration cost of the merged task;
    it defaults to ``Σ_j v_j`` (for the SHyRA split with default
    ``v_j = l_j`` this is ``|X| = 48``, the paper's single-task ``w``).
    """
    if w_single is None:
        w_single = sum(system.v)
    merged = combined_sequence(seqs)
    single = solve_single_switch(merged, w_single)
    schedule = MultiTaskSchedule.from_single(single.schedule, system.m)
    cost = sync_switch_cost(system, seqs, schedule, model)
    return MTSolveResult(
        schedule=schedule,
        cost=cost,
        optimal=False,
        solver="mt_from_single",
        stats={"single_cost": single.cost},
    )


def solve_mt_independent(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
) -> MTSolveResult:
    """Per-task single-task DPs, ignoring the cross-task coupling.

    Each task partitions its own sequence optimally for the objective
    ``r_j·v_j + Σ |h| · len``; the resulting rows are then evaluated
    jointly.  Good when one task dominates the per-step maxima, weak
    when hyper steps should be aligned to share the ``max I·v`` term.
    """
    steps_per_task = []
    for task, seq in zip(system.tasks, seqs):
        result = solve_single_switch(seq, task.v)
        steps_per_task.append(result.schedule.hyper_steps)
    schedule = MultiTaskSchedule.from_hyper_steps(
        system.m, len(seqs[0]), steps_per_task
    )
    cost = sync_switch_cost(system, seqs, schedule, model)
    return MTSolveResult(
        schedule=schedule,
        cost=cost,
        optimal=False,
        solver="mt_independent",
        stats={},
    )


def local_search(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    schedule: MultiTaskSchedule,
    model: MachineModel | None = None,
    *,
    max_passes: int = 20,
    packed: PackedProblem | None = None,
) -> MTSolveResult:
    """First-improvement hill climbing over indicator bit flips.

    Repeatedly sweeps all ``(task, step ≥ 1)`` positions, toggling each
    indicator and keeping the flip whenever the synchronized cost
    decreases; stops at a local optimum or after ``max_passes`` sweeps.
    Flips are scored through the incremental
    :class:`~repro.core.delta.DeltaEvaluator` (only the perturbed block
    is re-evaluated), which leaves the accept/reject trajectory — and
    therefore the result — bit-identical to full re-evaluation.
    """
    m, n = schedule.m, schedule.n
    # On machines that cannot hyperreconfigure task subsets the rows must
    # stay identical, so the moves are whole-column flips.
    column_moves = model is not None and not model.machine_class.allows_partial_hyper
    evaluator = make_evaluator(system, seqs, schedule, model, packed=packed)
    best_cost = evaluator.cost
    evaluations = 1
    improved = True
    passes = 0

    task_range = range(1) if column_moves else range(m)
    while improved and passes < max_passes:
        improved = False
        passes += 1
        for j in task_range:
            for i in range(1, n):
                move = ColumnFlipMove(step=i) if column_moves else FlipMove(
                    task=j, step=i
                )
                cost = evaluator.apply(move)
                evaluations += 1
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    improved = True
                else:
                    evaluator.revert()
    stats = {"passes": passes, "evaluations": evaluations}
    merge_evaluator_stats(stats, evaluator.stats)
    return MTSolveResult(
        schedule=MultiTaskSchedule(evaluator.rows),
        cost=best_cost,
        optimal=False,
        solver="local_search",
        stats=stats,
    )


def solve_mt_greedy_merge(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    packed: PackedProblem | None = None,
) -> MTSolveResult:
    """Best greedy construction refined by local search.

    ``packed`` optionally reuses an already-compiled
    :class:`~repro.core.packed.PackedProblem` for the local-search
    evaluator (the batch engine compiles one per structurally-deduped
    request).
    """
    n = len(seqs[0]) if seqs else 0
    baseline_schedule = MultiTaskSchedule.initial_only(system.m, n)
    candidates = [
        solve_mt_from_single(system, seqs, model),
        MTSolveResult(
            schedule=baseline_schedule,
            cost=sync_switch_cost(system, seqs, baseline_schedule, model),
            optimal=False,
            solver="mt_initial_only",
            stats={},
        ),
    ]
    if model is None or model.machine_class.allows_partial_hyper:
        candidates.append(solve_mt_independent(system, seqs, model))
    start = min(candidates, key=lambda r: r.cost)
    refined = local_search(system, seqs, start.schedule, model, packed=packed)
    if refined.cost <= start.cost:
        result = refined
    else:  # pragma: no cover - local search never worsens its start
        result = start
    stats = {"start": start.solver, "start_cost": start.cost}
    merge_evaluator_stats(stats, refined.stats)
    return MTSolveResult(
        schedule=result.schedule,
        cost=result.cost,
        optimal=False,
        solver="mt_greedy_merge",
        stats=stats,
    )
