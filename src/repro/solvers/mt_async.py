"""Exact solver for the *asynchronous* MT-Switch model.

On a non-synchronized machine (Section 4.1) the total
(hyper)reconfiguration time of a phase is

    w + max_j Σ_i (v_j + |h_ij| · |S_ji|)

and each task partitions its own requirement sequence independently —
the objective decomposes, so minimizing the max means minimizing every
task's own total.  Each per-task problem is a single-task switch-model
instance with hyperreconfiguration cost ``v_j``, solved optimally by
the O(n²) DP.  The asynchronous problem is therefore polynomial even
without the synchronized-step structure of Theorem 1.

This also yields the clean comparison of the two machine philosophies:
:func:`async_vs_sync_gap` quantifies how much the barrier-synchronized
machine loses (or gains, through task-parallel uploads hiding small
tasks under big ones) on the same workload.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.mt_cost import async_switch_cost
from repro.core.schedule import SingleTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import SolveResult
from repro.solvers.single_dp import solve_single_switch

__all__ = ["AsyncSolveResult", "solve_mt_async", "async_vs_sync_gap"]


@dataclass(frozen=True)
class AsyncSolveResult:
    """Result of the asynchronous multi-task solver.

    Attributes
    ----------
    schedules:
        One optimal single-task schedule per task.
    cost:
        ``w + max_j`` of the per-task optima.
    per_task_costs:
        The individual task totals (the argmax task is the phase's
        critical path).
    """

    schedules: tuple[SingleTaskSchedule, ...]
    cost: float
    per_task_costs: tuple[float, ...]
    optimal: bool
    solver: str

    @property
    def critical_task(self) -> int:
        """Index of the task that determines the phase length."""
        return max(
            range(len(self.per_task_costs)),
            key=lambda j: self.per_task_costs[j],
        )


def solve_mt_async(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    *,
    w: float = 0.0,
) -> AsyncSolveResult:
    """Optimal asynchronous MT-Switch scheduling (exact, polynomial).

    ``seqs[j]`` may have different lengths (asynchronous tasks are not
    step-aligned).  ``w`` is the global hyperreconfiguration cost that
    opened the phase (0 with only local resources).
    """
    if len(seqs) != system.m:
        raise ValueError("need one sequence per task")
    if w < 0:
        raise ValueError("global hyperreconfiguration cost w must be non-negative")
    schedules: list[SingleTaskSchedule] = []
    totals: list[float] = []
    for task, seq in zip(system.tasks, seqs):
        if len(seq) == 0:
            schedules.append(SingleTaskSchedule(n=0, hyper_steps=()))
            totals.append(0.0)
            continue
        result: SolveResult = solve_single_switch(seq, w=task.v)
        schedules.append(result.schedule)
        totals.append(result.cost)
    cost = async_switch_cost(system, seqs, schedules, w=w)
    expected = w + (max(totals) if totals else 0.0)
    if abs(cost - expected) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError("async cost decomposition mismatch")
    return AsyncSolveResult(
        schedules=tuple(schedules),
        cost=cost,
        per_task_costs=tuple(totals),
        optimal=True,
        solver="mt_async",
    )


def async_vs_sync_gap(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    sync_model: MachineModel | None = None,
) -> dict[str, float]:
    """Compare the asynchronous optimum with a synchronized schedule.

    Uses the asynchronous per-task optima aligned onto the synchronized
    machine (same indicator rows) so both numbers describe the *same*
    hyperreconfiguration decisions under the two execution models.
    Requires step-aligned sequences.
    """
    from repro.core.schedule import MultiTaskSchedule

    n = len(seqs[0])
    if any(len(s) != n for s in seqs):
        raise ValueError("gap comparison needs step-aligned sequences")
    async_result = solve_mt_async(system, seqs)
    rows = [schedule.hyper_steps for schedule in async_result.schedules]
    mt = MultiTaskSchedule.from_hyper_steps(system.m, n, rows)
    sync_cost = sync_switch_cost(system, seqs, mt, sync_model)
    return {
        "async_optimal": async_result.cost,
        "sync_same_schedule": sync_cost,
        "ratio": sync_cost / async_result.cost if async_result.cost else 1.0,
    }
