"""Dynamic program for the single-task DAG cost model.

In the DAG model (Section 2) the machine offers an explicit set ``H``
of hypercontexts with per-reconfiguration costs ``cost(h)`` and a
constant hyperreconfiguration cost ``w``; a computation pays

    r·w + Σ_i cost(h_i)·|S_i|

where block ``S_i`` is feasible under ``h_i`` iff every requirement
token of the block lies in ``h_i(C)``.  Unlike the switch model the
candidate hypercontexts are enumerated, not derived, so the DP carries
a feasibility set per window:

    D[j] = min_{i<j} D[i] + w + min{cost(h) : h satisfies tokens[i..j)}·(j-i)

Window feasibility is intersected incrementally as bitmasks over the
node list, giving O(n²·(|H|/wordsize + |H|)) time — comfortably
polynomial in the instance size ``n + |H|`` noted by the paper.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.core.hypercontext import DagHypercontextSystem

__all__ = ["DagBlock", "DagSolveResult", "solve_dag", "dag_schedule_cost"]


@dataclass(frozen=True)
class DagBlock:
    """One phase of a DAG-model schedule: window + installed node."""

    start: int
    stop: int
    node: str


@dataclass(frozen=True)
class DagSolveResult:
    """Schedule and cost returned by :func:`solve_dag`."""

    blocks: tuple[DagBlock, ...]
    cost: float
    optimal: bool
    solver: str
    stats: dict


def dag_schedule_cost(
    system: DagHypercontextSystem,
    tokens: Sequence[Hashable],
    blocks: Sequence[DagBlock],
) -> float:
    """Evaluate (and validate) an explicit DAG-model schedule."""
    expected = 0
    total = 0.0
    for block in blocks:
        if block.start != expected:
            raise ValueError("blocks must tile the sequence without gaps")
        if block.stop <= block.start or block.stop > len(tokens):
            raise ValueError("invalid block window")
        node = system.node(block.node)
        for t in tokens[block.start : block.stop]:
            if not node.satisfies(t):
                raise ValueError(
                    f"hypercontext {block.node!r} does not satisfy token {t!r}"
                )
        total += system.init_cost + node.cost * (block.stop - block.start)
        expected = block.stop
    if expected != len(tokens):
        raise ValueError("blocks do not cover the whole sequence")
    return total


def solve_dag(
    system: DagHypercontextSystem,
    tokens: Sequence[Hashable],
) -> DagSolveResult:
    """Optimal DAG-model schedule for a token sequence.

    Raises ``ValueError`` when some token is satisfied by no
    hypercontext (cannot happen for well-formed systems, which include
    a top hypercontext with ``h(C) = C`` — unknown tokens are the only
    way to trigger it).
    """
    n = len(tokens)
    names = list(system.node_names)
    index = {name: k for k, name in enumerate(names)}
    full = (1 << len(names)) - 1

    sat_cache: dict[Hashable, int] = {}
    for t in tokens:
        if t in sat_cache:
            continue
        mask = 0
        for name in system.satisfying(t):
            mask |= 1 << index[name]
        if mask == 0:
            raise ValueError(f"no hypercontext satisfies token {t!r}")
        sat_cache[t] = mask

    # Nodes in increasing cost order for cheapest-feasible lookups.
    by_cost = sorted(names, key=lambda nm: (system.node(nm).cost, nm))
    by_cost_bits = [1 << index[nm] for nm in by_cost]

    if n == 0:
        return DagSolveResult((), 0.0, True, "dag_dp", {"states": 0})

    INF = float("inf")
    best = [INF] * (n + 1)
    best[0] = 0.0
    parent: list[tuple[int, str]] = [(-1, "")] * (n + 1)
    states = 0
    for j in range(1, n + 1):
        feasible = full
        for i in range(j - 1, -1, -1):
            feasible &= sat_cache[tokens[i]]
            if feasible == 0:
                break  # longer windows can only shrink the set further
            states += 1
            # cheapest node inside the feasible mask
            for nm, bit in zip(by_cost, by_cost_bits):
                if feasible & bit:
                    cand = (
                        best[i]
                        + system.init_cost
                        + system.node(nm).cost * (j - i)
                    )
                    if cand < best[j]:
                        best[j] = cand
                        parent[j] = (i, nm)
                    break
    if best[n] == INF:
        raise ValueError("no feasible DAG-model schedule exists")

    blocks: list[DagBlock] = []
    j = n
    while j > 0:
        i, nm = parent[j]
        blocks.append(DagBlock(start=i, stop=j, node=nm))
        j = i
    blocks.reverse()
    cost = dag_schedule_cost(system, tokens, blocks)
    if abs(cost - best[n]) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError("DAG DP cost mismatch")
    return DagSolveResult(
        blocks=tuple(blocks),
        cost=cost,
        optimal=True,
        solver="dag_dp",
        stats={"states": states},
    )
