"""Branch & bound for the fully synchronized MT-Switch problem.

A second *exact* solver, independent of the window-commitment DP in
:mod:`repro.solvers.mt_exact`: depth-first search over the per-step
hyperreconfiguration subsets with an admissible completion bound.  Two
exact solvers built on different formulations cross-validating each
other is the strongest correctness evidence the library can offer for
Theorem 1's problem.

Search space.  Steps are processed left to right; at step ``i`` the
search branches over the subset ``T ⊆ [m]`` of tasks hyperreconfiguring
(step 0: all tasks).  The partial state carries each task's *tentative*
block start; a block's cost is only known at its end, so partial costs
charge the **requirement-size bound** ``agg_j |c_{j,k}|`` per processed
step (every step pays at least its own requirements) plus the exact
correction once blocks close.  Implementation detail: instead of
deferred corrections we evaluate completed prefixes exactly by keeping,
per task, the running union since the block start — the per-step charge
``agg_j |u_{j,k}|`` with the *prefix* union is a valid lower bound on
the true (full-block-union) charge and becomes exact when the block
closes, so the search prunes on it and re-evaluates candidate leaves
with the reference cost function.

Remaining-steps bound: ``Σ_{k>i} agg_j |c_{j,k}|`` (suffix requirement
mass), precomputed once.

Candidate leaves are re-evaluated exactly through the lane-packed
representation (:mod:`repro.core.packed`, bit-identical to the
reference) — and *batched*: leaves accumulate into a frontier that is
scored with one :meth:`~repro.core.packed.PackedProblem.population_cost`
call per ``frontier_size`` candidates, amortizing the NumPy dispatch
the way the GA's generation evaluation does.  Deferring a leaf's score
until its frontier flushes can leave the incumbent bound momentarily
stale (never too tight), so the search stays exact — it may only
expand a few more nodes than the leaf-at-a-time variant.  The final
incumbent is still cross-checked against the reference oracle before
returning.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations

import numpy as np

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel, UploadMode
from repro.core.packed import PackedProblem
from repro.core.schedule import MultiTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.mt_greedy import solve_mt_greedy_merge

__all__ = ["solve_mt_branch_bound"]


def solve_mt_branch_bound(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    max_nodes: int = 5_000_000,
    packed: PackedProblem | None = None,
    frontier_size: int = 32,
) -> MTSolveResult:
    """Exact DFS with admissible pruning (small instances).

    Raises ``ValueError`` when the node budget is exhausted — never
    silently inexact.  ``packed`` optionally reuses an
    already-compiled :class:`~repro.core.packed.PackedProblem` for the
    leaf evaluations and the greedy warm start.  ``frontier_size``
    controls how many candidate leaves are collected before one batched
    ``population_cost`` call scores them (1 restores leaf-at-a-time
    evaluation).
    """
    if frontier_size < 1:
        raise ValueError("frontier_size must be positive")
    if model is None:
        model = MachineModel.paper_experimental()
    m = system.m
    n = len(seqs[0])
    for s in seqs:
        if len(s) != n:
            raise ValueError("sequences must have equal length")
    if n == 0:
        schedule = MultiTaskSchedule([[] for _ in range(m)])
        return MTSolveResult(schedule, 0.0, True, "mt_branch_bound", {"nodes": 0})

    hyper_parallel = model.hyper_upload is UploadMode.TASK_PARALLEL
    reconf_parallel = model.reconfig_upload is UploadMode.TASK_PARALLEL
    all_or_none = not model.machine_class.allows_partial_hyper
    v = system.v
    masks = [seq.masks for seq in seqs]
    if packed is None or not packed.matches(system, seqs, model):
        packed = PackedProblem.compile(system, seqs, model)

    def agg(values) -> float:
        values = list(values)
        if not values:
            return 0.0
        return float(max(values)) if (reconf_parallel) else float(sum(values))

    def agg_hyper(subset) -> float:
        if not subset:
            return 0.0
        vals = [v[j] for j in subset]
        return max(vals) if hyper_parallel else sum(vals)

    # Admissible suffix bound: each remaining step pays at least the
    # aggregated size of its own requirements.
    suffix = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        step_sizes = [masks[j][i].bit_count() for j in range(m)]
        suffix[i] = suffix[i + 1] + agg(step_sizes)

    if all_or_none:
        subsets = [(), tuple(range(m))]
    else:
        subsets = [
            c for k in range(m + 1) for c in combinations(range(m), k)
        ]
    all_tasks = tuple(range(m))

    # Warm start: greedy gives the initial upper bound.
    warm = solve_mt_greedy_merge(system, seqs, model, packed=packed)
    best_cost = warm.cost
    best_rows = [list(r) for r in warm.schedule.indicators]

    rows = [[False] * n for _ in range(m)]
    unions = [0] * m
    nodes = 0
    leaf_evals = 0
    frontier_batches = 0
    frontier: list[np.ndarray] = []  # candidate-leaf indicator snapshots

    def flush_frontier() -> None:
        """Score the collected leaves with one packed population call.

        Scanned in arrival order against the evolving incumbent, so the
        selected leaf is exactly the one the leaf-at-a-time variant
        would have kept (population_cost is bit-identical to the
        reference cost).
        """
        nonlocal best_cost, best_rows, frontier_batches
        if not frontier:
            return
        frontier_batches += 1
        costs = packed.population_cost(np.stack(frontier))
        for snapshot, exact in zip(frontier, costs):
            if exact < best_cost - 1e-12:
                best_cost = float(exact)
                best_rows = snapshot.tolist()
        frontier.clear()

    def dfs(i: int, cost_so_far: float) -> None:
        nonlocal nodes, leaf_evals
        nodes += 1
        if nodes > max_nodes:
            raise ValueError(
                f"mt_branch_bound exceeded max_nodes={max_nodes}; "
                "use the heuristics for instances of this size"
            )
        if i == n:
            # Prefix-union charging under-counts; collect the candidate
            # and re-evaluate exactly once the frontier fills (one
            # batched lane-packed call per frontier).
            leaf_evals += 1
            frontier.append(np.array(rows, dtype=bool))
            if len(frontier) >= frontier_size:
                flush_frontier()
            return
        if cost_so_far + suffix[i] >= best_cost - 1e-12:
            return
        options = subsets if i > 0 else [all_tasks]
        saved = list(unions)
        for subset in options:
            for j in range(m):
                if j in subset:
                    unions[j] = masks[j][i]
                    rows[j][i] = True
                else:
                    unions[j] = saved[j] | masks[j][i]
                    rows[j][i] = False
            step_cost = agg_hyper(subset) + agg(
                u.bit_count() for u in unions
            )
            dfs(i + 1, cost_so_far + step_cost)
            for j in range(m):
                unions[j] = saved[j]
                rows[j][i] = False

    dfs(0, 0.0)
    flush_frontier()
    schedule = MultiTaskSchedule(best_rows)
    check = sync_switch_cost(system, seqs, schedule, model)
    if abs(check - best_cost) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError("B&B best cost disagrees with evaluation")
    return MTSolveResult(
        schedule=schedule,
        cost=check,
        optimal=True,
        solver="mt_branch_bound",
        stats={
            "nodes": nodes,
            "leaf_evals": leaf_evals,
            "frontier_batches": frontier_batches,
        },
    )
