"""Automatic solver selection for MT-Switch instances.

Downstream users should not need to know which solver fits which
instance size; :func:`solve_mt_auto` picks the cheapest method that is
exact when exactness is affordable and falls back to the strongest
heuristic stack otherwise:

1. tiny instances (``m·(n-1) ≤ 18``) — exhaustive enumeration;
2. small instances (window-commitment state estimate within budget) —
   the exact DP of Theorem 1;
3. everything else — GA and greedy + local search, best of both
   (optionally annealing too with ``thorough=True``).

All candidates are resolved through the solver registry
(:mod:`repro.engine.registry`) rather than by direct import, so the
dispatch logic lives in exactly one place and registry consumers (the
batch engine, the CLI) see the same solver set.  The returned result's
``optimal`` flag always reflects which path ran.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.mt_annealing import AnnealParams
from repro.solvers.mt_genetic import GAParams
from repro.util.rng import SeedLike

__all__ = ["solve_mt_auto"]

_EXHAUSTIVE_BITS = 18
_EXACT_STATE_BUDGET = 400_000


def _exact_state_estimate(m: int, n: int) -> float:
    """Pessimistic window-commitment state-count estimate: per task up
    to n(n+1)/2 windows, coupled across tasks per round."""
    windows = n * (n + 1) / 2
    return n * (windows ** m)


def solve_mt_auto(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    seed: SeedLike = 0,
    thorough: bool = False,
    registry=None,
) -> MTSolveResult:
    """Solve with the best affordable method; see module docstring.

    ``thorough=True`` additionally runs simulated annealing in the
    heuristic regime and keeps the best result.  ``registry`` names the
    solver pool to draw candidates from; registries inject themselves
    here when dispatching to ``"auto"``, so overridden solvers are
    honored.  ``None`` (direct calls) uses the built-in zoo.
    """
    if registry is None:
        # Imported lazily: the registry package imports the solver zoo,
        # which includes this module.
        from repro.engine.registry import default_registry

        registry = default_registry()
    m = system.m
    n = len(seqs[0]) if seqs else 0
    # Custom registries may register only a subset of the zoo; a tier
    # whose solver is absent falls through to the next rather than
    # erroring out of the dispatch.
    if "mt_exhaustive" in registry and m * max(0, n - 1) <= _EXHAUSTIVE_BITS:
        return registry.solve_multi("mt_exhaustive", system, seqs, model)
    if "mt_exact" in registry and _exact_state_estimate(m, n) <= _EXACT_STATE_BUDGET:
        try:
            return registry.solve_multi(
                "mt_exact", system, seqs, model, max_states=_EXACT_STATE_BUDGET
            )
        except ValueError:
            pass  # estimate was optimistic; fall through to heuristics
    candidates = []
    if "mt_greedy" in registry:
        candidates.append(registry.solve_multi("mt_greedy", system, seqs, model))
    if model is None or model.machine_class.allows_partial_hyper:
        if "mt_genetic" in registry:
            candidates.append(
                registry.solve_multi(
                    "mt_genetic",
                    system,
                    seqs,
                    model,
                    params=GAParams(
                        population_size=48,
                        generations=200,
                        stall_generations=80,
                    ),
                    seed=seed,
                )
            )
        if thorough and "mt_annealing" in registry:
            candidates.append(
                registry.solve_multi(
                    "mt_annealing",
                    system,
                    seqs,
                    model,
                    params=AnnealParams(iterations=12_000),
                    seed=seed,
                )
            )
    if not candidates:
        raise ValueError(
            "auto dispatch found no usable solver in the registry "
            f"(registered: {', '.join(registry.names('multi')) or 'none'})"
        )
    best = min(candidates, key=lambda r: r.cost)
    return MTSolveResult(
        schedule=best.schedule,
        cost=best.cost,
        optimal=False,
        solver=f"auto[{best.solver}]",
        stats={"candidates": [c.solver for c in candidates]},
    )
