"""Automatic solver selection for MT-Switch instances.

Downstream users should not need to know which solver fits which
instance size; :func:`solve_mt_auto` picks the cheapest method that is
exact when exactness is affordable and falls back to the strongest
heuristic stack otherwise:

1. tiny instances (``m·(n-1) ≤ 18``) — exhaustive enumeration;
2. small instances (window-commitment state estimate within budget) —
   the exact DP of Theorem 1;
3. everything else — GA and greedy + local search, best of both
   (optionally annealing too with ``thorough=True``).

The returned result's ``optimal`` flag always reflects which path ran.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.exhaustive import solve_mt_exhaustive
from repro.solvers.mt_annealing import AnnealParams, solve_mt_annealing
from repro.solvers.mt_exact import solve_mt_exact
from repro.solvers.mt_genetic import GAParams, solve_mt_genetic
from repro.solvers.mt_greedy import solve_mt_greedy_merge
from repro.util.rng import SeedLike

__all__ = ["solve_mt_auto"]

_EXHAUSTIVE_BITS = 18
_EXACT_STATE_BUDGET = 400_000


def _exact_state_estimate(m: int, n: int) -> float:
    """Pessimistic window-commitment state-count estimate: per task up
    to n(n+1)/2 windows, coupled across tasks per round."""
    windows = n * (n + 1) / 2
    return n * (windows ** m)


def solve_mt_auto(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    seed: SeedLike = 0,
    thorough: bool = False,
) -> MTSolveResult:
    """Solve with the best affordable method; see module docstring.

    ``thorough=True`` additionally runs simulated annealing in the
    heuristic regime and keeps the best result.
    """
    m = system.m
    n = len(seqs[0]) if seqs else 0
    if m * max(0, n - 1) <= _EXHAUSTIVE_BITS:
        return solve_mt_exhaustive(system, seqs, model)
    if _exact_state_estimate(m, n) <= _EXACT_STATE_BUDGET:
        try:
            return solve_mt_exact(
                system, seqs, model, max_states=_EXACT_STATE_BUDGET
            )
        except ValueError:
            pass  # estimate was optimistic; fall through to heuristics
    candidates = [solve_mt_greedy_merge(system, seqs, model)]
    if model is None or model.machine_class.allows_partial_hyper:
        candidates.append(
            solve_mt_genetic(
                system,
                seqs,
                model,
                params=GAParams(
                    population_size=48,
                    generations=200,
                    stall_generations=80,
                ),
                seed=seed,
            )
        )
        if thorough:
            candidates.append(
                solve_mt_annealing(
                    system,
                    seqs,
                    model,
                    params=AnnealParams(iterations=12_000),
                    seed=seed,
                )
            )
    best = min(candidates, key=lambda r: r.cost)
    return MTSolveResult(
        schedule=best.schedule,
        cost=best.cost,
        optimal=False,
        solver=f"auto[{best.solver}]",
        stats={"candidates": [c.solver for c in candidates]},
    )
