"""Genetic algorithm for the fully synchronized MT-Switch problem.

Section 6 computes the multi-task (m = 4) schedule for the SHyRA
counter "using a genetic algorithm"; its hyper-parameters are not
published, so this is a standard generational GA:

* chromosome — the ``m × n`` indicator matrix (column 0 pinned to 1);
* fitness — the synchronized cost (:mod:`repro.core.sync_cost`),
  evaluated for the whole offspring population at once through
  :class:`repro.core.delta.PopulationEvaluator`, whose lane-packed
  kernel (:mod:`repro.core.packed`) is the hot path of the
  reproduction.  The packed representation expresses the changeover
  symmetric differences and the public-global pseudo-row directly, so
  the GA optimizes those variants on the batched path too — pass
  ``changeover=True`` (optionally ``changeover_fixed``) or ``public``;
* tournament selection, uniform crossover, per-bit flip mutation plus a
  column-alignment mutation (hyperreconfigurations of different tasks
  like to share a step since a parallel upload charges only the max),
* elitism, deterministic seeding, and greedy/DP warm starts.

The GA is validated against :mod:`repro.solvers.mt_exact` and
:mod:`repro.solvers.exhaustive` on small instances in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.context import RequirementSequence
from repro.core.delta import (
    PopulationEvaluator,
    merge_evaluator_stats,
    pack_mask_lanes,
    population_switch_cost,
)
from repro.core.machine import MachineModel
from repro.core.packed import PackedProblem
from repro.core.schedule import MultiTaskSchedule
from repro.core.sync_cost import PublicGlobalPlan, sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.mt_greedy import solve_mt_from_single, solve_mt_independent
from repro.util.rng import SeedLike, make_rng

__all__ = ["GAParams", "solve_mt_genetic", "population_fitness"]

# Backwards-compatible aliases: the batched fitness kernel now lives in
# repro.core.delta next to the incremental evaluator it complements.
_mask_lanes = pack_mask_lanes
population_fitness = population_switch_cost


@dataclass(frozen=True)
class GAParams:
    """Hyper-parameters of the GA.

    The defaults solve the paper's counter instance (m=4, n=110) in a
    few seconds while staying within ~1% of the best known schedules.
    """

    population_size: int = 64
    generations: int = 400
    tournament_size: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float | None = None  # default: 1.5 / (m·n)
    align_mutation_rate: float = 0.1
    elitism: int = 2
    stall_generations: int = 120
    seed_with_heuristics: bool = True

    def __post_init__(self):
        if self.population_size < 4:
            raise ValueError("population_size must be at least 4")
        if not 0 <= self.crossover_rate <= 1:
            raise ValueError("crossover_rate must be in [0, 1]")
        if self.elitism < 0 or self.elitism >= self.population_size:
            raise ValueError("elitism must be in [0, population_size)")
        if self.tournament_size < 1:
            raise ValueError("tournament_size must be positive")


def _schedule_to_row(schedule: MultiTaskSchedule) -> np.ndarray:
    return np.array(schedule.indicators, dtype=bool)


def solve_mt_genetic(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    params: GAParams | None = None,
    seed: SeedLike = 0,
    *,
    changeover: bool = False,
    changeover_fixed: Sequence[float] | None = None,
    public: PublicGlobalPlan | None = None,
    packed: PackedProblem | None = None,
) -> MTSolveResult:
    """Run the GA on a fully synchronized MT-Switch instance.

    Deterministic for a fixed ``seed``.  The returned cost is
    re-evaluated with the reference cost function, so the vectorized
    kernel can never report a schedule it cannot justify.

    ``changeover`` / ``changeover_fixed`` / ``public`` select the cost
    variant; all of them run on the batched lane-packed path.
    ``packed`` optionally reuses an already-compiled
    :class:`~repro.core.packed.PackedProblem` for this instance (the
    batch engine compiles one per structurally-deduped request).
    """
    if model is None:
        model = MachineModel.paper_experimental()
    if not model.machine_class.allows_partial_hyper:
        raise ValueError(
            "the GA optimizes per-task indicator rows; partially "
            "reconfigurable machines need aligned rows — use "
            "solve_single_switch on the merged instance instead"
        )
    params = params or GAParams()
    rng = make_rng(seed)
    m = system.m
    n = len(seqs[0])
    if any(len(s) != n for s in seqs):
        raise ValueError("sequences must have equal length")
    if n == 0:
        schedule = MultiTaskSchedule([[] for _ in range(m)])
        return MTSolveResult(schedule, 0.0, True, "mt_genetic", {})

    evaluator = PopulationEvaluator(
        system,
        seqs,
        model,
        changeover=changeover,
        changeover_fixed=changeover_fixed,
        public=public,
        packed=packed,
    )
    mutation_rate = (
        params.mutation_rate
        if params.mutation_rate is not None
        else 1.5 / (m * n)
    )

    P = params.population_size
    pop = rng.random((P, m, n)) < 0.2
    pop[:, :, 0] = True
    if params.seed_with_heuristics:
        warm: list[np.ndarray] = []
        warm.append(_schedule_to_row(MultiTaskSchedule.initial_only(m, n)))
        warm.append(np.ones((m, n), dtype=bool))
        try:
            warm.append(
                _schedule_to_row(solve_mt_from_single(system, seqs, model).schedule)
            )
            warm.append(
                _schedule_to_row(solve_mt_independent(system, seqs, model).schedule)
            )
        except ValueError:  # pragma: no cover - degenerate instances
            pass
        for k, chrom in enumerate(warm[: P // 2]):
            pop[k] = chrom

    fitness = evaluator.evaluate
    fit = fitness(pop)
    best_idx = int(np.argmin(fit))
    best_chrom = pop[best_idx].copy()
    best_fit = float(fit[best_idx])
    history = [best_fit]
    stall = 0
    generations_run = 0

    for _gen in range(params.generations):
        generations_run += 1
        # Tournament selection of P parents.
        entrants = rng.integers(0, P, size=(P, params.tournament_size))
        winners = entrants[np.arange(P), np.argmin(fit[entrants], axis=1)]
        parents = pop[winners]
        # Uniform crossover on consecutive pairs, fully vectorized:
        # crossing pairs take where(mask, a, b)/where(mask, b, a), the
        # rest clone their parents.  The RNG draws are shape-for-shape
        # the ones the per-pair loop made, so trajectories are
        # unchanged for a fixed seed.
        do_cross = rng.random(P // 2) < params.crossover_rate
        cross_mask = rng.random((P // 2, m, n)) < 0.5
        a = parents[0::2][: P // 2]
        b = parents[1::2]
        take_a = ~do_cross[:, None, None] | cross_mask
        first = np.where(take_a, a, b)
        second = np.where(take_a, b, a)
        children = parents.copy()
        children[0 : 2 * (P // 2) : 2] = first
        children[1::2] = second
        # Bit-flip mutation.
        flips = rng.random((P, m, n)) < mutation_rate
        children ^= flips
        # Column-alignment mutation: copy one task's indicator at a
        # random step to every task (parallel uploads reward alignment).
        # The (i, j) coordinates stay scalar draws — interleaved exactly
        # as the old per-chromosome loop consumed the stream — but the
        # row broadcasts happen in one fancy-indexed assignment.
        align = np.flatnonzero(rng.random(P) < params.align_mutation_rate)
        if align.size:
            cols = np.empty(align.size, dtype=np.intp)
            srcs = np.empty(align.size, dtype=np.intp)
            for t in range(align.size):
                cols[t] = int(rng.integers(1, n)) if n > 1 else 0
                srcs[t] = int(rng.integers(0, m))
            children[align, :, cols] = children[align, srcs, cols][:, None]
        children[:, :, 0] = True
        # Elitism: keep the best chromosomes from the previous generation.
        if params.elitism:
            elite_idx = np.argsort(fit)[: params.elitism]
            children[: params.elitism] = pop[elite_idx]
        pop = children
        fit = fitness(pop)
        gen_best = int(np.argmin(fit))
        if fit[gen_best] < best_fit - 1e-12:
            best_fit = float(fit[gen_best])
            best_chrom = pop[gen_best].copy()
            stall = 0
        else:
            stall += 1
        history.append(best_fit)
        if stall >= params.stall_generations:
            break

    schedule = MultiTaskSchedule(best_chrom.tolist())
    cost = sync_switch_cost(
        system,
        seqs,
        schedule,
        model,
        changeover=changeover,
        changeover_fixed=changeover_fixed,
        public=public,
    )
    if abs(cost - best_fit) > 1e-6:  # pragma: no cover - internal invariant
        raise AssertionError(
            f"GA fitness {best_fit} disagrees with reference cost {cost}"
        )
    stats = {
        "generations": generations_run,
        "best_history_first": history[0],
        "best_history_last": history[-1],
    }
    merge_evaluator_stats(stats, evaluator.stats)
    return MTSolveResult(
        schedule=schedule,
        cost=cost,
        optimal=False,
        solver="mt_genetic",
        stats=stats,
    )
