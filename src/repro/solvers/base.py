"""Common solver result types.

Every solver returns its schedule together with the objective value it
certifies and bookkeeping that the experiment drivers report (solver
name, optimality flag, node/evaluation counters).  Keeping a single
result shape makes solvers interchangeable in benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import MultiTaskSchedule, SingleTaskSchedule

__all__ = ["SolveResult", "MTSolveResult"]


@dataclass(frozen=True)
class SolveResult:
    """Result of a single-task solver.

    Attributes
    ----------
    schedule:
        The produced schedule.
    cost:
        Objective value of ``schedule`` under the solver's cost model.
    optimal:
        True when the solver *proves* optimality (DP/exhaustive/B&B),
        False for heuristics.
    solver:
        Human-readable solver name for reports.
    stats:
        Free-form counters (states expanded, generations, …).
    """

    schedule: SingleTaskSchedule
    cost: float
    optimal: bool
    solver: str
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class MTSolveResult:
    """Result of a multi-task solver (same fields, multi-task schedule)."""

    schedule: MultiTaskSchedule
    cost: float
    optimal: bool
    solver: str
    stats: dict = field(default_factory=dict)
