"""Solvers for the changeover-cost model variant.

The variant (Section 4.1) charges a hyperreconfiguration ``w + |h Δ h'|``
— fixed cost plus the symmetric difference to the predecessor
hypercontext, modelling machines that load only difference information.

Structure exploited here: **given a partition into blocks, the optimal
hypercontexts decompose per switch.**  A switch must be available in
every block that requires it and may additionally be *carried* through
blocks that do not, trading its per-step availability cost (it gets
rewritten by every reconfiguration of the block) against the two
toggle costs it avoids.  Per switch this is a 2-state shortest path
over the blocks, solved exactly in O(r) — so hypercontext assignment is
polynomial once the partition is fixed, and the hardness (if any) sits
only in the partition choice:

* :func:`optimal_hypercontexts_for_partition` — the per-switch DP;
* :func:`solve_changeover_exact` — enumerate all partitions (n ≤ 16);
* :func:`solve_changeover_heuristic` — start from the plain switch-model
  optimum and move/merge/split block boundaries while improving.
"""

from __future__ import annotations

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost_changeover
from repro.core.schedule import SingleTaskSchedule
from repro.solvers.base import SolveResult
from repro.solvers.exhaustive import enumerate_single_schedules
from repro.solvers.single_dp import solve_single_switch
from repro.util.bitset import bit_indices

__all__ = [
    "optimal_hypercontexts_for_partition",
    "solve_changeover_exact",
    "solve_changeover_heuristic",
]

_MAX_EXACT_N = 16


def optimal_hypercontexts_for_partition(
    seq: RequirementSequence,
    hyper_steps: tuple[int, ...],
    initial_mask: int = 0,
) -> tuple[int, ...]:
    """Optimal explicit hypercontexts for a fixed partition.

    For every switch ``x`` solve a 2-state DP over the blocks: state 1
    (available) costs ``len(block)`` (the switch is rewritten by each
    reconfiguration) and is forced where the block requires ``x``;
    transitions cost 1 when availability toggles (the changeover term).
    The initial state is taken from ``initial_mask``; trailing state is
    free.
    """
    schedule = SingleTaskSchedule(n=len(seq), hyper_steps=hyper_steps)
    blocks = schedule.blocks()
    r = len(blocks)
    unions = [seq.union_mask(start, stop) for start, stop in blocks]
    lengths = [stop - start for start, stop in blocks]
    relevant = initial_mask
    for u in unions:
        relevant |= u
    out = [u for u in unions]  # required switches are always in
    INF = float("inf")
    for x in bit_indices(relevant):
        bit = 1 << x
        init_state = 1 if initial_mask & bit else 0
        # dp[state] = min cost so far ending in `state`
        dp = [0.0, INF] if init_state == 0 else [INF, 0.0]
        choices: list[tuple[int, int]] = []  # argmin predecessors per block
        for b in range(r):
            required = bool(unions[b] & bit)
            ndp = [INF, INF]
            pred = [(0, 0), (0, 0)]
            for s in (0, 1):
                if required and s == 0:
                    continue
                stay_cost = s * lengths[b]
                for p in (0, 1):
                    cand = dp[p] + (1 if p != s else 0) + stay_cost
                    if cand < ndp[s]:
                        ndp[s] = cand
                        pred[s] = (p, s)
            dp = ndp
            choices.append(tuple(pred))
        # Backtrack inclusion decisions for this switch.
        state = 0 if dp[0] <= dp[1] else 1
        include = [False] * r
        for b in range(r - 1, -1, -1):
            include[b] = state == 1
            state = choices[b][state][0]
        for b in range(r):
            if include[b]:
                out[b] |= bit
    return tuple(out)


def _evaluate_partition(
    seq: RequirementSequence,
    hyper_steps: tuple[int, ...],
    w: float,
    initial_mask: int,
) -> tuple[float, SingleTaskSchedule]:
    masks = optimal_hypercontexts_for_partition(seq, hyper_steps, initial_mask)
    schedule = SingleTaskSchedule(
        n=len(seq), hyper_steps=hyper_steps, explicit_masks=masks
    )
    cost = switch_cost_changeover(seq, schedule, w, initial_mask)
    return cost, schedule


def solve_changeover_exact(
    seq: RequirementSequence,
    w: float,
    initial_mask: int = 0,
) -> SolveResult:
    """Exact changeover optimum by partition enumeration (n ≤ 16)."""
    n = len(seq)
    if n > _MAX_EXACT_N:
        raise ValueError(
            f"exact changeover search limited to n ≤ {_MAX_EXACT_N}; "
            "use solve_changeover_heuristic"
        )
    if n == 0:
        return SolveResult(
            SingleTaskSchedule(n=0, hyper_steps=()), 0.0, True,
            "changeover_exact", {},
        )
    best_cost = float("inf")
    best_schedule = None
    evaluated = 0
    for base in enumerate_single_schedules(n):
        evaluated += 1
        cost, schedule = _evaluate_partition(
            seq, base.hyper_steps, w, initial_mask
        )
        if cost < best_cost:
            best_cost = cost
            best_schedule = schedule
    return SolveResult(
        schedule=best_schedule,
        cost=best_cost,
        optimal=True,
        solver="changeover_exact",
        stats={"evaluated": evaluated},
    )


def solve_changeover_heuristic(
    seq: RequirementSequence,
    w: float,
    initial_mask: int = 0,
    *,
    max_passes: int = 10,
) -> SolveResult:
    """Boundary local search seeded by the plain switch-model optimum.

    Moves: toggle each interior boundary (merge/split) and shift each
    boundary by ±1; every candidate partition is completed with its
    per-switch-optimal hypercontexts before evaluation.
    """
    n = len(seq)
    if n == 0:
        return SolveResult(
            SingleTaskSchedule(n=0, hyper_steps=()), 0.0, True,
            "changeover_heuristic", {},
        )
    # Seed: optimal for the plain model with the same fixed cost w
    # (changeover only adds terms, so this is a sensible start).
    seed = solve_single_switch(seq, max(w, 1e-9)).schedule
    boundaries = set(seed.hyper_steps)
    best_cost, best_schedule = _evaluate_partition(
        seq, tuple(sorted(boundaries)), w, initial_mask
    )
    evaluated = 1
    for _ in range(max_passes):
        improved = False
        for i in range(1, n):
            trial_sets = []
            if i in boundaries:
                trial_sets.append(boundaries - {i})
                if i + 1 < n and i + 1 not in boundaries:
                    trial_sets.append((boundaries - {i}) | {i + 1})
                if i - 1 >= 1 and i - 1 not in boundaries:
                    trial_sets.append((boundaries - {i}) | {i - 1})
            else:
                trial_sets.append(boundaries | {i})
            for trial in trial_sets:
                steps = tuple(sorted(trial | {0}))
                cost, schedule = _evaluate_partition(
                    seq, steps, w, initial_mask
                )
                evaluated += 1
                if cost < best_cost - 1e-12:
                    best_cost = cost
                    best_schedule = schedule
                    boundaries = set(steps)
                    improved = True
        if not improved:
            break
    return SolveResult(
        schedule=best_schedule,
        cost=best_cost,
        optimal=False,
        solver="changeover_heuristic",
        stats={"evaluated": evaluated},
    )
