"""Online (run-time) hyperreconfiguration scheduling.

The offline solvers see the whole requirement sequence; a machine
deciding *at run time* when to hyperreconfigure sees only the past.
The paper's outlook — architectures that "adapt their reconfiguration
abilities during run time" — raises exactly this question, so the
library ships two classic online policies plus a competitive-ratio
harness against the offline optimum (experiment E11):

* :class:`RentOrBuyScheduler` — ski-rental reasoning per switch set:
  keep the current hypercontext while the *regret* (cost paid above
  what a fresh minimal hypercontext would have paid for the same
  steps) is below ``alpha · w``, then hyperreconfigure to the recent
  working set.  With ``alpha = 1`` this is the classic rent-or-buy
  rule that is 2-competitive for the one-switch case.
* :class:`WindowScheduler` — hyperreconfigure every ``k`` steps to the
  coming block's needs as *estimated by the previous window* (the
  union of the last ``k`` requirements).  A requirement that does not
  fit the estimate forces an immediate corrective
  hyperreconfiguration — the policy pays for its mispredictions,
  which is what makes it an honest straw-man baseline.

Both policies expose two entry points over the same decision logic:

* :meth:`plan` — feed a whole sequence, get a valid
  :class:`~repro.core.schedule.SingleTaskSchedule` with explicit
  hypercontext masks (the online hypercontext is generally *not* the
  minimal block union — the scheduler did not know the future);
* :meth:`cursor` — a stateful step-by-step cursor for streaming use
  (see :mod:`repro.engine.stream`).  A cursor's ``step(i, mask)``
  returns the newly installed hypercontext mask when the policy
  hyperreconfigures at step ``i`` and ``None`` when it keeps the
  current one; after the call, ``cursor.current`` always covers
  ``mask`` (cursors hyperreconfigure rather than serve a requirement
  they cannot satisfy).

Both policies additionally expose :meth:`batched_cursor` — the
lane-packed contract for high-rate streaming.  A batched cursor's
``step_many(lanes)`` advances a whole ``(C, L)`` uint64 chunk of
requirement rows in vectorized NumPy over a
:class:`~repro.core.packed.PackedStream` and returns a
:class:`CursorBatch` of per-step hyper flags, hypercontext sizes and
installed hypercontexts.  The decisions are *bit-identical* to driving
the scalar cursor step by step (the scalar cursors stay as the
correctness oracle; ``tests/test_stream_packed.py`` enforces the
equivalence on randomized sequences across the 64-switch lane
boundary): inside a chunk the batched cursor solves for whole
*no-hyper segments* at a time — prefix unions and popcounts locate the
next trigger (misfit or regret/cadence), then the working-set window is
read off the packed history — so its cost is O(segments) NumPy sweeps
instead of O(steps) Python calls.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.packed import (
    PackedStream,
    lanes_to_masks,
    masks_to_lanes,
)
from repro.core.schedule import SingleTaskSchedule
from repro.solvers.single_dp import solve_single_switch
from repro.util.bitset import popcount_u64

__all__ = [
    "CursorBatch",
    "FusedSweep",
    "OnlineRun",
    "RentOrBuyScheduler",
    "ScalarOnly",
    "WindowScheduler",
    "plan_with_cursor",
    "run_online",
    "competitive_report",
]


class ScalarOnly:
    """Wrap a policy to expose only the scalar cursor contract.

    A :class:`~repro.engine.stream.StreamSession` takes the batched
    lane-packed path whenever the policy offers ``batched_cursor``;
    wrapping the policy in this shim hides it, forcing the scalar
    oracle path — the baseline the equivalence tests, benchmark E16
    and the CLI's ``--scalar`` flag compare against.
    """

    def __init__(self, scheduler, *, name: str | None = None):
        self._scheduler = scheduler
        self.name = name if name is not None else getattr(
            scheduler, "name", type(scheduler).__name__
        )

    def cursor(self):
        return self._scheduler.cursor()


@dataclass(frozen=True)
class OnlineRun:
    """Outcome of feeding a sequence through an online scheduler."""

    schedule: SingleTaskSchedule
    cost: float
    solver: str


@dataclass(frozen=True)
class CursorBatch:
    """Result of advancing a batched cursor by one requirement chunk.

    Attributes
    ----------
    hyper:
        ``(C,)`` bool — True where the policy hyperreconfigured before
        serving the step.
    sizes:
        ``(C,)`` int64 — popcount of the hypercontext that served each
        step (``|h|``, the per-step switch-write charge).
    installed:
        ``(H, L)`` uint64 — the installed hypercontext lanes of the
        ``H`` flagged steps, in step order.
    """

    hyper: np.ndarray
    sizes: np.ndarray
    installed: np.ndarray

    @property
    def steps(self) -> int:
        return int(self.hyper.shape[0])

    @property
    def hyper_count(self) -> int:
        return int(self.installed.shape[0])

    def installed_masks(self) -> list[int]:
        """Installed hypercontexts as Python int masks (oracle encoding)."""
        if self.installed.shape[0] == 0:
            return []
        return lanes_to_masks(self.installed)


@dataclass(frozen=True)
class FusedSweep:
    """Result of a fused multi-cursor sweep over stacked chunks.

    ``sweep_many`` is an epoch-synchronous resumable kernel: *every*
    cursor in the stack completes its chunk here — quiet ones in the
    first epoch, triggering ones through as many trigger epochs as the
    densest chunk needs — so there is no per-session replay path left.
    Cursor and stream state are committed on return; the caller only
    books per-session accounting off the arrays below.

    Attributes
    ----------
    hyper:
        ``(S, Cmax)`` bool — True where a session hyperreconfigured
        before serving the step (read-only; rows are shared views).
    sizes:
        ``(S, Cmax)`` int64 — per-step hypercontext popcount ``|h|``
        serving each step (read-only; zero beyond a session's length).
    installed:
        ``(T, L)`` uint64 — installed hypercontext lanes of all
        ``T`` triggers, session-major and in step order within each
        session (matching ``np.nonzero(hyper)``).
    installed_counts:
        ``(S,)`` int64 — triggers per session; cumulative sums slice
        ``installed`` into per-session runs.
    lengths:
        ``(S,)`` int64 — per-session chunk lengths (ragged stacks are
        zero-padded to ``Cmax``; columns at or past a session's length
        are dead).
    epochs:
        Trigger-epoch iterations the kernel ran for this stack.
    """

    hyper: np.ndarray
    sizes: np.ndarray
    installed: np.ndarray
    installed_counts: np.ndarray
    lengths: np.ndarray
    epochs: int

    @property
    def sessions(self) -> int:
        return int(self.hyper.shape[0])

    @property
    def triggers(self) -> int:
        return int(self.installed.shape[0])


def _stack_rows(cursors, attr: str, S: int, L: int) -> np.ndarray:
    """Stack one ``(L,)`` lane row per cursor into ``(S, L)``.

    A sweep epilogue leaves each cursor's state as a row view of the
    sweep's struct-of-arrays (and stamps ``_row``); when the same group
    returns with every view intact — the steady serving state — the
    previous array IS the stack, so it is reused instead of rebuilt.
    Any per-session step in between replaces the cursor's row with a
    fresh array, which defeats the aliasing check and falls back to a
    fresh ``np.stack``.
    """
    base = getattr(cursors[0], attr).base
    if base is not None and base.shape == (S, L):
        for s, c in enumerate(cursors):
            if c._row != s or getattr(c, attr).base is not base:
                break
        else:
            return base
    return np.stack([getattr(c, attr) for c in cursors])


def _gather_windows(
    cursors, block: np.ndarray, rows: np.ndarray, t: np.ndarray,
    H: int, window: np.ndarray,
) -> np.ndarray:
    """Working-set window union ending at each trigger step.

    Each install's estimate is the OR over chunk steps ``t-H .. t``.
    Triggers at least ``H`` columns into the chunk gather their whole
    window off ``block`` in one vectorized pass (``window`` is
    ``arange(H + 1)``); triggers nearer the front reach into the
    session's pre-chunk stream history row by row — sessions younger
    than ``H`` steps clamp exactly like the scalar cursors.  Building
    only the windows that actually install keeps quiet sweeps free of
    the ``(S, H + Cmax, L)`` history-prefixed block they would never
    read.
    """
    L = block.shape[2]
    if H == 0:
        return block[rows, t]
    ws = np.empty((rows.size, L), dtype=np.uint64)
    front = t < H
    inner = ~front
    if inner.any():
        r2 = rows[inner]
        t2 = t[inner]
        ws[inner] = np.bitwise_or.reduce(
            block[r2[:, None], (t2 - H)[:, None] + window], axis=1
        )
    for j in np.flatnonzero(front):
        s = int(rows[j])
        tj = int(t[j])
        acc = np.bitwise_or.reduce(block[s, : tj + 1], axis=0)
        tail = cursors[s].stream.tail_rows(H - tj)
        if tail.shape[0]:
            acc = acc | np.bitwise_or.reduce(tail, axis=0)
        ws[j] = acc
    return ws


def _assemble_installs(
    inst_sess: list, inst_step: list, inst_lanes: list, S: int, L: int
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-epoch install records into session-major step order."""
    if not inst_sess:
        return (
            np.zeros((0, L), dtype=np.uint64),
            np.zeros(S, dtype=np.int64),
        )
    sess = np.concatenate(inst_sess)
    steps = np.concatenate(inst_step)
    lanes = np.concatenate(inst_lanes, axis=0)
    order = np.lexsort((steps, sess))
    counts = np.bincount(sess, minlength=S).astype(np.int64)
    return lanes[order], counts


#: Stack-size crossover for ``sweep_many``: groups at or below this
#: many sessions are served by one scalar-batched ``step_many`` call
#: per cursor instead of the epoch kernel.  The kernel's win is
#: amortizing per-epoch NumPy spans over many rows; below the
#: crossover (measured on the E16 hub workload: parity near S=16,
#: ~2-3× loss by S≤4) the short per-cursor loop IS the
#: vectorization-optimal plan.  Decisions are bit-identical either
#: way; the equivalence suite pins the constant to 0 to keep the
#: epoch kernel under adversarial coverage at every fleet size.
SMALL_STACK_SESSIONS = 8


def _sweep_small(cursors, block: np.ndarray, lengths) -> FusedSweep:
    """Serve a small stack with one ``step_many`` call per cursor.

    Same decisions as the epoch kernel, repackaged as a
    :class:`FusedSweep`; installs are already session-major and in
    step order.  The densest cursor's install count stands in for the
    epoch count — exactly what the kernel would have iterated.
    """
    S, Cmax, L = block.shape
    lengths = _sweep_lengths(S, Cmax, lengths)
    hyper = np.zeros((S, Cmax), dtype=bool)
    sizes = np.zeros((S, Cmax), dtype=np.int64)
    counts = np.zeros(S, dtype=np.int64)
    installed = []
    epochs = 0
    for s, c in enumerate(cursors):
        n = int(lengths[s])
        batch = c.step_many(block[s, :n])
        hyper[s, :n] = batch.hyper
        sizes[s, :n] = batch.sizes
        counts[s] = batch.installed.shape[0]
        installed.append(batch.installed)
        epochs = max(epochs, int(counts[s]))
    hyper.setflags(write=False)
    sizes.setflags(write=False)
    return FusedSweep(
        hyper=hyper,
        sizes=sizes,
        installed=np.concatenate(installed, axis=0)
        if installed
        else np.zeros((0, L), dtype=np.uint64),
        installed_counts=counts,
        lengths=lengths,
        epochs=epochs,
    )


def _sweep_lengths(S: int, Cmax: int, lengths) -> np.ndarray:
    if lengths is None:
        return np.full(S, Cmax, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (S,) or (lengths < 1).any() or (lengths > Cmax).any():
        raise ValueError("lengths must hold one value in [1, Cmax] per chunk")
    return lengths


def _empty_batch(L: int) -> CursorBatch:
    return CursorBatch(
        hyper=np.zeros(0, dtype=bool),
        sizes=np.zeros(0, dtype=np.int64),
        installed=np.zeros((0, L), dtype=np.uint64),
    )


def plan_with_cursor(cursor, seq: RequirementSequence) -> SingleTaskSchedule:
    """Drive a policy cursor over a whole sequence.

    Every cursor hyperreconfigures at step 0 and afterwards whenever a
    requirement does not fit, so the recorded masks already cover their
    blocks; they are still widened by the block unions as a safety net
    (a no-op for well-behaved cursors, and the cheapest way to keep the
    "explicit masks must cover" invariant unconditionally true).

    Cursors honoring the batched contract (``step_many``) are advanced
    in one vectorized call; scalar cursors step per requirement.  The
    block-union widening runs on packed lanes either way (one
    ``bitwise_or.reduceat`` instead of a per-step Python union loop).
    """
    masks = seq.masks
    n = len(masks)
    if n == 0:
        return SingleTaskSchedule(n=0, hyper_steps=())
    width = seq.universe.size
    lanes = masks_to_lanes(masks, width)
    if hasattr(cursor, "step_many"):
        batch = cursor.step_many(lanes)
        hyper_steps = [int(i) for i in np.flatnonzero(batch.hyper)]
        installed_lanes = batch.installed
    else:
        hyper_steps = []
        hyper_masks = []
        for i, req in enumerate(masks):
            installed = cursor.step(i, req)
            if installed is not None:
                hyper_steps.append(i)
                hyper_masks.append(installed)
        installed_lanes = masks_to_lanes(hyper_masks, width)
    if hyper_steps:
        starts = np.asarray(hyper_steps, dtype=np.intp)
        unions = np.bitwise_or.reduceat(lanes, starts, axis=0)
        widened = lanes_to_masks(installed_lanes | unions)
    else:  # a degenerate custom cursor that never installs
        widened = []
    return SingleTaskSchedule(
        n=n, hyper_steps=tuple(hyper_steps), explicit_masks=tuple(widened)
    )


class _RentOrBuyCursor:
    """State machine behind :class:`RentOrBuyScheduler`."""

    __slots__ = ("w", "alpha", "current", "served_union", "regret", "recent")

    def __init__(self, w: float, alpha: float, memory: int):
        self.w = w
        self.alpha = alpha
        self.current = 0
        self.served_union = 0
        self.regret = 0.0
        # Working-set estimate = new requirement ∪ last (memory-1) ones.
        self.recent = deque(maxlen=memory - 1) if memory > 1 else None

    def step(self, i: int, req: int) -> int | None:
        must = bool(req & ~self.current) or i == 0
        if not must:
            # Regret of serving this step under the old hypercontext.
            step_regret = (
                self.current.bit_count() - (self.served_union | req).bit_count()
            )
            if self.regret + step_regret > self.alpha * self.w:
                must = True
        installed = None
        if must:
            working_set = req
            if self.recent is not None:
                for m in self.recent:
                    working_set |= m
            self.current = working_set
            self.served_union = req
            self.regret = 0.0
            installed = working_set
        else:
            self.served_union |= req
            self.regret += self.current.bit_count() - self.served_union.bit_count()
        if self.recent is not None:
            self.recent.append(req)
        return installed


class _BatchedRentOrBuyCursor:
    """Lane-packed rent-or-buy cursor (:class:`_RentOrBuyCursor` is the
    scalar oracle; decisions here are bit-identical).

    ``step_many`` processes a chunk *segment by segment*: between two
    hyperreconfigurations the hypercontext is frozen, so the served
    union is a prefix union over the segment, the regret a cumulative
    sum of popcount differences, and the next trigger (misfit or
    regret overflow) is one ``argmax`` — all NumPy, no per-step Python.
    The regret arithmetic stays exact: every addend is an integer
    (representable in float64), so the vectorized cumulative sum equals
    the scalar's sequential float accumulation bit for bit.
    """

    __slots__ = (
        "w",
        "alpha",
        "memory",
        "stream",
        "scan_min",
        "scan_max",
        "multi_trigger_hits",
        "_cur",
        "_cur_size",
        "_served",
        "_regret",
        "_row",
    )

    #: Galloping sweep bounds: prefix unions are recomputed from each
    #: segment start, so an unbounded sweep would be O(chunk²) when
    #: hypers are frequent — and a large fixed window wastes compute
    #: past the trigger when they are.  Each segment starts with a
    #: small sweep that doubles while no trigger is found (total rows
    #: touched stay within ~2× the segment length either way).  State
    #: carries across sweep windows exactly as it does across chunks,
    #: so the bounds only shape the work, never the decisions.  The
    #: class attributes are defaults; per-scheduler tunables
    #: (``RentOrBuyScheduler(scan_min=..., scan_max=...)``) override
    #: them per cursor — bench E16 sweeps the grid.
    _SCAN_MIN = 128
    _SCAN_MAX = 4096

    def __init__(
        self,
        w: float,
        alpha: float,
        memory: int,
        width: int,
        *,
        scan_min: int | None = None,
        scan_max: int | None = None,
    ):
        self.w = w
        self.alpha = alpha
        self.memory = memory
        self.scan_max = self._SCAN_MAX if scan_max is None else int(scan_max)
        if scan_min is None:
            # A lone small scan_max implies the window ceiling; don't
            # make the caller restate the floor to satisfy min ≤ max.
            self.scan_min = min(self._SCAN_MIN, self.scan_max)
        else:
            self.scan_min = int(scan_min)
        if self.scan_min < 1:
            raise ValueError("scan_min must be at least 1")
        if self.scan_max < self.scan_min:
            raise ValueError("scan_max must be at least scan_min")
        self.stream = PackedStream(width, history=memory - 1)
        L = self.stream.lane_width
        self._cur = np.zeros(L, dtype=np.uint64)
        self._cur_size = 0
        self._served = np.zeros(L, dtype=np.uint64)
        self._regret = 0.0
        #: Row index this cursor held in the last fused sweep's
        #: struct-of-arrays (see ``_stack_rows``); -1 before any sweep.
        self._row = -1
        #: Triggers resolved by the multi-trigger fast path (hectic
        #: streams resolve several misfits per sweep window without
        #: recomputing the prefix-union/popcount/cumsum passes).
        self.multi_trigger_hits = 0

    @property
    def current(self) -> int:
        """Current hypercontext as an int mask (cursor contract)."""
        return lanes_to_masks(self._cur)

    def step_many(self, lanes: np.ndarray) -> CursorBatch:
        """Advance the cursor over a ``(C, L)`` uint64 requirement chunk."""
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        C = lanes.shape[0]
        L = self.stream.lane_width
        if C == 0:
            return _empty_batch(L)
        first_forced = self.stream.n == 0
        ext, off = self.stream.push(lanes)
        hyper = np.zeros(C, dtype=bool)
        sizes = np.empty(C, dtype=np.int64)
        installed: list[np.ndarray] = []
        threshold = self.alpha * self.w
        cur, cur_size = self._cur, self._cur_size
        served, regret = self._served, self._regret
        pos = 0
        scan = self.scan_min
        ncur = ~cur
        while pos < C:
            stop = min(C, pos + scan)
            rest = lanes[pos:stop]
            acc = np.bitwise_or.accumulate(rest, axis=0)
            np.bitwise_or(acc, served, out=acc)
            # served ⊆ cur, so the prefix union escapes cur exactly
            # where the first unservable requirement sits (monotone).
            misfit = (acc & ncur).any(axis=1)
            pc = popcount_u64(acc).sum(axis=1, dtype=np.int64)
            csum = np.cumsum(cur_size - pc, dtype=np.float64)
            if regret:  # exact either way; skips an add per quiet sweep
                csum = regret + csum
            trigger = misfit | (csum > threshold)
            if first_forced and pos == 0:
                trigger[0] = True
            hit = int(np.argmax(trigger))
            if not trigger[hit]:
                sizes[pos:stop] = cur_size
                served = acc[-1]
                regret = float(csum[-1])
                pos = stop
                scan = min(scan * 2, self.scan_max)
                continue
            t = pos + hit
            scan = self.scan_min
            sizes[pos:t] = cur_size
            # Working set = this requirement ∪ the last (memory-1) ones,
            # read off the history-prefixed chunk.
            lo = max(0, off + t - (self.memory - 1))
            ws = np.bitwise_or.reduce(ext[lo : off + t + 1], axis=0)
            cur = ws
            ncur = ~cur
            cur_size = int(popcount_u64(ws).sum(dtype=np.int64))
            served = lanes[t].copy()
            regret = 0.0
            hyper[t] = True
            installed.append(ws)
            sizes[t] = cur_size
            pos = t + 1
            # Multi-trigger sweep: on hectic streams the next trigger
            # is usually another *misfit* a handful of steps ahead, and
            # recomputing the three-pass prefix-union sweep over the
            # whole scan window per segment is what makes short
            # segments amortize poorly.  After an install the regret
            # restarts from zero, so the next misfit (one AND-any pass
            # over the remaining window) resolves immediately while the
            # regret term is *quiescent*: each post-install addend is
            # bounded by |cur| − |req[t]| (the served union only grows
            # from req[t]), so ``gap`` misfit-free steps accrue at most
            # gap·(|cur| − |req[t]|).  When that O(1) bound cannot rule
            # a regret trigger out, the regret is swept exactly — but
            # only over the ``gap`` rows, not the whole window.  Both
            # checks are exact-or-conservative, never optimistic, so
            # decisions stay bit-identical to the scalar oracle; only
            # the trailing no-misfit stretch of a window falls back to
            # the outer full sweep (which also carries served/regret
            # state across windows and chunks).
            while pos < stop:
                mis = (lanes[pos:stop] & ncur).any(axis=1)
                nh = int(mis.argmax())
                if not mis[nh]:
                    break  # no misfit left: the next trigger (if any)
                    # needs the full continuation sweep
                t = pos + nh
                # Quiescence ladder, cheapest first: gap·|cur| already
                # rules most regret triggers out for free; the tighter
                # gap·(|cur| − |served|) bound costs one popcount; only
                # when both fail is the regret swept exactly — over the
                # gap rows, not the window.
                if nh and nh * cur_size > threshold:
                    served_size = int(
                        popcount_u64(served).sum(dtype=np.int64)
                    )
                    if nh * (cur_size - served_size) > threshold:
                        # Exact regret over the gap: does it fire first?
                        acc = np.bitwise_or.accumulate(
                            lanes[pos:t], axis=0
                        )
                        np.bitwise_or(acc, served, out=acc)
                        pc = popcount_u64(acc).sum(axis=1, dtype=np.int64)
                        csum = np.cumsum(cur_size - pc, dtype=np.float64)
                        rtrig = csum > threshold
                        rh = int(rtrig.argmax())
                        if rtrig[rh]:
                            t = pos + rh
                sizes[pos:t] = cur_size
                lo = max(0, off + t - (self.memory - 1))
                ws = np.bitwise_or.reduce(ext[lo : off + t + 1], axis=0)
                cur = ws
                ncur = ~cur
                cur_size = int(popcount_u64(ws).sum(dtype=np.int64))
                served = lanes[t].copy()
                regret = 0.0
                hyper[t] = True
                installed.append(ws)
                sizes[t] = cur_size
                self.multi_trigger_hits += 1
                pos = t + 1
        self._cur, self._cur_size = cur, cur_size
        self._served, self._regret = served, regret
        if installed:
            installed_arr = np.asarray(installed, dtype=np.uint64)
        else:  # pragma: no cover - a chunk always installs on first feed
            installed_arr = np.zeros((0, L), dtype=np.uint64)
        return CursorBatch(hyper=hyper, sizes=sizes, installed=installed_arr)

    @classmethod
    def sweep_many(cls, cursors, block: np.ndarray, lengths=None) -> FusedSweep:
        """Advance every cursor over its whole chunk, epoch by epoch.

        ``block`` stacks one ``(C_s, L)`` chunk per cursor into
        ``(S, Cmax, L)`` (ragged chunks zero-padded on the right, their
        true lengths in ``lengths``); all cursors must share the lane
        width and ``memory`` — the hub's group key guarantees it, while
        ``w``/``alpha`` may vary and are gathered as vectors.

        The kernel is *resumable*: per-session offsets ``pos`` track
        how far each chunk has been served.  Each epoch scans a shared
        column window — rows before a session's offset are masked to
        zero, so one prefix accumulate from column 0 serves every
        resume point at once (zero rows OR as the identity, and
        served ⊆ cur keeps masked prefixes misfit-free) — locates every
        session's *next* trigger (misfit, regret overflow, or the
        forced first step) with one argmax, and resolves all due
        triggers in one batched install pass: working-set windows
        gathered off the block (pre-chunk stream history for triggers
        near the chunk front), popcounts, served resets, regret
        resets.  Sessions with no trigger in the window
        bank their served union and regret and resume next epoch.  The
        outer loop therefore runs once per *trigger epoch* (bounded by
        the densest chunk), never per session × step.

        Exactness mirrors ``step_many``: the regret cumsum adds only
        integers (exactly representable in float64) to the carried
        float regret, so any summation order reproduces the scalar
        sequential accumulation bit for bit, and carried regret never
        exceeds the threshold, so masked prefix columns can never
        trigger.  Cursor and stream state are committed on return —
        there is nothing left to replay.
        """
        S, Cmax, L = block.shape
        if S <= SMALL_STACK_SESSIONS:
            return _sweep_small(cursors, block, lengths)
        lengths = _sweep_lengths(S, Cmax, lengths)
        memory = cursors[0].memory
        H = memory - 1
        cur = _stack_rows(cursors, "_cur", S, L)
        cur_size = np.fromiter(
            (c._cur_size for c in cursors), count=S, dtype=np.int64
        )
        served = _stack_rows(cursors, "_served", S, L)
        regret = np.fromiter(
            (c._regret for c in cursors), count=S, dtype=np.float64
        )
        threshold = np.fromiter(
            (c.alpha * c.w for c in cursors), count=S, dtype=np.float64
        )
        n0 = np.fromiter(
            (c.stream.n for c in cursors), count=S, dtype=np.int64
        )
        hyper = np.zeros((S, Cmax), dtype=bool)
        sizes = np.zeros((S, Cmax), dtype=np.int64)
        pos = np.zeros(S, dtype=np.int64)
        active = pos < lengths
        inst_sess: list[np.ndarray] = []
        inst_step: list[np.ndarray] = []
        inst_lanes: list[np.ndarray] = []
        window = np.arange(H + 1)
        scan_min = cursors[0].scan_min
        scan_max = max(cursors[0].scan_max, scan_min)
        scan = scan_min
        zero = np.uint64(0)
        epochs = 0
        while True:
            a = np.flatnonzero(active)
            if a.size == 0:
                break
            epochs += 1
            pa = pos[a]
            la = lengths[a]
            lo = int(pa.min())
            hi = min(Cmax, lo + scan)
            span = hi - lo
            # Uniform epochs — every row resumes at ``lo`` and the whole
            # window is in-bounds (the common calm case, and always the
            # first epoch of an equal-length sweep) — skip the live mask
            # entirely and read the block through views instead of
            # fancy-index copies.
            uniform = bool((pa == lo).all()) and bool((la >= hi).all())
            full = a.size == S
            sub = block[:, lo:hi] if full else block[a, lo:hi]
            if uniform:
                live = None
                acc = np.bitwise_or.accumulate(sub, axis=1)
            else:
                cols = np.arange(lo, hi)
                live = (cols >= pa[:, None]) & (cols < la[:, None])
                acc = np.bitwise_or.accumulate(
                    np.where(live[:, :, None], sub, zero), axis=1
                )
            np.bitwise_or(
                acc,
                served[:, None, :] if full else served[a, None, :],
                out=acc,
            )
            curg = cur if full else cur[a]
            misfit = ((acc & ~curg[:, None, :]) != zero).any(axis=2)
            pc = popcount_u64(acc).sum(axis=2, dtype=np.int64)
            deficit = cur_size[a, None] - pc
            if not uniform:
                deficit = np.where(live, deficit, 0)
            csum = np.cumsum(deficit, axis=1, dtype=np.float64)
            csum += regret[a, None]
            trigger = misfit | (csum > threshold[a, None])
            if not uniform:
                trigger &= live
            forced = (n0[a] == 0) & (pa == 0)
            if forced.any():
                # The first global step always installs; pos == 0
                # forces lo == 0, so column 0 is window column 0.
                trigger[forced, 0] = True
            hitcol = np.argmax(trigger, axis=1)
            has = trigger[np.arange(a.size), hitcol]
            nt = np.flatnonzero(~has)
            if nt.size:
                # No trigger in the window: serve every live column at
                # the frozen size, bank served/regret at the last one,
                # resume from the window edge (or finish the chunk).
                rows = a[nt]
                if uniform:
                    sizes[rows, lo:hi] += cur_size[rows, None]
                    served[rows] = acc[nt, -1]
                    regret[rows] = csum[nt, -1]
                    pos[rows] = hi
                else:
                    sizes[rows, lo:hi] += live[nt] * cur_size[rows, None]
                    adv = np.minimum(la[nt], hi)
                    moved = adv > pa[nt]
                    if moved.any():
                        mr = nt[moved]
                        last = adv[moved] - 1 - lo
                        served[a[mr]] = acc[mr, last]
                        regret[a[mr]] = csum[mr, last]
                        pos[a[mr]] = adv[moved]
                active[rows] = pos[rows] < lengths[rows]
            tr = np.flatnonzero(has)
            if tr.size:
                rows = a[tr]
                tcol = hitcol[tr]
                t = lo + tcol
                # Quiet prefix [pos, t) at the old frozen size...
                prefix = np.arange(span) < tcol[:, None]
                if not uniform:
                    prefix &= live[tr]
                sizes[rows, lo:hi] += prefix * cur_size[rows, None]
                # ...then one batched install: working set = this
                # requirement ∪ the last (memory-1).  Triggers deep
                # enough into the chunk read their whole window off the
                # block in one gather; the rare ones near the front
                # (t < H) reach into per-stream history row by row.
                ws = _gather_windows(cursors, block, rows, t, H, window)
                cur[rows] = ws
                new_sizes = popcount_u64(ws).sum(axis=1, dtype=np.int64)
                cur_size[rows] = new_sizes
                served[rows] = block[rows, t]
                regret[rows] = 0.0
                hyper[rows, t] = True
                sizes[rows, t] = new_sizes
                inst_sess.append(rows)
                inst_step.append(t)
                inst_lanes.append(ws)
                pos[rows] = t + 1
                active[rows] = pos[rows] < lengths[rows]
                scan = scan_min
            else:
                scan = min(scan * 2, scan_max)
        for s, c in enumerate(cursors):
            c._cur = cur[s]
            c._cur_size = int(cur_size[s])
            c._served = served[s]
            c._regret = float(regret[s])
            c._row = s
        unions = np.bitwise_or.reduce(block, axis=1)
        PackedStream.extend_many(
            [c.stream for c in cursors],
            block,
            unions=unions,
            lengths=None if int(lengths.min()) == Cmax else lengths,
        )
        installed, counts = _assemble_installs(
            inst_sess, inst_step, inst_lanes, S, L
        )
        hyper.setflags(write=False)
        sizes.setflags(write=False)
        return FusedSweep(
            hyper=hyper,
            sizes=sizes,
            installed=installed,
            installed_counts=counts,
            lengths=lengths,
            epochs=epochs,
        )


class RentOrBuyScheduler:
    """Regret-bounded online policy (ski rental generalization).

    State: the current hypercontext mask ``h`` and the accumulated
    *regret* — the extra switch-writes paid because ``h`` is larger
    than the union of the requirements actually served since the last
    hyperreconfiguration.  When serving the next requirement would
    either (a) not fit into ``h``, or (b) push the regret past
    ``alpha · w``, the scheduler hyperreconfigures to the union of the
    last ``memory`` requirements (its estimate of the new working set).
    """

    def __init__(
        self,
        w: float,
        *,
        alpha: float = 1.0,
        memory: int = 4,
        scan_min: int | None = None,
        scan_max: int | None = None,
    ):
        if w <= 0:
            raise ValueError("w must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if memory < 1:
            raise ValueError("memory must be at least 1")
        if scan_min is not None and scan_min < 1:
            raise ValueError("scan_min must be at least 1")
        if (
            scan_min is not None
            and scan_max is not None
            and scan_max < scan_min
        ):
            raise ValueError("scan_max must be at least scan_min")
        self.w = w
        self.alpha = alpha
        self.memory = memory
        #: Galloping sweep bounds for the batched cursor; ``None``
        #: defers to the cursor-class defaults.  Pure performance
        #: tunables — decisions never depend on them.
        self.scan_min = scan_min
        self.scan_max = scan_max
        self.name = f"rent_or_buy(alpha={alpha}, memory={memory})"

    def cursor(self) -> _RentOrBuyCursor:
        return _RentOrBuyCursor(self.w, self.alpha, self.memory)

    def batched_cursor(self, width: int) -> _BatchedRentOrBuyCursor:
        """Lane-packed cursor over a ``width``-switch universe."""
        return _BatchedRentOrBuyCursor(
            self.w,
            self.alpha,
            self.memory,
            width,
            scan_min=self.scan_min,
            scan_max=self.scan_max,
        )

    def plan(self, seq: RequirementSequence) -> SingleTaskSchedule:
        return plan_with_cursor(self.cursor(), seq)


class _WindowCursor:
    """State machine behind :class:`WindowScheduler`."""

    __slots__ = ("k", "current", "window")

    def __init__(self, k: int):
        self.k = k
        self.current = 0
        self.window = deque(maxlen=k)

    def step(self, i: int, req: int) -> int | None:
        installed = None
        if i % self.k == 0 or (req & ~self.current):
            estimate = req
            for m in self.window:
                estimate |= m
            self.current = estimate
            installed = estimate
        self.window.append(req)
        return installed


class _BatchedWindowCursor:
    """Lane-packed window cursor (:class:`_WindowCursor` is the scalar
    oracle; decisions here are bit-identical).

    Cadence triggers sit at known global step indices, so a chunk
    splits into spans of at most ``k`` steps; within a span the only
    possible trigger is a misfit, located with one vectorized AND-any.
    The installed estimate is the rolling ``k+1``-wide window union read
    off the history-prefixed chunk.
    """

    __slots__ = ("k", "stream", "_cur", "_cur_size", "_row")

    def __init__(self, k: int, width: int):
        self.k = k
        self.stream = PackedStream(width, history=k)
        self._cur = np.zeros(self.stream.lane_width, dtype=np.uint64)
        self._cur_size = 0
        self._row = -1

    @property
    def current(self) -> int:
        """Current hypercontext as an int mask (cursor contract)."""
        return lanes_to_masks(self._cur)

    def step_many(self, lanes: np.ndarray) -> CursorBatch:
        """Advance the cursor over a ``(C, L)`` uint64 requirement chunk."""
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        C = lanes.shape[0]
        L = self.stream.lane_width
        if C == 0:
            return _empty_batch(L)
        i0 = self.stream.n  # global index of the chunk's first step
        ext, off = self.stream.push(lanes)
        hyper = np.zeros(C, dtype=bool)
        sizes = np.empty(C, dtype=np.int64)
        installed: list[np.ndarray] = []
        cur, cur_size = self._cur, self._cur_size
        k = self.k
        pos = 0
        while pos < C:
            rem = (i0 + pos) % k
            next_cad = pos if rem == 0 else pos + (k - rem)
            if next_cad == pos:
                t = pos
            else:
                span = lanes[pos : min(next_cad, C)]
                misfit = (span & ~cur).any(axis=1)
                hit = int(np.argmax(misfit))
                if misfit[hit]:
                    t = pos + hit
                elif next_cad < C:
                    t = next_cad
                else:
                    sizes[pos:] = cur_size
                    break
            sizes[pos:t] = cur_size
            # Estimate = this requirement ∪ the previous window (the
            # last min(i, k) requirements), stale bits included.
            lo = max(0, off + t - k)
            estimate = np.bitwise_or.reduce(ext[lo : off + t + 1], axis=0)
            cur = estimate
            cur_size = int(popcount_u64(estimate).sum(dtype=np.int64))
            hyper[t] = True
            installed.append(estimate)
            sizes[t] = cur_size
            pos = t + 1
        self._cur, self._cur_size = cur, cur_size
        if installed:
            installed_arr = np.asarray(installed, dtype=np.uint64)
        else:  # pragma: no cover - a chunk always installs on first feed
            installed_arr = np.zeros((0, L), dtype=np.uint64)
        return CursorBatch(hyper=hyper, sizes=sizes, installed=installed_arr)

    @classmethod
    def sweep_many(cls, cursors, block: np.ndarray, lengths=None) -> FusedSweep:
        """Advance every cursor over its whole chunk, epoch by epoch.

        ``block`` is ``(S, Cmax, L)``, one zero-padded chunk per cursor
        (true lengths in ``lengths``); all cursors share the lane width
        and cadence ``k`` (hub group key pins both).  Same resumable
        shape as the rent-or-buy kernel, with the policy's two trigger
        kinds instead: cadence boundaries sit at known global indices
        (one modular arithmetic pass per window) and misfits are
        per-row AND-any tests against the frozen hypercontext — no
        prefix accumulate or regret state at all.  Every due trigger
        resolves in one batched install pass (rolling ``k+1``-wide
        window unions gathered off the block and, for triggers nearer
        the front than ``k``, the pre-chunk stream history), and the
        sweep resumes from per-session offsets; a cadence ``k < C``
        triggers every epoch and still never leaves the kernel.
        """
        S, Cmax, L = block.shape
        if S <= SMALL_STACK_SESSIONS:
            return _sweep_small(cursors, block, lengths)
        lengths = _sweep_lengths(S, Cmax, lengths)
        k = cursors[0].k
        cur = _stack_rows(cursors, "_cur", S, L)
        cur_size = np.fromiter(
            (c._cur_size for c in cursors), count=S, dtype=np.int64
        )
        n0 = np.fromiter(
            (c.stream.n for c in cursors), count=S, dtype=np.int64
        )
        hyper = np.zeros((S, Cmax), dtype=bool)
        sizes = np.zeros((S, Cmax), dtype=np.int64)
        pos = np.zeros(S, dtype=np.int64)
        active = pos < lengths
        inst_sess: list[np.ndarray] = []
        inst_step: list[np.ndarray] = []
        inst_lanes: list[np.ndarray] = []
        window = np.arange(k + 1)
        # Cadence boundaries are at most k apart, so a 2k window always
        # catches every session's next one regardless of phase; wider
        # scans would only touch columns a trigger resets anyway.
        scan = max(2 * k, 16)
        zero = np.uint64(0)
        epochs = 0
        while True:
            a = np.flatnonzero(active)
            if a.size == 0:
                break
            epochs += 1
            pa = pos[a]
            la = lengths[a]
            lo = int(pa.min())
            hi = min(Cmax, lo + scan)
            cols = np.arange(lo, hi)
            span = hi - lo
            # Same uniform fast path as the rent-or-buy kernel: when
            # every row resumes at ``lo`` with the whole window
            # in-bounds, skip the live mask and index through views.
            uniform = bool((pa == lo).all()) and bool((la >= hi).all())
            full = a.size == S
            sub = block[:, lo:hi] if full else block[a, lo:hi]
            curg = cur if full else cur[a]
            misfit = ((sub & ~curg[:, None, :]) != zero).any(axis=2)
            cadence = ((n0[a, None] + cols) % k) == 0
            trigger = misfit | cadence
            if uniform:
                live = None
            else:
                live = (cols >= pa[:, None]) & (cols < la[:, None])
                trigger &= live
            hitcol = np.argmax(trigger, axis=1)
            has = trigger[np.arange(a.size), hitcol]
            nt = np.flatnonzero(~has)
            if nt.size:
                rows = a[nt]
                if uniform:
                    sizes[rows, lo:hi] += cur_size[rows, None]
                    pos[rows] = hi
                else:
                    sizes[rows, lo:hi] += live[nt] * cur_size[rows, None]
                    adv = np.minimum(la[nt], hi)
                    moved = adv > pa[nt]
                    if moved.any():
                        pos[a[nt[moved]]] = adv[moved]
                active[rows] = pos[rows] < lengths[rows]
            tr = np.flatnonzero(has)
            if tr.size:
                rows = a[tr]
                tcol = hitcol[tr]
                t = lo + tcol
                prefix = np.arange(span) < tcol[:, None]
                if not uniform:
                    prefix &= live[tr]
                sizes[rows, lo:hi] += prefix * cur_size[rows, None]
                # Estimate = this requirement ∪ the previous window
                # (the last min(i, k) requirements), stale bits and all.
                est = _gather_windows(cursors, block, rows, t, k, window)
                cur[rows] = est
                new_sizes = popcount_u64(est).sum(axis=1, dtype=np.int64)
                cur_size[rows] = new_sizes
                hyper[rows, t] = True
                sizes[rows, t] = new_sizes
                inst_sess.append(rows)
                inst_step.append(t)
                inst_lanes.append(est)
                pos[rows] = t + 1
                active[rows] = pos[rows] < lengths[rows]
        for s, c in enumerate(cursors):
            c._cur = cur[s]
            c._cur_size = int(cur_size[s])
            c._row = s
        unions = np.bitwise_or.reduce(block, axis=1)
        PackedStream.extend_many(
            [c.stream for c in cursors],
            block,
            unions=unions,
            lengths=None if int(lengths.min()) == Cmax else lengths,
        )
        installed, counts = _assemble_installs(
            inst_sess, inst_step, inst_lanes, S, L
        )
        hyper.setflags(write=False)
        sizes.setflags(write=False)
        return FusedSweep(
            hyper=hyper,
            sizes=sizes,
            installed=installed,
            installed_counts=counts,
            lengths=lengths,
            epochs=epochs,
        )


class WindowScheduler:
    """Fixed-cadence policy with previous-window estimation.

    Every ``k`` steps the scheduler hyperreconfigures to its estimate
    of the coming block's needs: the union of the *previous* ``k``
    requirements (plus the step's own requirement, which it must serve
    either way).  Because the estimate is history, it can both carry
    stale switches the next block never touches *and* miss switches
    the next block needs; a miss forces an immediate corrective
    hyperreconfiguration mid-block.  Both failure modes cost real
    switch-writes, which is exactly the straw-man behavior the
    rent-or-buy comparison wants to beat.
    """

    def __init__(self, *, k: int = 8):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.name = f"window(k={k})"

    def cursor(self) -> _WindowCursor:
        return _WindowCursor(self.k)

    def batched_cursor(self, width: int) -> _BatchedWindowCursor:
        """Lane-packed cursor over a ``width``-switch universe."""
        return _BatchedWindowCursor(self.k, width)

    def plan(self, seq: RequirementSequence) -> SingleTaskSchedule:
        return plan_with_cursor(self.cursor(), seq)


def run_online(scheduler, seq: RequirementSequence, w: float) -> OnlineRun:
    """Execute an online policy and evaluate its schedule."""
    schedule = scheduler.plan(seq)
    return OnlineRun(
        schedule=schedule,
        cost=switch_cost(seq, schedule, w=w),
        solver=getattr(scheduler, "name", type(scheduler).__name__),
    )


def competitive_report(
    seq: RequirementSequence, w: float, schedulers
) -> list[list]:
    """Rows of (policy, cost, competitive ratio vs offline optimum)."""
    optimum = solve_single_switch(seq, w=w)
    rows = []
    for scheduler in schedulers:
        run = run_online(scheduler, seq, w)
        ratio = run.cost / optimum.cost if optimum.cost else 1.0
        rows.append([run.solver, run.cost, round(ratio, 3)])
    rows.append(["offline optimum", optimum.cost, 1.0])
    return rows
