"""Online (run-time) hyperreconfiguration scheduling.

The offline solvers see the whole requirement sequence; a machine
deciding *at run time* when to hyperreconfigure sees only the past.
The paper's outlook — architectures that "adapt their reconfiguration
abilities during run time" — raises exactly this question, so the
library ships two classic online policies plus a competitive-ratio
harness against the offline optimum (experiment E11):

* :class:`RentOrBuyScheduler` — ski-rental reasoning per switch set:
  keep the current hypercontext while the *regret* (cost paid above
  what a fresh minimal hypercontext would have paid for the same
  steps) is below ``alpha · w``, then hyperreconfigure to the recent
  working set.  With ``alpha = 1`` this is the classic rent-or-buy
  rule that is 2-competitive for the one-switch case.
* :class:`WindowScheduler` — hyperreconfigure every ``k`` steps to the
  union of the last window (a straw-man baseline).

Both consume requirements step by step through the common
:class:`OnlineScheduler` protocol and emit a valid
:class:`~repro.core.schedule.SingleTaskSchedule` with explicit
hypercontext masks (the online hypercontext is generally *not* the
minimal block union — the scheduler did not know the future).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.schedule import SingleTaskSchedule
from repro.solvers.single_dp import solve_single_switch

__all__ = [
    "OnlineRun",
    "RentOrBuyScheduler",
    "WindowScheduler",
    "run_online",
    "competitive_report",
]


@dataclass(frozen=True)
class OnlineRun:
    """Outcome of feeding a sequence through an online scheduler."""

    schedule: SingleTaskSchedule
    cost: float
    solver: str


class RentOrBuyScheduler:
    """Regret-bounded online policy (ski rental generalization).

    State: the current hypercontext mask ``h`` and the accumulated
    *regret* — the extra switch-writes paid because ``h`` is larger
    than the union of the requirements actually served since the last
    hyperreconfiguration.  When serving the next requirement would
    either (a) not fit into ``h``, or (b) push the regret past
    ``alpha · w``, the scheduler hyperreconfigures to the union of the
    last ``memory`` requirements (its estimate of the new working set).
    """

    def __init__(self, w: float, *, alpha: float = 1.0, memory: int = 4):
        if w <= 0:
            raise ValueError("w must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if memory < 1:
            raise ValueError("memory must be at least 1")
        self.w = w
        self.alpha = alpha
        self.memory = memory
        self.name = f"rent_or_buy(alpha={alpha}, memory={memory})"

    def plan(self, seq: RequirementSequence) -> SingleTaskSchedule:
        masks = seq.masks
        n = len(masks)
        if n == 0:
            return SingleTaskSchedule(n=0, hyper_steps=())
        hyper_steps: list[int] = []
        hyper_masks: list[int] = []
        current = 0
        served_union = 0
        regret = 0.0
        recent: list[int] = []

        def working_set(i: int) -> int:
            mask = masks[i]
            for m in recent[-(self.memory - 1):] if self.memory > 1 else []:
                mask |= m
            return mask

        for i, req in enumerate(masks):
            must = bool(req & ~current) or i == 0
            if not must:
                # Regret of serving this step under the old hypercontext.
                step_regret = current.bit_count() - (served_union | req).bit_count()
                if regret + step_regret > self.alpha * self.w:
                    must = True
            if must:
                current = working_set(i)
                hyper_steps.append(i)
                hyper_masks.append(current)
                served_union = req
                regret = 0.0
            else:
                served_union |= req
                regret += current.bit_count() - served_union.bit_count()
            recent.append(req)
        # Online hypercontexts may under-cover later steps of their
        # block only if a requirement failed to fit — impossible by
        # construction, but explicit masks must still cover the blocks;
        # widen each to its block union for schedule validity.
        schedule_steps = tuple(hyper_steps)
        widened: list[int] = []
        boundaries = list(schedule_steps) + [n]
        for k, mask in enumerate(hyper_masks):
            union = 0
            for m in masks[boundaries[k] : boundaries[k + 1]]:
                union |= m
            widened.append(mask | union)
        return SingleTaskSchedule(
            n=n, hyper_steps=schedule_steps, explicit_masks=tuple(widened)
        )


class WindowScheduler:
    """Hyperreconfigure every ``k`` steps to the coming block's needs as
    estimated by the previous window (straw-man baseline)."""

    def __init__(self, w: float, *, k: int = 8):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.w = w
        self.k = k
        self.name = f"window(k={k})"

    def plan(self, seq: RequirementSequence) -> SingleTaskSchedule:
        n = len(seq)
        if n == 0:
            return SingleTaskSchedule(n=0, hyper_steps=())
        steps = tuple(range(0, n, self.k))
        return SingleTaskSchedule(n=n, hyper_steps=steps)


def run_online(scheduler, seq: RequirementSequence, w: float) -> OnlineRun:
    """Execute an online policy and evaluate its schedule."""
    schedule = scheduler.plan(seq)
    return OnlineRun(
        schedule=schedule,
        cost=switch_cost(seq, schedule, w=w),
        solver=getattr(scheduler, "name", type(scheduler).__name__),
    )


def competitive_report(
    seq: RequirementSequence, w: float, schedulers
) -> list[list]:
    """Rows of (policy, cost, competitive ratio vs offline optimum)."""
    optimum = solve_single_switch(seq, w=w)
    rows = []
    for scheduler in schedulers:
        run = run_online(scheduler, seq, w)
        ratio = run.cost / optimum.cost if optimum.cost else 1.0
        rows.append([run.solver, run.cost, round(ratio, 3)])
    rows.append(["offline optimum", optimum.cost, 1.0])
    return rows
