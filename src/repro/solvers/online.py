"""Online (run-time) hyperreconfiguration scheduling.

The offline solvers see the whole requirement sequence; a machine
deciding *at run time* when to hyperreconfigure sees only the past.
The paper's outlook — architectures that "adapt their reconfiguration
abilities during run time" — raises exactly this question, so the
library ships two classic online policies plus a competitive-ratio
harness against the offline optimum (experiment E11):

* :class:`RentOrBuyScheduler` — ski-rental reasoning per switch set:
  keep the current hypercontext while the *regret* (cost paid above
  what a fresh minimal hypercontext would have paid for the same
  steps) is below ``alpha · w``, then hyperreconfigure to the recent
  working set.  With ``alpha = 1`` this is the classic rent-or-buy
  rule that is 2-competitive for the one-switch case.
* :class:`WindowScheduler` — hyperreconfigure every ``k`` steps to the
  coming block's needs as *estimated by the previous window* (the
  union of the last ``k`` requirements).  A requirement that does not
  fit the estimate forces an immediate corrective
  hyperreconfiguration — the policy pays for its mispredictions,
  which is what makes it an honest straw-man baseline.

Both policies expose two entry points over the same decision logic:

* :meth:`plan` — feed a whole sequence, get a valid
  :class:`~repro.core.schedule.SingleTaskSchedule` with explicit
  hypercontext masks (the online hypercontext is generally *not* the
  minimal block union — the scheduler did not know the future);
* :meth:`cursor` — a stateful step-by-step cursor for streaming use
  (see :mod:`repro.engine.stream`).  A cursor's ``step(i, mask)``
  returns the newly installed hypercontext mask when the policy
  hyperreconfigures at step ``i`` and ``None`` when it keeps the
  current one; after the call, ``cursor.current`` always covers
  ``mask`` (cursors hyperreconfigure rather than serve a requirement
  they cannot satisfy).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.schedule import SingleTaskSchedule
from repro.solvers.single_dp import solve_single_switch

__all__ = [
    "OnlineRun",
    "RentOrBuyScheduler",
    "WindowScheduler",
    "plan_with_cursor",
    "run_online",
    "competitive_report",
]


@dataclass(frozen=True)
class OnlineRun:
    """Outcome of feeding a sequence through an online scheduler."""

    schedule: SingleTaskSchedule
    cost: float
    solver: str


def plan_with_cursor(cursor, seq: RequirementSequence) -> SingleTaskSchedule:
    """Drive a policy cursor over a whole sequence.

    Every cursor hyperreconfigures at step 0 and afterwards whenever a
    requirement does not fit, so the recorded masks already cover their
    blocks; they are still widened by the block unions as a safety net
    (a no-op for well-behaved cursors, and the cheapest way to keep the
    "explicit masks must cover" invariant unconditionally true).
    """
    masks = seq.masks
    n = len(masks)
    if n == 0:
        return SingleTaskSchedule(n=0, hyper_steps=())
    hyper_steps: list[int] = []
    hyper_masks: list[int] = []
    for i, req in enumerate(masks):
        installed = cursor.step(i, req)
        if installed is not None:
            hyper_steps.append(i)
            hyper_masks.append(installed)
    boundaries = hyper_steps + [n]
    widened: list[int] = []
    for k, mask in enumerate(hyper_masks):
        union = 0
        for m in masks[boundaries[k] : boundaries[k + 1]]:
            union |= m
        widened.append(mask | union)
    return SingleTaskSchedule(
        n=n, hyper_steps=tuple(hyper_steps), explicit_masks=tuple(widened)
    )


class _RentOrBuyCursor:
    """State machine behind :class:`RentOrBuyScheduler`."""

    __slots__ = ("w", "alpha", "current", "served_union", "regret", "recent")

    def __init__(self, w: float, alpha: float, memory: int):
        self.w = w
        self.alpha = alpha
        self.current = 0
        self.served_union = 0
        self.regret = 0.0
        # Working-set estimate = new requirement ∪ last (memory-1) ones.
        self.recent = deque(maxlen=memory - 1) if memory > 1 else None

    def step(self, i: int, req: int) -> int | None:
        must = bool(req & ~self.current) or i == 0
        if not must:
            # Regret of serving this step under the old hypercontext.
            step_regret = (
                self.current.bit_count() - (self.served_union | req).bit_count()
            )
            if self.regret + step_regret > self.alpha * self.w:
                must = True
        installed = None
        if must:
            working_set = req
            if self.recent is not None:
                for m in self.recent:
                    working_set |= m
            self.current = working_set
            self.served_union = req
            self.regret = 0.0
            installed = working_set
        else:
            self.served_union |= req
            self.regret += self.current.bit_count() - self.served_union.bit_count()
        if self.recent is not None:
            self.recent.append(req)
        return installed


class RentOrBuyScheduler:
    """Regret-bounded online policy (ski rental generalization).

    State: the current hypercontext mask ``h`` and the accumulated
    *regret* — the extra switch-writes paid because ``h`` is larger
    than the union of the requirements actually served since the last
    hyperreconfiguration.  When serving the next requirement would
    either (a) not fit into ``h``, or (b) push the regret past
    ``alpha · w``, the scheduler hyperreconfigures to the union of the
    last ``memory`` requirements (its estimate of the new working set).
    """

    def __init__(self, w: float, *, alpha: float = 1.0, memory: int = 4):
        if w <= 0:
            raise ValueError("w must be positive")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if memory < 1:
            raise ValueError("memory must be at least 1")
        self.w = w
        self.alpha = alpha
        self.memory = memory
        self.name = f"rent_or_buy(alpha={alpha}, memory={memory})"

    def cursor(self) -> _RentOrBuyCursor:
        return _RentOrBuyCursor(self.w, self.alpha, self.memory)

    def plan(self, seq: RequirementSequence) -> SingleTaskSchedule:
        return plan_with_cursor(self.cursor(), seq)


class _WindowCursor:
    """State machine behind :class:`WindowScheduler`."""

    __slots__ = ("k", "current", "window")

    def __init__(self, k: int):
        self.k = k
        self.current = 0
        self.window = deque(maxlen=k)

    def step(self, i: int, req: int) -> int | None:
        installed = None
        if i % self.k == 0 or (req & ~self.current):
            estimate = req
            for m in self.window:
                estimate |= m
            self.current = estimate
            installed = estimate
        self.window.append(req)
        return installed


class WindowScheduler:
    """Fixed-cadence policy with previous-window estimation.

    Every ``k`` steps the scheduler hyperreconfigures to its estimate
    of the coming block's needs: the union of the *previous* ``k``
    requirements (plus the step's own requirement, which it must serve
    either way).  Because the estimate is history, it can both carry
    stale switches the next block never touches *and* miss switches
    the next block needs; a miss forces an immediate corrective
    hyperreconfiguration mid-block.  Both failure modes cost real
    switch-writes, which is exactly the straw-man behavior the
    rent-or-buy comparison wants to beat.
    """

    def __init__(self, *, k: int = 8):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.name = f"window(k={k})"

    def cursor(self) -> _WindowCursor:
        return _WindowCursor(self.k)

    def plan(self, seq: RequirementSequence) -> SingleTaskSchedule:
        return plan_with_cursor(self.cursor(), seq)


def run_online(scheduler, seq: RequirementSequence, w: float) -> OnlineRun:
    """Execute an online policy and evaluate its schedule."""
    schedule = scheduler.plan(seq)
    return OnlineRun(
        schedule=schedule,
        cost=switch_cost(seq, schedule, w=w),
        solver=getattr(scheduler, "name", type(scheduler).__name__),
    )


def competitive_report(
    seq: RequirementSequence, w: float, schedulers
) -> list[list]:
    """Rows of (policy, cost, competitive ratio vs offline optimum)."""
    optimum = solve_single_switch(seq, w=w)
    rows = []
    for scheduler in schedulers:
        run = run_online(scheduler, seq, w)
        ratio = run.cost / optimum.cost if optimum.cost else 1.0
        rows.append([run.solver, run.cost, round(ratio, 3)])
    rows.append(["offline optimum", optimum.cost, 1.0])
    return rows
