"""Solvers for the reconfiguration problems of the paper.

* :mod:`repro.solvers.single_dp` — optimal O(n²) dynamic program for the
  single-task switch model (Partition into Hypercontexts, cmp. [9]);
* :mod:`repro.solvers.mt_exact` — exact DP with Pareto pruning for the
  fully synchronized MT-Switch problem (reference implementation of the
  Theorem 1 algorithm; exact for small task counts);
* :mod:`repro.solvers.mt_genetic` — the genetic algorithm used for the
  paper's m = 4 experiments;
* :mod:`repro.solvers.mt_greedy` — greedy constructions and local search;
* :mod:`repro.solvers.exhaustive` — brute-force enumeration (validation);
* :mod:`repro.solvers.dag_dp` — DP for the coarse-grained DAG model;
* :mod:`repro.solvers.general_bb` — branch & bound for the NP-hard
  general model;
* :mod:`repro.solvers.changeover` — solvers for the changeover-cost
  variant;
* :mod:`repro.solvers.private_global` — two-level optimizer with private
  global resources;
* :mod:`repro.solvers.lower_bounds` — admissible lower bounds shared by
  the exact solvers and the tests.
"""

from repro.solvers.base import SolveResult, MTSolveResult
from repro.solvers.single_dp import solve_single_switch
from repro.solvers.exhaustive import (
    enumerate_single_schedules,
    solve_single_exhaustive,
    solve_mt_exhaustive,
)
from repro.solvers.mt_greedy import (
    solve_mt_greedy_merge,
    solve_mt_independent,
    solve_mt_from_single,
    local_search,
)
from repro.solvers.mt_exact import solve_mt_exact
from repro.solvers.mt_genetic import GAParams, solve_mt_genetic
from repro.solvers.dag_dp import solve_dag
from repro.solvers.general_bb import solve_general_bb, solve_general_greedy
from repro.solvers.changeover import (
    solve_changeover_exact,
    solve_changeover_heuristic,
)
from repro.solvers.private_global import solve_private_global
from repro.solvers.mt_async import solve_mt_async, async_vs_sync_gap
from repro.solvers.mt_annealing import AnnealParams, solve_mt_annealing
from repro.solvers.mt_branch_bound import solve_mt_branch_bound
from repro.solvers.auto import solve_mt_auto
from repro.solvers.online import (
    RentOrBuyScheduler,
    WindowScheduler,
    run_online,
    competitive_report,
)
from repro.solvers.lower_bounds import (
    switch_lower_bound,
    sync_mt_lower_bound,
)

__all__ = [
    "SolveResult",
    "MTSolveResult",
    "solve_single_switch",
    "enumerate_single_schedules",
    "solve_single_exhaustive",
    "solve_mt_exhaustive",
    "solve_mt_greedy_merge",
    "solve_mt_independent",
    "solve_mt_from_single",
    "local_search",
    "solve_mt_exact",
    "GAParams",
    "solve_mt_genetic",
    "solve_dag",
    "solve_general_bb",
    "solve_general_greedy",
    "solve_changeover_exact",
    "solve_changeover_heuristic",
    "solve_private_global",
    "solve_mt_async",
    "async_vs_sync_gap",
    "AnnealParams",
    "solve_mt_annealing",
    "solve_mt_branch_bound",
    "solve_mt_auto",
    "RentOrBuyScheduler",
    "WindowScheduler",
    "run_online",
    "competitive_report",
    "switch_lower_bound",
    "sync_mt_lower_bound",
]
