"""Exact DP for the fully synchronized MT-Switch problem.

Reference implementation of the polynomial-time result of **Theorem 1**
(only local resources; task-sequential uploads are supported too since
they only change per-step aggregation from max to sum).

Formulation.  When task ``j`` hyperreconfigures before round ``i`` it
*commits* a hypercontext that must cover every requirement up to its
next hyperreconfiguration; under monotone switch costs an optimal
commitment is the union of a window ``c_{j,i} ∪ … ∪ c_{j,t-1}`` with
the next hyperreconfiguration exactly at ``t`` (a larger-than-needed
window is never cheaper, a hypercontext bigger than the window union
never necessary).  The DP therefore tracks, per task, the pair
``(committed hypercontext, next hyper time)``::

    state  = ((h_1, t_1), …, (h_m, t_m))
    step i = tasks with t_j == i choose new windows (i, t'];
             step cost = agg_{j due} v_j + agg_j |h_j|

with ``agg`` = max (task-parallel) or Σ (task-sequential).  Per task
there are O(n²) windows, so states are polynomial for fixed ``m`` —
the same ``l^{2m}``-type blowup as the paper's O(m n⁴ l^{2m}) bound
(the full algorithm was deferred to the unpublished long version).

Pareto dominance pruning (within groups of equal next-hyper-time
vectors) keeps only states not dominated by a cheaper state with
component-wise ⊆ hypercontexts; both future step costs and feasibility
are monotone in the hypercontext vector, so pruning preserves the
optimum.  Intended for cross-validating the heuristics on small
instances — use the GA at paper scale (m = 4, n = 110), as the paper
itself does.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import product

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel, UploadMode
from repro.core.schedule import MultiTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult

__all__ = ["solve_mt_exact"]


def solve_mt_exact(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    *,
    max_states: int = 2_000_000,
    pareto: bool = True,
) -> MTSolveResult:
    """Solve the fully synchronized MT-Switch problem exactly.

    Parameters
    ----------
    max_states:
        Safety valve on the total number of expanded DP states; the
        solver raises rather than silently degrade, keeping the
        ``optimal=True`` contract honest.
    pareto:
        Enable dominance pruning (never changes the optimum).

    Raises
    ------
    ValueError
        If the state budget is exceeded (use the GA for such sizes, as
        the paper does for m = 4).
    """
    if model is None:
        model = MachineModel.paper_experimental()
    m = system.m
    if len(seqs) != m:
        raise ValueError("need one sequence per task")
    n = len(seqs[0])
    for s in seqs:
        if len(s) != n:
            raise ValueError("sequences must have equal length")
    if n == 0:
        schedule = MultiTaskSchedule([[] for _ in range(m)])
        return MTSolveResult(schedule, 0.0, True, "mt_exact", {"states": 0})

    hyper_parallel = model.hyper_upload is UploadMode.TASK_PARALLEL
    reconf_parallel = model.reconfig_upload is UploadMode.TASK_PARALLEL
    all_or_none = not model.machine_class.allows_partial_hyper

    v = system.v
    masks = [seq.masks for seq in seqs]
    # window_union[j][s][t] = union of task j's requirements in [s, t).
    window_union: list[list[list[int]]] = []
    for j in range(m):
        rows = []
        for s in range(n):
            acc = 0
            row = [0] * (n + 1)
            for t in range(s + 1, n + 1):
                acc |= masks[j][t - 1]
                row[t] = acc
            rows.append(row)
        window_union.append(rows)

    def agg_hyper(due: tuple[int, ...]) -> float:
        if not due:
            return 0.0
        vals = [v[j] for j in due]
        return max(vals) if hyper_parallel else sum(vals)

    def agg_reconf(hs: tuple[tuple[int, int], ...]) -> float:
        sizes = [h.bit_count() for h, _t in hs]
        return float(max(sizes)) if reconf_parallel else float(sum(sizes))

    # State: tuple of (h_mask, t_next) per task.  parents[i] maps the
    # post-step-i state to (cost, parent_state, ends) where `ends` lists
    # the window ends chosen by the tasks due at step i.
    def expand(
        state: tuple[tuple[int, int], ...] | None,
        i: int,
        base_cost: float,
        nxt: dict,
    ) -> None:
        due = (
            tuple(range(m))
            if state is None
            else tuple(j for j in range(m) if state[j][1] == i)
        )
        if all_or_none and state is not None and due and len(due) != m:
            # A partially reconfigurable machine hyperreconfigures all
            # tasks together, so window ends must be aligned; aligned
            # starts guarantee aligned dues, enforced by construction
            # (window choices below are shared across tasks).
            raise AssertionError("unaligned dues under all-or-none")
        hyper = agg_hyper(due)
        if not due:
            key = state
            cost = base_cost + agg_reconf(key)
            prev = nxt.get(key)
            if prev is None or base_cost + agg_reconf(key) < prev[0]:
                nxt[key] = (cost, state, ())
            return
        if all_or_none:
            end_choices: list[tuple[int, ...]] = [
                (t,) * len(due) for t in range(i + 1, n + 1)
            ]
        else:
            end_choices = list(
                product(range(i + 1, n + 1), repeat=len(due))
            )
        for ends in end_choices:
            new_state = list(state) if state is not None else [None] * m
            for j, t in zip(due, ends):
                new_state[j] = (window_union[j][i][t], t)
            key = tuple(new_state)
            cost = base_cost + hyper + agg_reconf(key)
            prev = nxt.get(key)
            if prev is None or cost < prev[0]:
                nxt[key] = (cost, state, tuple(zip(due, ends)))

    frontier: dict = {}
    expand(None, 0, 0.0, frontier)
    if pareto:
        frontier = _pareto_prune(frontier, m)
    parents: list[dict] = [dict(frontier)]
    states_expanded = len(frontier)

    for i in range(1, n):
        nxt: dict = {}
        for state, (cost, _p, _e) in frontier.items():
            expand(state, i, cost, nxt)
        states_expanded += len(nxt)
        if states_expanded > max_states:
            raise ValueError(
                f"mt_exact exceeded max_states={max_states} at round {i}; "
                "use solve_mt_genetic for instances of this size"
            )
        if pareto:
            nxt = _pareto_prune(nxt, m)
        parents.append(nxt)
        frontier = nxt

    # Only states whose every window ends exactly at n are complete.
    final = {
        s: val for s, val in frontier.items() if all(t == n for _h, t in s)
    }
    if not final:  # pragma: no cover - windows always reach n by choice set
        raise AssertionError("no complete DP state")
    best_state = min(final, key=lambda s: final[s][0])
    best_cost = final[best_state][0]

    rows = [[False] * n for _ in range(m)]
    state = best_state
    for i in range(n - 1, -1, -1):
        cost, parent, decisions = parents[i][state]
        for j, _t in decisions:
            rows[j][i] = True
        state = parent
    schedule = MultiTaskSchedule(rows)
    check = sync_switch_cost(system, seqs, schedule, model)
    if abs(check - best_cost) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError(
            f"DP cost {best_cost} disagrees with evaluated cost {check}"
        )
    return MTSolveResult(
        schedule=schedule,
        cost=check,
        optimal=True,
        solver="mt_exact",
        stats={"states": states_expanded, "final_frontier": len(final)},
    )


def _pareto_prune(states: dict, m: int) -> dict:
    """Drop states dominated by a cheaper one with ⊆ hypercontexts.

    Only states with identical next-hyper-time vectors are comparable
    (different timings imply different future decision structure).
    """
    groups: dict[tuple[int, ...], list] = {}
    for key, value in states.items():
        tvec = tuple(t for _h, t in key)
        groups.setdefault(tvec, []).append((key, value))
    kept: dict = {}
    for items in groups.values():
        items.sort(key=lambda kv: kv[1][0])
        chosen: list = []
        for key, value in items:
            dominated = False
            for kkey, _v in chosen:
                for j in range(m):
                    if kkey[j][0] & ~key[j][0]:
                        break
                else:
                    dominated = True
                if dominated:
                    break
            if not dominated:
                chosen.append((key, value))
        kept.update(dict(chosen))
    return kept
