"""Optimal single-task switch-model scheduling (Partition into
Hypercontexts).

Given a requirement sequence ``c_1 … c_n`` and hyperreconfiguration
cost ``w``, choose block boundaries minimizing

    r·w + Σ_blocks |∪ block| · len(block).

Under the switch model the optimal hypercontext of a block is always
the union of its requirements (costs are monotone in ``|h|``), so the
problem reduces to a one-dimensional partition and the classic dynamic
program applies::

    D[0] = 0
    D[j] = min_{0 ≤ i < j}  D[i] + w + |c_{i+1} ∪ … ∪ c_j| · (j - i)

Unions are accumulated incrementally while the inner loop walks ``i``
downwards, so the total work is O(n²) word operations — the polynomial
algorithm the paper's single-task comparison relies on (cmp. [9]).
This is also the m = 1 special case of Theorem 1.
"""

from __future__ import annotations

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.schedule import SingleTaskSchedule
from repro.solvers.base import SolveResult

__all__ = ["solve_single_switch"]


def solve_single_switch(
    seq: RequirementSequence,
    w: float,
    *,
    max_block: int | None = None,
) -> SolveResult:
    """Minimize the single-task switch-model cost exactly.

    Parameters
    ----------
    seq:
        The context-requirement sequence.
    w:
        Hyperreconfiguration cost ``w > 0`` (the paper suggests
        ``w = |X|``).
    max_block:
        Optional upper bound on block length (models architectures
        whose hypercontext registers expire); ``None`` means unbounded.

    Returns a :class:`SolveResult` with ``optimal=True``; the DP cost
    is re-verified against :func:`repro.core.cost_single.switch_cost`
    before returning, so the schedule and the claimed objective can
    never drift apart.
    """
    if w <= 0:
        raise ValueError("hyperreconfiguration cost w must be positive")
    if max_block is not None and max_block < 1:
        raise ValueError("max_block must be at least 1")
    masks = seq.masks
    n = len(masks)
    if n == 0:
        schedule = SingleTaskSchedule(n=0, hyper_steps=())
        return SolveResult(schedule, 0.0, True, "single_dp", {"states": 0})

    INF = float("inf")
    best = [INF] * (n + 1)
    best[0] = 0.0
    parent = [0] * (n + 1)
    states = 0
    for j in range(1, n + 1):
        union = 0
        lo = 0 if max_block is None else max(0, j - max_block)
        # i walks downwards so the union of c_{i+1..j} grows incrementally.
        for i in range(j - 1, lo - 1, -1):
            union |= masks[i]
            states += 1
            cand = best[i] + w + union.bit_count() * (j - i)
            if cand < best[j]:
                best[j] = cand
                parent[j] = i
    if best[n] == INF:
        raise ValueError("no feasible partition (max_block too small?)")

    # Backtrack block starts.
    cuts = []
    j = n
    while j > 0:
        i = parent[j]
        cuts.append(i)
        j = i
    cuts.reverse()
    schedule = SingleTaskSchedule(n=n, hyper_steps=tuple(cuts))
    cost = switch_cost(seq, schedule, w)
    if abs(cost - best[n]) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError(
            f"DP cost {best[n]} disagrees with evaluated cost {cost}"
        )
    return SolveResult(
        schedule=schedule,
        cost=cost,
        optimal=True,
        solver="single_dp",
        stats={"states": states, "blocks": schedule.r},
    )
