"""Solvers for the NP-hard general cost model (single task).

In the general model ``init`` and ``cost`` are arbitrary functions of
the hypercontext.  When hypercontexts are subsets of a switch universe
given *implicitly* (all ``2^|X|`` subsets, costs via oracle functions)
the optimal-(hyper)reconfiguration problem is NP-complete even for one
task ([9]), because the optimal hypercontext of a block need not be the
union of its requirements — a non-monotone ``cost`` can make padded or
carefully chosen supersets cheaper.

Two solvers:

* :func:`solve_general_bb` — exact: a partition DP whose inner step
  enumerates **every** superset of the window union (exponential in the
  number of free switches, faithful to the hardness);
* :func:`solve_general_greedy` — polynomial heuristic restricting each
  window to two candidates (the union and the full universe).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.context import RequirementSequence
from repro.core.cost_single import general_cost
from repro.core.schedule import SingleTaskSchedule
from repro.solvers.base import SolveResult

__all__ = ["solve_general_bb", "solve_general_greedy"]

CostFn = Callable[[int], float]


def _supersets(union: int, full: int):
    """Yield every mask ``h`` with ``union ⊆ h ⊆ full``."""
    free = full & ~union
    sub = free
    while True:
        yield union | sub
        if sub == 0:
            return
        sub = (sub - 1) & free


def _partition_dp(
    seq: RequirementSequence,
    init: CostFn,
    cost: CostFn,
    candidates: Callable[[int, int], "list[int]"],
    solver: str,
    optimal: bool,
) -> SolveResult:
    """Shared partition DP; ``candidates(union, length)`` supplies the
    hypercontext masks considered for a window."""
    masks = seq.masks
    n = len(masks)
    if n == 0:
        return SolveResult(
            SingleTaskSchedule(n=0, hyper_steps=()), 0.0, optimal, solver, {}
        )
    INF = float("inf")
    best = [INF] * (n + 1)
    best[0] = 0.0
    parent: list[tuple[int, int]] = [(-1, 0)] * (n + 1)
    evaluated = 0
    for j in range(1, n + 1):
        union = 0
        for i in range(j - 1, -1, -1):
            union |= masks[i]
            length = j - i
            for h in candidates(union, length):
                evaluated += 1
                cand = best[i] + init(h) + cost(h) * length
                if cand < best[j]:
                    best[j] = cand
                    parent[j] = (i, h)
    cuts: list[int] = []
    hmasks: list[int] = []
    j = n
    while j > 0:
        i, h = parent[j]
        cuts.append(i)
        hmasks.append(h)
        j = i
    cuts.reverse()
    hmasks.reverse()
    schedule = SingleTaskSchedule(
        n=n, hyper_steps=tuple(cuts), explicit_masks=tuple(hmasks)
    )
    blocks = [
        (h, stop - start)
        for h, (start, stop) in zip(hmasks, schedule.blocks())
    ]
    check = general_cost(blocks, init, cost)
    if abs(check - best[n]) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError("general-model DP cost mismatch")
    return SolveResult(
        schedule=schedule,
        cost=check,
        optimal=optimal,
        solver=solver,
        stats={"evaluated": evaluated},
    )


def solve_general_bb(
    seq: RequirementSequence,
    init: CostFn,
    cost: CostFn,
    *,
    max_free_bits: int = 20,
) -> SolveResult:
    """Exact general-model optimum (exponential inner enumeration).

    For each window the inner minimization scans all supersets of the
    window union inside the universe; refuses universes where more than
    ``max_free_bits`` switches can be free at once.
    """
    full = seq.universe.full_mask
    min_union = 0
    for m in seq.masks:
        min_union |= m
    free_bits = (full & ~min_union).bit_count() + 0
    # The worst window is the one with the smallest union (a single step).
    worst_free = max(
        ((full & ~m).bit_count() for m in seq.masks), default=0
    )
    if worst_free > max_free_bits:
        raise ValueError(
            f"{worst_free} free switches exceed max_free_bits="
            f"{max_free_bits}; the exact general-model search is "
            "exponential (the problem is NP-hard)"
        )

    def candidates(union: int, _length: int) -> list[int]:
        return list(_supersets(union, full))

    return _partition_dp(seq, init, cost, candidates, "general_bb", True)


def solve_general_greedy(
    seq: RequirementSequence,
    init: CostFn,
    cost: CostFn,
) -> SolveResult:
    """Polynomial heuristic: per window consider only the union and the
    full universe (the latter catches cost functions that reward big
    hypercontexts)."""
    full = seq.universe.full_mask

    def candidates(union: int, _length: int) -> list[int]:
        return [union] if union == full else [union, full]

    return _partition_dp(seq, init, cost, candidates, "general_greedy", False)
