"""Two-level scheduling with private global resources.

With a private-global pool ``X^priv`` the run is segmented by global
hyperreconfigurations (cost ``w`` each, barrier-synchronized); each
segment's global hypercontext assigns disjoint private slices to the
tasks, and within the segment the usual fully synchronized MT-Switch
problem is solved over each task's combined (local ∪ assigned private)
requirements.  Theorem 1 states polynomial solvability
(``O(m n⁷ (lm+g)²)``); this module implements the natural two-level
decomposition:

* outer — a segmentation DP over global-hyperreconfiguration points
  (O(n²) windows), with the per-window private demands answered by a
  lane-packed :class:`~repro.core.packed.PackedWindows` sparse table
  (O(1) per query instead of a fresh O(window) union sweep per
  candidate);
* inner — per window: the **minimal assignment** gives each task
  exactly the private switches it demands in the window (optimal under
  monotone costs; infeasible iff two tasks demand the same private
  switch in the window, which *forces* a global hyperreconfiguration
  between the conflicting steps), then a configurable MT-Switch solver
  (greedy by default, GA or exact on request).

The inner solver being heuristic makes the overall result heuristic
unless ``inner="exact"`` — the result's ``optimal`` flag reports this
honestly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.globalres import GlobalHypercontext, GlobalPhase, GlobalSchedule
from repro.core.machine import MachineModel
from repro.core.packed import PackedWindows
from repro.core.schedule import MultiTaskSchedule
from repro.core.switches import SwitchSet
from repro.core.task import Task, TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.mt_exact import solve_mt_exact
from repro.solvers.mt_genetic import GAParams, solve_mt_genetic
from repro.solvers.mt_greedy import solve_mt_greedy_merge

__all__ = ["PrivateGlobalResult", "solve_private_global"]


@dataclass(frozen=True)
class PrivateGlobalResult:
    """Result of the two-level solver."""

    schedule: GlobalSchedule
    cost: float
    optimal: bool
    solver: str
    stats: dict


def _window_assignments(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    start: int,
    stop: int,
    windows: PackedWindows | None = None,
) -> tuple[int, ...] | None:
    """Minimal private assignments for a window, or None on conflict.

    ``windows`` optionally answers the per-task window unions from a
    lane-packed sparse table in O(1) instead of a fresh O(window)
    scalar union per task.
    """
    pool = system.private_global_mask
    if windows is not None:
        demands = windows.union_masks(start, stop)
    else:
        demands = [seq.union_mask(start, stop) for seq in seqs]
    assignments = []
    seen = 0
    for demand in demands:
        demand &= pool
        if demand & seen:
            return None
        seen |= demand
        assignments.append(demand)
    return tuple(assignments)


def _segment_system(
    system: TaskSystem, assignments: tuple[int, ...]
) -> TaskSystem:
    """Task system for one segment: static ``v_j = l_j + |h_j|``.

    Mirrors the paper's example cost ``init(h_j, f^loc_j) = |h_j| +
    |f^loc_j|``.  Explicit task ``init_cost`` values are respected.
    """
    tasks = []
    for task, assign in zip(system.tasks, assignments):
        v = task.init_cost
        if v is None:
            v = task.size + assign.bit_count()
        tasks.append(Task(task.name, task.local, init_cost=float(v)))
    return TaskSystem(
        system.universe,
        tasks,
        private_global=SwitchSet(system.universe, system.private_global_mask)
        if system.private_global_mask
        else None,
    )


def solve_private_global(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    *,
    w: float,
    model: MachineModel | None = None,
    inner: str = "greedy",
    ga_params: GAParams | None = None,
    max_n: int = 150,
) -> PrivateGlobalResult:
    """Minimize total cost over segmentations and assignments.

    Parameters
    ----------
    system:
        Must declare a non-empty private-global pool.
    seqs:
        Per-task requirement sequences over local ∪ private bits.
    w:
        Global hyperreconfiguration cost (e.g. ``|X| + |X^priv|``).
    inner:
        ``"greedy"`` (default), ``"ga"`` or ``"exact"`` — the MT-Switch
        solver run inside each candidate segment.
    """
    if system.private_global_mask == 0:
        raise ValueError(
            "solve_private_global needs a private-global pool; use the "
            "plain MT-Switch solvers otherwise"
        )
    if w <= 0:
        raise ValueError("global hyperreconfiguration cost w must be positive")
    n = len(seqs[0])
    if n > max_n:
        raise ValueError(f"instance too large for the segmentation DP (n > {max_n})")
    if any(len(s) != n for s in seqs):
        raise ValueError("sequences must have equal length")
    if model is None:
        model = MachineModel.paper_experimental()

    def run_inner(
        seg_system: TaskSystem, seg_seqs: list[RequirementSequence]
    ) -> MTSolveResult:
        if inner == "greedy":
            return solve_mt_greedy_merge(seg_system, seg_seqs, model)
        if inner == "ga":
            return solve_mt_genetic(
                seg_system, seg_seqs, model, ga_params, seed=0
            )
        if inner == "exact":
            return solve_mt_exact(seg_system, seg_seqs, model)
        raise ValueError(f"unknown inner solver {inner!r}")

    INF = float("inf")
    best = [INF] * (n + 1)
    best[0] = 0.0
    parent: list[tuple[int, tuple[int, ...], MultiTaskSchedule] | None] = [
        None
    ] * (n + 1)
    inner_calls = 0
    window_queries = 0
    windows = PackedWindows.from_sequences(seqs) if n else None
    cache: dict[tuple[int, int], tuple[float, tuple[int, ...], MultiTaskSchedule] | None] = {}

    for j in range(1, n + 1):
        for i in range(j):
            if best[i] == INF:
                continue
            key = (i, j)
            if key not in cache:
                window_queries += 1
                assignments = _window_assignments(system, seqs, i, j, windows)
                if assignments is None:
                    cache[key] = None
                else:
                    seg_system = _segment_system(system, assignments)
                    seg_seqs = [s[i:j] for s in seqs]
                    result = run_inner(seg_system, seg_seqs)
                    inner_calls += 1
                    cache[key] = (result.cost, assignments, result.schedule)
            entry = cache[key]
            if entry is None:
                continue
            seg_cost, assignments, schedule = entry
            cand = best[i] + w + seg_cost
            if cand < best[j]:
                best[j] = cand
                parent[j] = (i, assignments, schedule)

    if best[n] == INF:
        raise ValueError("no feasible segmentation exists")

    phases: list[GlobalPhase] = []
    j = n
    while j > 0:
        i, assignments, schedule = parent[j]
        phases.append(
            GlobalPhase(
                start=i,
                stop=j,
                hypercontext=GlobalHypercontext(
                    public_mask=0, assignments=assignments
                ),
                schedule=schedule,
            )
        )
        j = i
    phases.reverse()
    gschedule = GlobalSchedule(n, phases)
    cost = gschedule.cost(system, seqs, w=w, model=model)
    if abs(cost - best[n]) > 1e-6:  # pragma: no cover - internal invariant
        raise AssertionError("segmentation DP cost mismatch")
    return PrivateGlobalResult(
        schedule=gschedule,
        cost=cost,
        optimal=(inner == "exact"),
        solver=f"private_global[{inner}]",
        stats={
            "inner_calls": inner_calls,
            "phases": len(phases),
            "window_queries": window_queries,
        },
    )
