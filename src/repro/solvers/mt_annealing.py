"""Simulated annealing for the fully synchronized MT-Switch problem.

A second metaheuristic besides the paper's GA, useful both as a
cross-check (two independent stochastic searches agreeing on a value is
strong evidence) and because annealing explores *locally* — it tends to
polish a warm start better than the GA's crossover does, while the GA
covers more of the space.  The solver-quality ablation (E4) compares
all three.

Neighborhood moves (picked with fixed probabilities):

* flip — toggle one indicator bit;
* align — copy one step's indicator from one task to all tasks
  (parallel uploads reward alignment);
* shift — move one task's hyperreconfiguration to an adjacent step.

Cost deltas are evaluated with the reference cost function on a full
schedule copy: n is small in this problem family (hundreds), so
correctness and clarity win over incremental bookkeeping.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.schedule import MultiTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.mt_greedy import solve_mt_greedy_merge
from repro.util.rng import SeedLike, make_rng

__all__ = ["AnnealParams", "solve_mt_annealing"]


@dataclass(frozen=True)
class AnnealParams:
    """Annealing schedule and move mix."""

    iterations: int = 20_000
    t_start: float = 8.0
    t_end: float = 0.05
    p_flip: float = 0.6
    p_align: float = 0.2  # remainder is the shift move
    restarts: int = 1
    seed_with_greedy: bool = True

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.t_start <= 0 or self.t_end <= 0 or self.t_end > self.t_start:
            raise ValueError("need t_start ≥ t_end > 0")
        if not 0 <= self.p_flip + self.p_align <= 1:
            raise ValueError("move probabilities must sum to ≤ 1")
        if self.restarts < 1:
            raise ValueError("restarts must be positive")


def _propose(rows, m, n, rng, params):
    """Mutate ``rows`` in place; return an undo closure."""
    u = rng.random()
    if u < params.p_flip or n == 1:
        j = int(rng.integers(0, m))
        i = int(rng.integers(1, n)) if n > 1 else 0
        if i == 0:
            return lambda: None
        rows[j][i] = not rows[j][i]
        return lambda: rows[j].__setitem__(i, not rows[j][i])
    if u < params.p_flip + params.p_align:
        i = int(rng.integers(1, n))
        j = int(rng.integers(0, m))
        old = [rows[k][i] for k in range(m)]
        value = rows[j][i]
        for k in range(m):
            rows[k][i] = value
        def undo():
            for k in range(m):
                rows[k][i] = old[k]
        return undo
    # shift: move one hyper of one task by ±1
    j = int(rng.integers(0, m))
    hypers = [i for i in range(1, n) if rows[j][i]]
    if not hypers:
        return lambda: None
    i = hypers[int(rng.integers(0, len(hypers)))]
    direction = 1 if rng.random() < 0.5 else -1
    target = i + direction
    if target < 1 or target >= n or rows[j][target]:
        return lambda: None
    rows[j][i] = False
    rows[j][target] = True
    def undo():
        rows[j][i] = True
        rows[j][target] = False
    return undo


def solve_mt_annealing(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    params: AnnealParams | None = None,
    seed: SeedLike = 0,
) -> MTSolveResult:
    """Simulated annealing with geometric cooling and optional restarts."""
    if model is None:
        model = MachineModel.paper_experimental()
    if not model.machine_class.allows_partial_hyper:
        raise ValueError(
            "annealing mutates per-task rows; use the merged single-task "
            "solver for partially reconfigurable machines"
        )
    params = params or AnnealParams()
    rng = make_rng(seed)
    m = system.m
    n = len(seqs[0])
    if any(len(s) != n for s in seqs):
        raise ValueError("sequences must have equal length")
    if n == 0:
        schedule = MultiTaskSchedule([[] for _ in range(m)])
        return MTSolveResult(schedule, 0.0, True, "mt_annealing", {})

    def evaluate(rows) -> float:
        return sync_switch_cost(system, seqs, MultiTaskSchedule(rows), model)

    best_rows = None
    best_cost = float("inf")
    accepted_total = 0
    cooling = (params.t_end / params.t_start) ** (
        1.0 / max(1, params.iterations - 1)
    )
    for restart in range(params.restarts):
        if params.seed_with_greedy and restart == 0:
            start = solve_mt_greedy_merge(system, seqs, model).schedule
            rows = [list(r) for r in start.indicators]
        else:
            rows = [
                [True] + [bool(rng.random() < 0.15) for _ in range(n - 1)]
                for _ in range(m)
            ]
        cost = evaluate(rows)
        temperature = params.t_start
        for _ in range(params.iterations):
            undo = _propose(rows, m, n, rng, params)
            cand = evaluate(rows)
            delta = cand - cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                cost = cand
                accepted_total += 1
                if cost < best_cost:
                    best_cost = cost
                    best_rows = [list(r) for r in rows]
            else:
                undo()
            temperature *= cooling
    schedule = MultiTaskSchedule(best_rows)
    check = evaluate(best_rows)
    if abs(check - best_cost) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError("annealing cost bookkeeping drifted")
    return MTSolveResult(
        schedule=schedule,
        cost=check,
        optimal=False,
        solver="mt_annealing",
        stats={"accepted": accepted_total, "restarts": params.restarts},
    )
