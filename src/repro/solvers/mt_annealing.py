"""Simulated annealing for the fully synchronized MT-Switch problem.

A second metaheuristic besides the paper's GA, useful both as a
cross-check (two independent stochastic searches agreeing on a value is
strong evidence) and because annealing explores *locally* — it tends to
polish a warm start better than the GA's crossover does, while the GA
covers more of the space.  The solver-quality ablation (E4) compares
all three.

Neighborhood moves (picked with fixed probabilities):

* flip — toggle one indicator bit;
* align — copy one step's indicator from one task to all tasks
  (parallel uploads reward alignment);
* shift — move one task's hyperreconfiguration to an adjacent step.

Cost deltas come from :class:`repro.core.delta.DeltaEvaluator`, which
updates only the block(s) a move perturbs — O(affected steps × m)
mask work plus an O(n) float re-sum, instead of a full O(m·n)
re-evaluation per iteration (benchmark E14).
``AnnealParams(use_delta=False)`` switches back to full reference
evaluation per move; both paths are bit-identical for a fixed seed,
and the returned best is always cross-checked against the reference
cost function at exit.

Proposals without an effect (a shift with no legal target, an align on
an already-aligned column) are *no-ops*: they are not evaluated and do
not count as accepted moves — only the temperature advances, so the
proposal stream stays aligned across evaluation back ends.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.delta import (
    AlignMove,
    FlipMove,
    ShiftMove,
    make_evaluator,
    merge_evaluator_stats,
)
from repro.core.machine import MachineModel
from repro.core.schedule import MultiTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.mt_greedy import solve_mt_greedy_merge
from repro.util.rng import SeedLike, make_rng

__all__ = ["AnnealParams", "solve_mt_annealing"]


@dataclass(frozen=True)
class AnnealParams:
    """Annealing schedule and move mix."""

    iterations: int = 20_000
    t_start: float = 8.0
    t_end: float = 0.05
    p_flip: float = 0.6
    p_align: float = 0.2  # remainder is the shift move
    restarts: int = 1
    seed_with_greedy: bool = True
    use_delta: bool = True

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.t_start <= 0 or self.t_end <= 0 or self.t_end > self.t_start:
            raise ValueError("need t_start ≥ t_end > 0")
        for name, p in (("p_flip", self.p_flip), ("p_align", self.p_align)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.p_flip + self.p_align > 1:
            raise ValueError("move probabilities must sum to ≤ 1")
        if self.restarts < 1:
            raise ValueError("restarts must be positive")


def _propose(rows, m, n, rng, params):
    """Draw one candidate move; ``None`` marks a no-op proposal.

    ``rows`` is read, never mutated — the evaluator owns the state.
    The RNG consumption per branch is fixed, so proposal streams are
    reproducible across evaluation back ends.
    """
    u = rng.random()
    if u < params.p_flip or n == 1:
        j = int(rng.integers(0, m))
        i = int(rng.integers(1, n)) if n > 1 else 0
        if i == 0:
            return None  # step 0 is pinned; nothing to flip on n == 1
        return FlipMove(task=j, step=i)
    if u < params.p_flip + params.p_align:
        i = int(rng.integers(1, n))
        j = int(rng.integers(0, m))
        value = rows[j][i]
        if all(rows[k][i] == value for k in range(m)):
            return None  # column already aligned
        return AlignMove(step=i, source=j)
    # shift: move one hyper of one task by ±1
    j = int(rng.integers(0, m))
    hypers = [i for i in range(1, n) if rows[j][i]]
    if not hypers:
        return None
    i = hypers[int(rng.integers(0, len(hypers)))]
    direction = 1 if rng.random() < 0.5 else -1
    target = i + direction
    if target < 1 or target >= n or rows[j][target]:
        return None
    return ShiftMove(task=j, src=i, dst=target)


def solve_mt_annealing(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    params: AnnealParams | None = None,
    seed: SeedLike = 0,
) -> MTSolveResult:
    """Simulated annealing with geometric cooling and optional restarts."""
    if model is None:
        model = MachineModel.paper_experimental()
    if not model.machine_class.allows_partial_hyper:
        raise ValueError(
            "annealing mutates per-task rows; use the merged single-task "
            "solver for partially reconfigurable machines"
        )
    params = params or AnnealParams()
    rng = make_rng(seed)
    m = system.m
    n = len(seqs[0])
    if any(len(s) != n for s in seqs):
        raise ValueError("sequences must have equal length")
    if n == 0:
        schedule = MultiTaskSchedule([[] for _ in range(m)])
        return MTSolveResult(schedule, 0.0, True, "mt_annealing", {})

    best_rows = None
    best_cost = float("inf")
    accepted_total = 0
    noop_proposals = 0
    evaluator = None
    cooling = (params.t_end / params.t_start) ** (
        1.0 / max(1, params.iterations - 1)
    )
    for restart in range(params.restarts):
        if params.seed_with_greedy and restart == 0:
            start = solve_mt_greedy_merge(system, seqs, model).schedule
            rows = [list(r) for r in start.indicators]
        else:
            rows = [
                [True] + [bool(rng.random() < 0.15) for _ in range(n - 1)]
                for _ in range(m)
            ]
        if evaluator is None:
            evaluator = make_evaluator(
                system, seqs, rows, model, use_delta=params.use_delta
            )
        else:
            evaluator.reset(rows)
        cost = evaluator.cost
        # Seed the incumbent from the start state: a restart that never
        # accepts a move must still return its warm start, and the
        # solver can never come back worse than where it began.
        if cost < best_cost:
            best_cost = cost
            best_rows = [list(r) for r in evaluator.rows]
        temperature = params.t_start
        for _ in range(params.iterations):
            move = _propose(evaluator.rows, m, n, rng, params)
            if move is None:
                noop_proposals += 1
                temperature *= cooling
                continue
            cand = evaluator.apply(move)
            delta = cand - cost
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                cost = cand
                accepted_total += 1
                if cost < best_cost:
                    best_cost = cost
                    best_rows = [list(r) for r in evaluator.rows]
            else:
                evaluator.revert()
            temperature *= cooling
    schedule = MultiTaskSchedule(best_rows)
    check = sync_switch_cost(system, seqs, schedule, model)
    if abs(check - best_cost) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError("annealing cost bookkeeping drifted")
    stats = {
        "accepted": accepted_total,
        "noop_proposals": noop_proposals,
        "restarts": params.restarts,
    }
    merge_evaluator_stats(stats, evaluator.stats)
    return MTSolveResult(
        schedule=schedule,
        cost=check,
        optimal=False,
        solver="mt_annealing",
        stats=stats,
    )
