"""Simulated annealing for the fully synchronized MT-Switch problem.

A second metaheuristic besides the paper's GA, useful both as a
cross-check (two independent stochastic searches agreeing on a value is
strong evidence) and because annealing explores *locally* — it tends to
polish a warm start better than the GA's crossover does, while the GA
covers more of the space.  The solver-quality ablation (E4) compares
all three.

Neighborhood moves (picked with fixed probabilities):

* flip — toggle one indicator bit;
* align — copy one step's indicator from one task to all tasks
  (parallel uploads reward alignment);
* shift — move one task's hyperreconfiguration to an adjacent step.

Cost deltas come from :class:`repro.core.delta.DeltaEvaluator`, which
updates only the block(s) a move perturbs — O(affected steps × m)
mask work plus an O(n) float re-sum, instead of a full O(m·n)
re-evaluation per iteration (benchmark E14).
``AnnealParams(use_delta=False)`` switches back to full reference
evaluation per move; both paths are bit-identical for a fixed seed,
and the returned best is always cross-checked against the reference
cost function at exit.

Proposals without an effect (a shift with no legal target, an align on
an already-aligned column) are *no-ops*: they are not evaluated and do
not count as accepted moves — only the temperature advances, so the
proposal stream stays aligned across evaluation back ends.

Restarts are embarrassingly parallel: each restart runs on its own
child RNG derived via :func:`repro.util.rng.spawn_seeds`, so the
trajectory of restart ``r`` depends only on ``(seed, r)`` — fanning the
restarts across processes (``AnnealParams(restart_workers=k)``, the
same :mod:`multiprocessing` pattern as the batch engine) returns
bit-identical results to the sequential loop, just faster.  Per-restart
best costs and acceptance counts are surfaced in the result ``stats``.
"""

from __future__ import annotations

import math
import multiprocessing
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.delta import (
    AlignMove,
    FlipMove,
    ShiftMove,
    make_evaluator,
    merge_evaluator_stats,
)
from repro.core.machine import MachineModel
from repro.core.packed import PackedProblem
from repro.core.schedule import MultiTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult
from repro.solvers.mt_greedy import solve_mt_greedy_merge
from repro.util.rng import SeedLike, make_rng, spawn_seeds

__all__ = ["AnnealParams", "solve_mt_annealing"]


@dataclass(frozen=True)
class AnnealParams:
    """Annealing schedule, move mix and restart parallelism."""

    iterations: int = 20_000
    t_start: float = 8.0
    t_end: float = 0.05
    p_flip: float = 0.6
    p_align: float = 0.2  # remainder is the shift move
    restarts: int = 1
    restart_workers: int = 1
    seed_with_greedy: bool = True
    use_delta: bool = True

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.t_start <= 0 or self.t_end <= 0 or self.t_end > self.t_start:
            raise ValueError("need t_start ≥ t_end > 0")
        for name, p in (("p_flip", self.p_flip), ("p_align", self.p_align)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.p_flip + self.p_align > 1:
            raise ValueError("move probabilities must sum to ≤ 1")
        if self.restarts < 1:
            raise ValueError("restarts must be positive")
        if self.restart_workers < 1:
            raise ValueError("restart_workers must be positive")


def _propose(rows, m, n, rng, params):
    """Draw one candidate move; ``None`` marks a no-op proposal.

    ``rows`` is read, never mutated — the evaluator owns the state.
    The RNG consumption per branch is fixed, so proposal streams are
    reproducible across evaluation back ends.
    """
    u = rng.random()
    if u < params.p_flip or n == 1:
        j = int(rng.integers(0, m))
        i = int(rng.integers(1, n)) if n > 1 else 0
        if i == 0:
            return None  # step 0 is pinned; nothing to flip on n == 1
        return FlipMove(task=j, step=i)
    if u < params.p_flip + params.p_align:
        i = int(rng.integers(1, n))
        j = int(rng.integers(0, m))
        value = rows[j][i]
        if all(rows[k][i] == value for k in range(m)):
            return None  # column already aligned
        return AlignMove(step=i, source=j)
    # shift: move one hyper of one task by ±1
    j = int(rng.integers(0, m))
    hypers = [i for i in range(1, n) if rows[j][i]]
    if not hypers:
        return None
    i = hypers[int(rng.integers(0, len(hypers)))]
    direction = 1 if rng.random() < 0.5 else -1
    target = i + direction
    if target < 1 or target >= n or rows[j][target]:
        return None
    return ShiftMove(task=j, src=i, dst=target)


def _start_rows(system, seqs, model, params, m, n, rng, restart):
    """Deterministic start state of one restart (greedy for restart 0)."""
    if params.seed_with_greedy and restart == 0:
        start = solve_mt_greedy_merge(system, seqs, model).schedule
        return [list(r) for r in start.indicators]
    return [
        [True] + [bool(rng.random() < 0.15) for _ in range(n - 1)]
        for _ in range(m)
    ]


def _run_restart(
    system,
    seqs,
    model,
    params,
    rng,
    restart,
    *,
    packed=None,
    evaluator=None,
):
    """One full annealing trajectory; returns per-restart outcome.

    The trajectory depends only on the restart's ``rng``, never on
    sibling restarts — the invariant that makes the process fan-out
    bit-identical to the sequential loop.
    """
    m = system.m
    n = len(seqs[0])
    rows = _start_rows(system, seqs, model, params, m, n, rng, restart)
    if evaluator is None:
        evaluator = make_evaluator(
            system, seqs, rows, model, use_delta=params.use_delta, packed=packed
        )
    else:
        evaluator.reset(rows)
    cost = evaluator.cost
    # Seed the incumbent from the start state: a restart that never
    # accepts a move must still return its warm start, and the solver
    # can never come back worse than where it began.
    best_cost = cost
    best_rows = [list(r) for r in evaluator.rows]
    accepted = 0
    noops = 0
    cooling = (params.t_end / params.t_start) ** (
        1.0 / max(1, params.iterations - 1)
    )
    temperature = params.t_start
    for _ in range(params.iterations):
        move = _propose(evaluator.rows, m, n, rng, params)
        if move is None:
            noops += 1
            temperature *= cooling
            continue
        cand = evaluator.apply(move)
        delta = cand - cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            cost = cand
            accepted += 1
            if cost < best_cost:
                best_cost = cost
                best_rows = [list(r) for r in evaluator.rows]
        else:
            evaluator.revert()
        temperature *= cooling
    return best_rows, best_cost, accepted, noops, evaluator


def _restart_worker(payload):
    """Process-pool entry: run one restart from its child seed."""
    system, seqs, model, params, child_seed, restart, packed = payload
    best_rows, best_cost, accepted, noops, evaluator = _run_restart(
        system, seqs, model, params, make_rng(child_seed), restart,
        packed=packed,
    )
    return restart, best_rows, best_cost, accepted, noops, evaluator.stats


def _merge_delta_stats(per_restart: Sequence[dict]) -> dict:
    """Sum evaluator counters across restarts; re-derive the hit rate."""
    out: dict = {}
    for key in (
        "delta_applies",
        "delta_full_evals",
        "delta_noops",
        "delta_reverts",
        "delta_resets",
        "delta_steps_recomputed",
    ):
        out[key] = sum(int(s.get(key, 0)) for s in per_restart)
    denom = out["delta_applies"] + out["delta_full_evals"]
    out["delta_hit_rate"] = (out["delta_applies"] / denom) if denom else 1.0
    return out


def solve_mt_annealing(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
    params: AnnealParams | None = None,
    seed: SeedLike = 0,
    *,
    packed: PackedProblem | None = None,
) -> MTSolveResult:
    """Simulated annealing with geometric cooling and optional restarts.

    Restarts draw independent child RNGs from ``seed`` (via
    :func:`~repro.util.rng.spawn_seeds`), so results are identical for
    any ``restart_workers`` setting — the worker pool only changes wall
    time.  ``packed`` optionally reuses an already-compiled
    :class:`~repro.core.packed.PackedProblem` for the evaluator.
    """
    if model is None:
        model = MachineModel.paper_experimental()
    if not model.machine_class.allows_partial_hyper:
        raise ValueError(
            "annealing mutates per-task rows; use the merged single-task "
            "solver for partially reconfigurable machines"
        )
    params = params or AnnealParams()
    m = system.m
    n = len(seqs[0])
    if any(len(s) != n for s in seqs):
        raise ValueError("sequences must have equal length")
    if n == 0:
        schedule = MultiTaskSchedule([[] for _ in range(m)])
        return MTSolveResult(schedule, 0.0, True, "mt_annealing", {})

    child_seeds = spawn_seeds(seed, params.restarts)
    workers = min(params.restart_workers, params.restarts)
    if workers > 1 and multiprocessing.current_process().daemon:
        # Already inside a process pool (e.g. a multi-worker
        # BatchEngine): daemonic processes cannot spawn children, so
        # run the restarts sequentially — same results, same stats.
        workers = 1
    outcomes: list[tuple] = [None] * params.restarts  # type: ignore[list-item]
    if workers > 1:
        payloads = [
            (system, list(seqs), model, params, child_seeds[r], r, packed)
            for r in range(params.restarts)
        ]
        with multiprocessing.Pool(processes=workers) as pool:
            for out in pool.imap_unordered(_restart_worker, payloads):
                outcomes[out[0]] = out[1:]
        evaluator_stats = _merge_delta_stats([o[4] for o in outcomes])
    else:
        evaluator = None
        for r in range(params.restarts):
            best_rows, best_cost, accepted, noops, evaluator = _run_restart(
                system,
                seqs,
                model,
                params,
                make_rng(child_seeds[r]),
                r,
                packed=packed,
                evaluator=evaluator,
            )
            outcomes[r] = (best_rows, best_cost, accepted, noops, None)
        evaluator_stats = evaluator.stats

    best_rows = None
    best_cost = float("inf")
    for rows, cost, _accepted, _noops, _stats in outcomes:
        if cost < best_cost:
            best_cost = cost
            best_rows = rows
    schedule = MultiTaskSchedule(best_rows)
    check = sync_switch_cost(system, seqs, schedule, model)
    if abs(check - best_cost) > 1e-9:  # pragma: no cover - internal invariant
        raise AssertionError("annealing cost bookkeeping drifted")
    stats = {
        "accepted": sum(o[2] for o in outcomes),
        "noop_proposals": sum(o[3] for o in outcomes),
        "restarts": params.restarts,
        "restart_workers": workers,
        "restart_costs": [o[1] for o in outcomes],
        "restart_accepted": [o[2] for o in outcomes],
    }
    merge_evaluator_stats(stats, evaluator_stats)
    return MTSolveResult(
        schedule=schedule,
        cost=check,
        optimal=False,
        solver="mt_annealing",
        stats=stats,
    )
