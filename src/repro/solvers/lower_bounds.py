"""Admissible lower bounds for (hyper)reconfiguration costs.

Used by tests (every solver's cost must dominate the bound) and as
sanity rails in the experiment report.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel, UploadMode
from repro.core.task import TaskSystem
from repro.util.bitset import bit_count

__all__ = ["switch_lower_bound", "sync_mt_lower_bound"]


def switch_lower_bound(seq: RequirementSequence, w: float) -> float:
    """Lower bound for the single-task switch model.

    Any schedule performs ≥ 1 hyperreconfiguration (cost ``w``) and at
    every step the active hypercontext contains at least the step's
    requirement, so each step pays at least ``|c_i|``:

        LB = w + Σ_i |c_i|.
    """
    if len(seq) == 0:
        return 0.0
    return float(w + seq.total_demand())


def sync_mt_lower_bound(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    model: MachineModel | None = None,
) -> float:
    """Lower bound for the fully synchronized MT-Switch cost.

    Step 0 forces every task to hyperreconfigure (term ``max_j v_j`` or
    ``Σ_j v_j`` depending on upload mode) and every step's
    reconfiguration term is at least the same aggregation of the
    per-task step requirements.
    """
    if model is None:
        model = MachineModel.paper_experimental()
    n = len(seqs[0]) if seqs else 0
    if n == 0:
        return 0.0
    hyper_parallel = model.hyper_upload is UploadMode.TASK_PARALLEL
    reconf_parallel = model.reconfig_upload is UploadMode.TASK_PARALLEL
    v = system.v
    hyper0 = max(v) if hyper_parallel else sum(v)
    total = float(hyper0)
    for i in range(n):
        sizes = [bit_count(seq.masks[i]) for seq in seqs]
        total += max(sizes) if reconf_parallel else sum(sizes)
    return total
