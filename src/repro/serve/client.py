"""Synchronous client for the serving protocol.

:class:`ServeClient` owns one TCP connection and speaks strict
request/response: every call writes one frame and blocks for its reply
(flow control and reply matching come for free; run several clients —
they are cheap — for pipelining, the way the load generator does).

The client remembers each opened session's universe width, so
:meth:`feed` accepts plain int masks *or* pre-packed ``(C, L)`` lane
arrays and encodes them itself.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    encode_mask_chunk,
)

__all__ = ["CloseResult", "FeedResult", "ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The server answered ``{"ok": false}`` (the connection survives)."""


@dataclass(frozen=True)
class FeedResult:
    """Accounting of one served chunk (mirror of the reply frame)."""

    session: str
    start: int
    steps: int
    hypers: int
    cost: float
    cumulative_cost: float


@dataclass(frozen=True)
class CloseResult:
    """Accounting of one finished session."""

    session: str
    solver: str
    steps: int
    hypers: int
    cost: float


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.StreamServer`.

    Parameters
    ----------
    host, port:
        Server address (e.g. from :class:`ServerThread.start`).
    timeout:
        Socket timeout per reply, seconds.
    encoding:
        Mask chunk encoding for ``feed`` frames (``"b64"`` default,
        ``"hex"`` for eyeball-friendly traffic).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        encoding: str = "b64",
    ):
        if encoding not in ("b64", "hex"):
            raise ValueError(f"unknown mask encoding {encoding!r}")
        self._encoding = encoding
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._widths: dict[str, int] = {}
        self._closed = False

    # -- plumbing ----------------------------------------------------------

    def call(self, payload: dict) -> dict:
        """Send one raw frame, return the decoded success reply.

        Escape hatch for tests poking at the protocol; the typed
        methods below are the real API.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        self._file.write(encode_frame(payload))
        self._file.flush()
        line = self._file.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        reply = decode_frame(line)
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "unspecified server error"))
        return reply

    # -- session API -------------------------------------------------------

    def open(
        self,
        *,
        policy: str = "rent_or_buy",
        width: int,
        w: float,
        session_id: str | None = None,
        trace: str | None = None,
        **params,
    ) -> str:
        """Open a session; returns its (possibly generated) id.

        ``trace`` is an optional client-chosen trace id: the server
        echoes it in the reply and attaches it to its span events (same
        on :meth:`feed` / :meth:`close_session`).
        """
        frame = {"op": "open", "policy": policy, "width": width, "w": w}
        if session_id is not None:
            frame["session"] = session_id
        if trace is not None:
            frame["trace"] = trace
        frame.update(params)
        reply = self.call(frame)
        sid = reply["session"]
        self._widths[sid] = width
        return sid

    def feed(
        self, session_id: str, masks, *, trace: str | None = None
    ) -> FeedResult:
        """Serve a chunk of requirements on one session."""
        try:
            width = self._widths[session_id]
        except KeyError:
            raise KeyError(
                f"session {session_id!r} was not opened by this client"
            ) from None
        count = len(masks)
        if count == 0:
            raise ValueError("feed chunks must contain at least one mask")
        blob = encode_mask_chunk(masks, width, encoding=self._encoding)
        frame = {
            "op": "feed",
            "session": session_id,
            "count": count,
            "masks": blob,
            "encoding": self._encoding,
        }
        if trace is not None:
            frame["trace"] = trace
        reply = self.call(frame)
        return FeedResult(
            session=session_id,
            start=reply["start"],
            steps=reply["steps"],
            hypers=reply["hypers"],
            cost=reply["cost"],
            cumulative_cost=reply["cumulative_cost"],
        )

    def close_session(
        self, session_id: str, *, trace: str | None = None
    ) -> CloseResult:
        """Finish one session into its validated accounting."""
        frame = {"op": "close", "session": session_id}
        if trace is not None:
            frame["trace"] = trace
        reply = self.call(frame)
        self._widths.pop(session_id, None)
        return CloseResult(
            session=session_id,
            solver=reply["solver"],
            steps=reply["steps"],
            hypers=reply["hypers"],
            cost=reply["cost"],
        )

    def stats(self) -> dict:
        """Aggregate server/shard/engine counters."""
        return self.call({"op": "stats"})

    def metrics(self) -> dict:
        """Full telemetry dump: JSON snapshot, labeled histogram wire
        snapshots, and the Prometheus text exposition."""
        return self.call({"op": "metrics"})

    # -- lifecycle ---------------------------------------------------------

    def adopt(self, session_id: str, width: int) -> None:
        """Register a session opened elsewhere (sessions are
        server-global; any connection may feed any open session)."""
        self._widths[session_id] = width

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
