"""Synchronous client for the serving protocol.

:class:`ServeClient` owns one TCP connection.  Every call writes its
frame(s) and blocks for the replies — reply matching is positional, so
:meth:`feed_pipelined` can keep many feed frames in flight on one
socket (one ``sendall``, then drain the replies in order) without any
correlation ids.

The client remembers each opened session's universe width, so
:meth:`feed` accepts plain int masks *or* pre-packed ``(C, L)`` lane
arrays and encodes them itself.

Wire protocol negotiation (``proto=``):

* ``"auto"`` (default) — ask for v2 on the first ``open``; speak raw
  binary feed frames if the server agrees, fall back to JSON lines
  against older servers (which reject the unknown ``proto`` field —
  the open is retried without it, once).
* ``"json"`` — classic v1 JSON frames only.
* ``"bin"`` — require v2; raise :class:`ServeError` if the server
  declines.

Binary feeds intern repeated masks into a per-``(connection, width)``
:class:`~repro.serve.protocol.ClientArena` mirrored by the server; an
error reply to a binary feed poisons that width's arena (the id maps
can no longer be trusted to agree) and later chunks go raw.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTO_BIN,
    PROTO_JSON,
    ClientArena,
    _as_lanes,
    decode_frame,
    encode_feed_bin,
    encode_frame,
    encode_mask_chunk,
)

__all__ = ["CloseResult", "FeedResult", "ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """The server answered ``{"ok": false}`` (the connection survives)."""


@dataclass(frozen=True)
class FeedResult:
    """Accounting of one served chunk (mirror of the reply frame)."""

    session: str
    start: int
    steps: int
    hypers: int
    cost: float
    cumulative_cost: float


@dataclass(frozen=True)
class CloseResult:
    """Accounting of one finished session."""

    session: str
    solver: str
    steps: int
    hypers: int
    cost: float


def _feed_result(session: str, reply: dict) -> FeedResult:
    return FeedResult(
        session=session,
        start=reply["start"],
        steps=reply["steps"],
        hypers=reply["hypers"],
        cost=reply["cost"],
        cumulative_cost=reply["cumulative_cost"],
    )


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.StreamServer`.

    Parameters
    ----------
    host, port:
        Server address (e.g. from :class:`ServerThread.start`).
    timeout:
        Socket timeout per reply, seconds.
    encoding:
        Mask chunk encoding for JSON ``feed`` frames (``"b64"``
        default, ``"hex"`` for eyeball-friendly traffic).
    proto:
        Wire protocol preference: ``"auto"`` | ``"json"`` | ``"bin"``
        (see the module docstring).
    deflate:
        Section compression on binary feeds: ``None`` compresses only
        when it wins, ``True``/``False`` force it.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        encoding: str = "b64",
        proto: str = "auto",
        deflate: bool | None = None,
    ):
        if encoding not in ("b64", "hex"):
            raise ValueError(f"unknown mask encoding {encoding!r}")
        if proto not in ("auto", "json", "bin"):
            raise ValueError(f"unknown wire protocol {proto!r}")
        self._encoding = encoding
        self._proto = proto
        self._deflate = deflate
        #: None until the first open settles negotiation.
        self._bin: bool | None = False if proto == "json" else None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._recv = bytearray()
        self._widths: dict[str, int] = {}
        #: width -> ClientArena, or None once poisoned (raw-only).
        self._arenas: dict[int, ClientArena | None] = {}
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def proto(self) -> str:
        """The negotiated wire protocol (``"auto"`` until settled)."""
        if self._bin is None:
            return "auto"
        return "bin" if self._bin else "json"

    def _send(self, data: bytes) -> None:
        if self._closed:
            raise RuntimeError("client is closed")
        self._sock.sendall(data)
        self.bytes_sent += len(data)

    def _recv_reply(self) -> dict:
        """Read one newline-terminated JSON reply off the persistent
        receive buffer (replies are always JSON lines, both protocols)."""
        while True:
            newline = self._recv.find(b"\n")
            if newline >= 0:
                line = bytes(self._recv[: newline + 1])
                del self._recv[: newline + 1]
                return decode_frame(line)
            if len(self._recv) > MAX_FRAME_BYTES:
                raise ConnectionError("oversized reply frame")
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionError("server closed the connection")
            self.bytes_received += len(data)
            self._recv.extend(data)

    def _reply_ok(self) -> dict:
        reply = self._recv_reply()
        if not reply.get("ok"):
            raise ServeError(reply.get("error", "unspecified server error"))
        return reply

    def call(self, payload: dict) -> dict:
        """Send one raw JSON frame, return the decoded success reply.

        Escape hatch for tests poking at the protocol; the typed
        methods below are the real API.
        """
        self._send(encode_frame(payload))
        return self._reply_ok()

    # -- session API -------------------------------------------------------

    def open(
        self,
        *,
        policy: str = "rent_or_buy",
        width: int,
        w: float,
        session_id: str | None = None,
        trace: str | None = None,
        **params,
    ) -> str:
        """Open a session; returns its (possibly generated) id.

        The first open on the connection settles protocol negotiation
        (see the module docstring).  ``trace`` is an optional
        client-chosen trace id: the server echoes it in the reply and
        attaches it to its span events (same on :meth:`feed` /
        :meth:`close_session`).
        """
        frame = {"op": "open", "policy": policy, "width": width, "w": w}
        if session_id is not None:
            frame["session"] = session_id
        if trace is not None:
            frame["trace"] = trace
        frame.update(params)
        if self._bin is None or self._bin:
            frame["proto"] = PROTO_BIN
        try:
            reply = self.call(frame)
        except ServeError as exc:
            if (
                self._bin is None
                and self._proto == "auto"
                and "unknown fields" in str(exc)
                and "proto" in str(exc)
            ):
                # Pre-v2 server: it rejected the proto field itself.
                # Retry once without it and stay on JSON for good.
                self._bin = False
                frame.pop("proto")
                reply = self.call(frame)
            else:
                raise
        else:
            if self._bin is None:
                self._bin = reply.get("proto") == PROTO_BIN
                if not self._bin and self._proto == "bin":
                    raise ServeError(
                        "server declined wire protocol v2 "
                        f"(answered proto={reply.get('proto', PROTO_JSON)})"
                    )
        sid = reply["session"]
        self._widths[sid] = width
        return sid

    def _width_of(self, session_id: str) -> int:
        try:
            return self._widths[session_id]
        except KeyError:
            raise KeyError(
                f"session {session_id!r} was not opened by this client"
            ) from None

    def _arena(self, width: int) -> ClientArena | None:
        if width not in self._arenas:
            self._arenas[width] = ClientArena(width)
        return self._arenas[width]

    def _poison_arenas(self) -> None:
        """After an error reply to a binary feed the server's id maps
        may have diverged from ours; stop interning, go raw."""
        for width in self._arenas:
            self._arenas[width] = None

    def _encode_feed(
        self, session_id: str, masks, *, trace: str | None
    ) -> bytes:
        """One feed frame as wire bytes, honoring the negotiated proto.

        Traced feeds ride JSON even on v2 — the binary frame has no
        trace field, and tracing already opted into the verbose path.
        """
        width = self._width_of(session_id)
        count = len(masks)
        if count == 0:
            raise ValueError("feed chunks must contain at least one mask")
        if self._bin and trace is None:
            return encode_feed_bin(
                session_id,
                _as_lanes(masks, width),
                width,
                arena=self._arena(width),
                deflate=self._deflate,
            )
        blob = encode_mask_chunk(masks, width, encoding=self._encoding)
        frame = {
            "op": "feed",
            "session": session_id,
            "count": count,
            "masks": blob,
            "encoding": self._encoding,
        }
        if trace is not None:
            frame["trace"] = trace
        return encode_frame(frame)

    def feed(
        self, session_id: str, masks, *, trace: str | None = None
    ) -> FeedResult:
        """Serve a chunk of requirements on one session."""
        self._send(self._encode_feed(session_id, masks, trace=trace))
        try:
            reply = self._reply_ok()
        except ServeError:
            self._poison_arenas()
            raise
        return _feed_result(session_id, reply)

    def feed_pipelined(
        self, batch: list[tuple[str, object]]
    ) -> list[FeedResult]:
        """Serve many chunks with one round trip's worth of latency.

        ``batch`` is ``[(session_id, masks), ...]``.  All frames go out
        back-to-back (one ``sendall``), then the replies — which the
        server writes strictly in request order — drain in order.  On
        an error reply the remaining replies are still drained (the
        connection stays usable) before :class:`ServeError` raises.
        """
        if not batch:
            return []
        frames = [
            self._encode_feed(sid, masks, trace=None)
            for sid, masks in batch
        ]
        self._send(b"".join(frames))
        results: list[FeedResult] = []
        failure: ServeError | None = None
        for sid, _masks in batch:
            reply = self._recv_reply()
            if reply.get("ok"):
                results.append(_feed_result(sid, reply))
            elif failure is None:
                failure = ServeError(
                    reply.get("error", "unspecified server error")
                )
        if failure is not None:
            self._poison_arenas()
            raise failure
        return results

    def close_session(
        self, session_id: str, *, trace: str | None = None
    ) -> CloseResult:
        """Finish one session into its validated accounting."""
        frame = {"op": "close", "session": session_id}
        if trace is not None:
            frame["trace"] = trace
        reply = self.call(frame)
        self._widths.pop(session_id, None)
        return CloseResult(
            session=session_id,
            solver=reply["solver"],
            steps=reply["steps"],
            hypers=reply["hypers"],
            cost=reply["cost"],
        )

    def stats(self) -> dict:
        """Aggregate server/shard/engine counters."""
        return self.call({"op": "stats"})

    def metrics(self) -> dict:
        """Full telemetry dump: JSON snapshot, labeled histogram wire
        snapshots, and the Prometheus text exposition."""
        return self.call({"op": "metrics"})

    # -- lifecycle ---------------------------------------------------------

    def adopt(self, session_id: str, width: int) -> None:
        """Register a session opened elsewhere (sessions are
        server-global; any connection may feed any open session)."""
        self._widths[session_id] = width

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
