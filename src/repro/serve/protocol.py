"""Framed wire protocol of the serving layer.

One frame per line: a JSON object terminated by ``\\n`` (newline-
delimited JSON — trivially debuggable with ``nc``/``socat``, no length
prefixes to corrupt).  Five request ops cover the streaming life
cycle, mirroring the :class:`~repro.engine.stream.StreamHub` API:

===========  =============================================================
op           payload
===========  =============================================================
``open``     ``policy`` (``rent_or_buy``/``window``), ``width`` (universe
             size), ``w`` (hyper cost), optional ``session`` id and
             policy params (``alpha``/``memory``/``k``/``scalar``)
``feed``     ``session``, ``count`` requirement masks packed into
             ``masks`` — little-endian uint64 lane rows, base64- (default)
             or hex-encoded (``encoding``)
``close``    ``session`` — finish the session into a validated run
``stats``    no payload — aggregate server/shard/engine counters
``metrics``  no payload — full labeled histogram snapshot (JSON wire
             form) plus the Prometheus text exposition
===========  =============================================================

``open``, ``feed`` and ``close`` additionally accept an optional
``trace`` string (≤128 chars): a client-chosen trace id, echoed
verbatim in the matching reply and attached to the server's span
events, so a tail-latency outlier in the trace ring can be tied back
to the exact client request that suffered it.

Replies are JSON objects too: ``{"ok": true, "op": …, …}`` on success,
``{"ok": false, "error": …}`` on failure.  Every structural violation
raises :class:`ProtocolError` (mapped to an error reply by the server,
never a dropped connection), so malformed input is rejected loudly.

Mask chunks travel in the same lane encoding the engine computes on:
a ``(count, L)`` uint64 row matrix (``L = ceil(width/64)``), serialized
little-endian row-major.  Encode/decode are shared by server and
client, and the decoder *validates* — blob length must match
``count · L · 8`` and bits above ``width`` must be zero — so the
server can hand decoded lanes straight to the packed fast path.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.packed import lane_count

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "OpenFrame",
    "FeedFrame",
    "CloseFrame",
    "StatsFrame",
    "MetricsFrame",
    "encode_frame",
    "decode_frame",
    "encode_mask_chunk",
    "decode_mask_chunk",
    "parse_request",
    "policy_from_spec",
    "error_frame",
    "ok_frame",
]

#: Upper bound on one serialized frame (also the server's read limit).
#: 1 MiB of base64 holds ~98k single-lane requirement rows — far above
#: any sane chunk; bigger frames are a protocol violation.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A frame violated the wire protocol (malformed, not just unlucky)."""


# ---------------------------------------------------------------------------
# Frames (parsed requests)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpenFrame:
    """Parsed ``open`` request."""

    session: str | None
    policy: str
    width: int
    w: float
    params: dict = field(default_factory=dict)
    trace: str | None = None


@dataclass(frozen=True)
class FeedFrame:
    """Parsed ``feed`` request; ``masks`` stays encoded until the
    server looks up the session's universe width."""

    session: str
    count: int
    masks: str
    encoding: str
    trace: str | None = None


@dataclass(frozen=True)
class CloseFrame:
    """Parsed ``close`` request."""

    session: str
    trace: str | None = None


@dataclass(frozen=True)
class StatsFrame:
    """Parsed ``stats`` request."""


@dataclass(frozen=True)
class MetricsFrame:
    """Parsed ``metrics`` request (full histogram + exposition dump)."""


# ---------------------------------------------------------------------------
# Line framing
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame line into a JSON object (dict).

    Raises :class:`ProtocolError` on anything that is not exactly one
    JSON object: empty lines, truncated/overlong frames, JSON scalars
    or arrays, invalid UTF-8.
    """
    if isinstance(line, str):
        line = line.encode()
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        obj = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    return obj


# ---------------------------------------------------------------------------
# Mask chunk encoding
# ---------------------------------------------------------------------------


def _as_lanes(masks, width: int) -> np.ndarray:
    from repro.core.packed import masks_to_lanes

    if isinstance(masks, np.ndarray) and masks.ndim == 2:
        lanes = np.ascontiguousarray(masks, dtype=np.uint64)
        if lanes.shape[1] != lane_count(width):
            raise ProtocolError(
                f"lane rows have {lanes.shape[1]} lanes, width {width} "
                f"needs {lane_count(width)}"
            )
        return lanes
    return masks_to_lanes(list(masks), width)


def encode_mask_chunk(masks, width: int, *, encoding: str = "b64") -> str:
    """Encode requirement masks as a wire blob.

    ``masks`` is an iterable of int masks or an already lane-packed
    ``(C, L)`` uint64 array; rows serialize little-endian, row-major.
    """
    lanes = _as_lanes(masks, width)
    raw = np.ascontiguousarray(lanes, dtype="<u8").tobytes()
    if encoding == "b64":
        return base64.b64encode(raw).decode("ascii")
    if encoding == "hex":
        return raw.hex()
    raise ProtocolError(f"unknown mask encoding {encoding!r}")


def decode_mask_chunk(
    blob: str, count: int, width: int, *, encoding: str = "b64"
) -> np.ndarray:
    """Decode a wire blob back into validated ``(count, L)`` lanes.

    Rejects blobs whose length disagrees with ``count`` and rows that
    set bits at or above ``width`` — the result is safe to hand to the
    lane-trusting fast path (:meth:`StreamSession.feed_many`).
    """
    if count < 0:
        raise ProtocolError("mask count must be non-negative")
    if encoding == "b64":
        try:
            raw = base64.b64decode(blob, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise ProtocolError(f"invalid base64 mask blob: {exc}") from None
    elif encoding == "hex":
        try:
            raw = bytes.fromhex(blob)
        except ValueError as exc:
            raise ProtocolError(f"invalid hex mask blob: {exc}") from None
    else:
        raise ProtocolError(f"unknown mask encoding {encoding!r}")
    L = lane_count(width)
    expected = count * L * 8
    if len(raw) != expected:
        raise ProtocolError(
            f"mask blob holds {len(raw)} bytes, "
            f"count={count} × {L} lane(s) needs {expected}"
        )
    lanes = (
        np.frombuffer(raw, dtype="<u8").astype(np.uint64).reshape(count, L)
    )
    # Bits above the universe width are a protocol violation, not a
    # subtle downstream surprise.
    tail_bits = width - (L - 1) * 64
    if tail_bits < 64 and count:
        top = np.uint64((1 << tail_bits) - 1)
        if np.any(lanes[:, L - 1] & ~top):
            raise ProtocolError(
                f"mask sets switches beyond the {width}-switch universe"
            )
    return lanes


# ---------------------------------------------------------------------------
# Request parsing and policy construction
# ---------------------------------------------------------------------------


def _require(obj: dict, key: str, types, *, op: str):
    if key not in obj:
        raise ProtocolError(f"{op} frame missing field {key!r}")
    value = obj[key]
    # bool is a subclass of int; a frame saying "count": true is malformed.
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProtocolError(
            f"{op} frame field {key!r} has invalid type "
            f"{type(value).__name__}"
        )
    return value


#: Recognized ``open`` policy parameters (anything else is rejected).
_POLICY_PARAMS = {"alpha", "memory", "k", "scalar"}

#: Client trace ids are short opaque tokens, not payload channels.
MAX_TRACE_CHARS = 128


def _trace_of(obj: dict, *, op: str) -> str | None:
    trace = obj.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, str) or not trace:
        raise ProtocolError(f"{op}.trace must be a non-empty string")
    if len(trace) > MAX_TRACE_CHARS:
        raise ProtocolError(
            f"{op}.trace exceeds {MAX_TRACE_CHARS} characters"
        )
    return trace


def parse_request(
    obj: dict, *, max_chunk_steps: int | None = None
) -> OpenFrame | FeedFrame | CloseFrame | StatsFrame | MetricsFrame:
    """Validate a decoded frame object into a typed request.

    ``max_chunk_steps`` caps ``feed.count`` (admission control lives at
    the parse boundary, before any bytes are decoded).
    """
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("frame missing string field 'op'")
    if op == "open":
        policy = _require(obj, "policy", str, op=op)
        width = _require(obj, "width", int, op=op)
        if width < 1:
            raise ProtocolError("open.width must be at least 1")
        w = _require(obj, "w", (int, float), op=op)
        if w <= 0:
            raise ProtocolError("open.w must be positive")
        session = obj.get("session")
        if session is not None and not isinstance(session, str):
            raise ProtocolError("open.session must be a string")
        params = {
            k: obj[k] for k in _POLICY_PARAMS if k in obj
        }
        unknown = (
            set(obj)
            - _POLICY_PARAMS
            - {"op", "policy", "width", "w", "session", "trace"}
        )
        if unknown:
            raise ProtocolError(
                f"open frame has unknown fields {sorted(unknown)}"
            )
        return OpenFrame(
            session=session,
            policy=policy,
            width=int(width),
            w=float(w),
            params=params,
            trace=_trace_of(obj, op=op),
        )
    if op == "feed":
        session = _require(obj, "session", str, op=op)
        count = _require(obj, "count", int, op=op)
        if count < 1:
            raise ProtocolError("feed.count must be a positive integer")
        if max_chunk_steps is not None and count > max_chunk_steps:
            raise ProtocolError(
                f"feed.count {count} exceeds the server chunk limit "
                f"{max_chunk_steps}"
            )
        masks = _require(obj, "masks", str, op=op)
        encoding = obj.get("encoding", "b64")
        if encoding not in ("b64", "hex"):
            raise ProtocolError(f"unknown mask encoding {encoding!r}")
        return FeedFrame(
            session=session,
            count=int(count),
            masks=masks,
            encoding=encoding,
            trace=_trace_of(obj, op=op),
        )
    if op == "close":
        return CloseFrame(
            session=_require(obj, "session", str, op=op),
            trace=_trace_of(obj, op=op),
        )
    if op == "stats":
        return StatsFrame()
    if op == "metrics":
        return MetricsFrame()
    raise ProtocolError(f"unknown op {op!r}")


def policy_from_spec(policy: str, w: float, params: dict):
    """Build an online scheduler from a wire-level policy spec.

    Shared by the server (``open`` frames) and the ``repro stream`` /
    ``serve-bench`` CLI paths, so every entry point accepts the same
    vocabulary.  ``scalar: true`` wraps the policy in
    :class:`~repro.solvers.online.ScalarOnly` (oracle path).
    """
    from repro.solvers.online import (
        RentOrBuyScheduler,
        ScalarOnly,
        WindowScheduler,
    )

    unknown = set(params) - _POLICY_PARAMS
    if unknown:
        raise ProtocolError(f"unknown policy parameters {sorted(unknown)}")
    try:
        if policy == "rent_or_buy":
            scheduler = RentOrBuyScheduler(
                w,
                alpha=float(params.get("alpha", 1.0)),
                memory=int(params.get("memory", 4)),
            )
        elif policy == "window":
            scheduler = WindowScheduler(k=int(params.get("k", 8)))
        else:
            raise ProtocolError(f"unknown policy {policy!r}")
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid policy parameters: {exc}") from None
    if params.get("scalar"):
        scheduler = ScalarOnly(scheduler, name=f"{scheduler.name} [scalar]")
    return scheduler


# ---------------------------------------------------------------------------
# Replies
# ---------------------------------------------------------------------------


def ok_frame(op: str, **fields) -> dict:
    """Success reply for one request op."""
    out = {"ok": True, "op": op}
    out.update(fields)
    return out


def error_frame(message: str, *, op: str | None = None) -> dict:
    """Failure reply (the connection stays up; the frame is rejected)."""
    out = {"ok": False, "error": message}
    if op is not None:
        out["op"] = op
    return out
