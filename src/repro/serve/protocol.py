"""Framed wire protocol of the serving layer.

One frame per line: a JSON object terminated by ``\\n`` (newline-
delimited JSON — trivially debuggable with ``nc``/``socat``, no length
prefixes to corrupt).  Five request ops cover the streaming life
cycle, mirroring the :class:`~repro.engine.stream.StreamHub` API:

===========  =============================================================
op           payload
===========  =============================================================
``open``     ``policy`` (``rent_or_buy``/``window``), ``width`` (universe
             size), ``w`` (hyper cost), optional ``session`` id and
             policy params (``alpha``/``memory``/``k``/``scalar``)
``feed``     ``session``, ``count`` requirement masks packed into
             ``masks`` — little-endian uint64 lane rows, base64- (default)
             or hex-encoded (``encoding``)
``close``    ``session`` — finish the session into a validated run
``stats``    no payload — aggregate server/shard/engine counters
``metrics``  no payload — full labeled histogram snapshot (JSON wire
             form) plus the Prometheus text exposition
===========  =============================================================

``open``, ``feed`` and ``close`` additionally accept an optional
``trace`` string (≤128 chars): a client-chosen trace id, echoed
verbatim in the matching reply and attached to the server's span
events, so a tail-latency outlier in the trace ring can be tied back
to the exact client request that suffered it.

Replies are JSON objects too: ``{"ok": true, "op": …, …}`` on success,
``{"ok": false, "error": …}`` on failure.  Every structural violation
raises :class:`ProtocolError` (mapped to an error reply by the server,
never a dropped connection), so malformed input is rejected loudly.

Mask chunks travel in the same lane encoding the engine computes on:
a ``(count, L)`` uint64 row matrix (``L = ceil(width/64)``), serialized
little-endian row-major.  Encode/decode are shared by server and
client, and the decoder *validates* — blob length must match
``count · L · 8`` and bits above ``width`` must be zero — so the
server can hand decoded lanes straight to the packed fast path.

**Protocol v2 (binary feed frames).**  JSON + base64 costs ~35% size
overhead plus a decode on the receiving event loop; v2 moves the feed
hot path onto length-prefixed binary frames while everything else
(open/close/stats/metrics, every reply) stays newline-delimited JSON.
A v2 frame is an 8-byte header followed by the payload::

    offset  size  field
    0       1     magic 0xA7 (never a printable JSON first byte)
    1       1     version (2)
    2       1     opcode (1 = feed)
    3       1     flags (bit0 INTERNED, bit1 DEFLATE)
    4       4     payload length, u32 little-endian

Feed payload: ``u8 session-length | session utf-8 | u32 count``,
then either the **raw** section — ``count · L`` uint64 lanes,
little-endian row-major — or (INTERNED) ``u32 base_epoch | u32
new_rows`` followed by ``new_rows · L`` lanes and ``count`` row ids in
the narrowest dtype ``base_epoch + new_rows`` allows.  DEFLATE marks
the section (only) as zlib-compressed; the receiver knows the exact
inflated size, so decompression is strictly bounded.  Ids are indices
into the *connection's* intern table (:class:`ClientArena` client-side,
an id-map onto the global :class:`~repro.engine.intern.MaskArena`
server-side); ``base_epoch`` must equal the table's current size, so a
desynced client is rejected loudly, never served wrong lanes.

Version negotiation rides the JSON ``open`` frame: a v2 client sends
``"proto": 2`` and switches to binary feeds only when the reply echoes
``"proto": 2``; servers detect binary frames by the magic byte, so
both protocols interleave freely on one connection.  v1-only clients
never see any of this.
"""

from __future__ import annotations

import base64
import binascii
import json
import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.packed import lane_count

__all__ = [
    "ARENA_MAX_DISTINCT",
    "ARENA_PROBE_ROWS",
    "BIN_FLAG_DEFLATE",
    "BIN_FLAG_INTERNED",
    "BIN_HEADER",
    "BIN_MAGIC",
    "BIN_OP_FEED",
    "BIN_VERSION",
    "BinFeedFrame",
    "ClientArena",
    "MAX_CLIENT_ARENA",
    "MAX_FRAME_BYTES",
    "PROTO_BIN",
    "PROTO_JSON",
    "ProtocolError",
    "OpenFrame",
    "FeedFrame",
    "CloseFrame",
    "StatsFrame",
    "MetricsFrame",
    "encode_frame",
    "decode_frame",
    "encode_feed_bin",
    "encode_mask_chunk",
    "decode_mask_chunk",
    "lanes_from_bytes",
    "parse_bin_feed",
    "parse_request",
    "policy_from_spec",
    "error_frame",
    "ok_frame",
]

#: Upper bound on one serialized frame (also the server's read limit).
#: 1 MiB of base64 holds ~98k single-lane requirement rows — far above
#: any sane chunk; bigger frames are a protocol violation.
MAX_FRAME_BYTES = 1 << 20

#: Protocol versions as negotiated on ``open`` frames.
PROTO_JSON = 1
PROTO_BIN = 2

#: First byte of every binary frame.  0xA7 is not valid UTF-8 as a
#: leading byte and can never start a JSON line, so one peeked byte
#: routes a connection's next frame to the right parser.
BIN_MAGIC = 0xA7
BIN_VERSION = 2
BIN_OP_FEED = 1
BIN_FLAG_INTERNED = 0x01
BIN_FLAG_DEFLATE = 0x02
_BIN_KNOWN_FLAGS = BIN_FLAG_INTERNED | BIN_FLAG_DEFLATE

#: magic, version, opcode, flags, payload length.
BIN_HEADER = struct.Struct("<BBBBI")

#: Per-connection intern tables stay u16-indexable: above this many
#: distinct rows a client falls back to raw frames (the table already
#: failed to converge — interning was the wrong tool for that stream).
MAX_CLIENT_ARENA = 1 << 16

#: Adaptive interning probe: once a client arena has seen this many
#: rows, a distinct fraction above :data:`ARENA_MAX_DISTINCT` means the
#: stream barely repeats itself — interning then costs table CPU on
#: both ends for almost no byte savings (deflate already carries the
#: compression), so the arena gives up and the chunks go raw.
ARENA_PROBE_ROWS = 1024
ARENA_MAX_DISTINCT = 0.5

_U32 = struct.Struct("<I")
_U32x2 = struct.Struct("<II")


class ProtocolError(ValueError):
    """A frame violated the wire protocol (malformed, not just unlucky)."""


# ---------------------------------------------------------------------------
# Frames (parsed requests)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpenFrame:
    """Parsed ``open`` request.

    ``proto`` is the client's highest supported protocol version
    (:data:`PROTO_JSON` when absent — every pre-v2 client); a v2 server
    echoes ``proto: 2`` in the reply when binary feeds are enabled.
    """

    session: str | None
    policy: str
    width: int
    w: float
    params: dict = field(default_factory=dict)
    trace: str | None = None
    proto: int = PROTO_JSON


@dataclass(frozen=True)
class FeedFrame:
    """Parsed ``feed`` request; ``masks`` stays encoded until the
    server looks up the session's universe width."""

    session: str
    count: int
    masks: str
    encoding: str
    trace: str | None = None


@dataclass(frozen=True)
class CloseFrame:
    """Parsed ``close`` request."""

    session: str
    trace: str | None = None


@dataclass(frozen=True)
class StatsFrame:
    """Parsed ``stats`` request."""


@dataclass(frozen=True)
class MetricsFrame:
    """Parsed ``metrics`` request (full histogram + exposition dump)."""


# ---------------------------------------------------------------------------
# Line framing
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialize one frame: compact JSON + newline."""
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame line into a JSON object (dict).

    Raises :class:`ProtocolError` on anything that is not exactly one
    JSON object: empty lines, truncated/overlong frames, JSON scalars
    or arrays, invalid UTF-8.
    """
    if isinstance(line, str):
        line = line.encode()
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        obj = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame must be a JSON object")
    return obj


# ---------------------------------------------------------------------------
# Mask chunk encoding
# ---------------------------------------------------------------------------


def _as_lanes(masks, width: int) -> np.ndarray:
    from repro.core.packed import masks_to_lanes

    if isinstance(masks, np.ndarray) and masks.ndim == 2:
        lanes = np.ascontiguousarray(masks, dtype=np.uint64)
        if lanes.shape[1] != lane_count(width):
            raise ProtocolError(
                f"lane rows have {lanes.shape[1]} lanes, width {width} "
                f"needs {lane_count(width)}"
            )
        return lanes
    return masks_to_lanes(list(masks), width)


def encode_mask_chunk(masks, width: int, *, encoding: str = "b64") -> str:
    """Encode requirement masks as a wire blob.

    ``masks`` is an iterable of int masks or an already lane-packed
    ``(C, L)`` uint64 array; rows serialize little-endian, row-major.
    """
    lanes = _as_lanes(masks, width)
    raw = np.ascontiguousarray(lanes, dtype="<u8").tobytes()
    if encoding == "b64":
        return base64.b64encode(raw).decode("ascii")
    if encoding == "hex":
        return raw.hex()
    raise ProtocolError(f"unknown mask encoding {encoding!r}")


def decode_mask_chunk(
    blob: str, count: int, width: int, *, encoding: str = "b64"
) -> np.ndarray:
    """Decode a wire blob back into validated ``(count, L)`` lanes.

    Rejects blobs whose length disagrees with ``count`` and rows that
    set bits at or above ``width`` — the result is safe to hand to the
    lane-trusting fast path (:meth:`StreamSession.feed_many`).
    """
    if count < 0:
        raise ProtocolError("mask count must be non-negative")
    if encoding == "b64":
        try:
            raw = base64.b64decode(blob, validate=True)
        except (binascii.Error, ValueError) as exc:
            raise ProtocolError(f"invalid base64 mask blob: {exc}") from None
    elif encoding == "hex":
        try:
            raw = bytes.fromhex(blob)
        except ValueError as exc:
            raise ProtocolError(f"invalid hex mask blob: {exc}") from None
    else:
        raise ProtocolError(f"unknown mask encoding {encoding!r}")
    return lanes_from_bytes(raw, count, width)


def lanes_from_bytes(raw: bytes, count: int, width: int) -> np.ndarray:
    """Validate raw little-endian lane bytes into ``(count, L)`` lanes.

    The shared tail of every wire decode (b64, hex, binary): the byte
    length must match ``count · L · 8`` exactly, and bits at or above
    ``width`` are rejected — the result is safe for the lane-trusting
    fast path.
    """
    L = lane_count(width)
    expected = count * L * 8
    if len(raw) != expected:
        raise ProtocolError(
            f"mask blob holds {len(raw)} bytes, "
            f"count={count} × {L} lane(s) needs {expected}"
        )
    lanes = (
        np.frombuffer(raw, dtype="<u8").astype(np.uint64).reshape(count, L)
    )
    # Bits above the universe width are a protocol violation, not a
    # subtle downstream surprise.
    tail_bits = width - (L - 1) * 64
    if tail_bits < 64 and count:
        top = np.uint64((1 << tail_bits) - 1)
        if np.any(lanes[:, L - 1] & ~top):
            raise ProtocolError(
                f"mask sets switches beyond the {width}-switch universe"
            )
    return lanes


# ---------------------------------------------------------------------------
# Binary feed frames (protocol v2)
# ---------------------------------------------------------------------------


def _id_dtype(table_size: int) -> str:
    """Narrowest unsigned dtype indexing a table of ``table_size`` rows."""
    if table_size <= 1 << 8:
        return "<u1"
    if table_size <= 1 << 16:
        return "<u2"
    return "<u4"


class ClientArena:
    """Client-side intern table of one ``(connection, width)`` pair.

    Mirrors the server's per-connection id map: both sides append the
    same rows in the same frame order, so the table *size* is the
    shared epoch — it rides every interned frame as ``base_epoch`` and
    any drift is detected before a single wrong lane is served.  Ids
    are connection-local (the server translates them onto its global
    :class:`~repro.engine.intern.MaskArena`).  At :data:`MAX_CLIENT_ARENA`
    distinct rows the table stops growing and :meth:`intern` signals
    the caller to send raw frames instead.

    Interning is also *adaptive*: after :data:`ARENA_PROBE_ROWS` rows,
    a stream whose distinct fraction exceeds :data:`ARENA_MAX_DISTINCT`
    permanently stops interning — shipping mostly-fresh rows through
    the table costs intern CPU on both ends of the wire for almost no
    byte savings over deflated raw frames.
    """

    __slots__ = ("width", "lanes_per_row", "_ids", "cap", "rows_seen",
                 "_given_up")

    def __init__(self, width: int, *, cap: int = MAX_CLIENT_ARENA):
        self.width = int(width)
        self.lanes_per_row = lane_count(width)
        self._ids: dict[bytes, int] = {}
        self.cap = int(cap)
        self.rows_seen = 0
        self._given_up = False

    @property
    def epoch(self) -> int:
        return len(self._ids)

    @property
    def active(self) -> bool:
        """False once the arena stopped interning (full or divergent)."""
        return not self._given_up

    def intern(self, lanes: np.ndarray):
        """Intern one chunk's rows; ``None`` when the chunk must go raw
        instead (table overflow or a stream that does not repeat itself
        — either way nothing is committed).

        Returns ``(base_epoch, new_lanes, ids)``: the table size before
        this chunk, the ``(k, L)`` matrix of first-seen rows in id
        order, and the ``(C,)`` id row of every step.
        """
        if self._given_up:
            return None
        base = len(self._ids)
        fresh: dict[bytes, int] = {}
        ids = np.empty(lanes.shape[0], dtype=np.uint32)
        for j in range(lanes.shape[0]):
            key = lanes[j].tobytes()
            idx = self._ids.get(key)
            if idx is None:
                idx = fresh.get(key)
                if idx is None:
                    idx = base + len(fresh)
                    fresh[key] = idx
            ids[j] = idx
        self.rows_seen += lanes.shape[0]
        distinct = base + len(fresh)
        if distinct > self.cap:
            self._given_up = True
            return None
        if (
            self.rows_seen >= ARENA_PROBE_ROWS
            and distinct > ARENA_MAX_DISTINCT * self.rows_seen
        ):
            self._given_up = True
            return None
        self._ids.update(fresh)
        if fresh:
            new_lanes = np.frombuffer(
                b"".join(fresh), dtype="<u8"
            ).reshape(len(fresh), self.lanes_per_row)
        else:
            new_lanes = np.empty((0, self.lanes_per_row), dtype="<u8")
        return base, new_lanes, ids


def _deflate_maybe(section: bytes, deflate: bool | None):
    """Compress when asked (or when it wins); returns (bytes, flag)."""
    if deflate is False:
        return section, 0
    packed = zlib.compress(section, 1)
    if deflate or len(packed) < len(section):
        return packed, BIN_FLAG_DEFLATE
    return section, 0


def encode_feed_bin(
    session: str,
    lanes: np.ndarray,
    width: int,
    *,
    arena: ClientArena | None = None,
    deflate: bool | None = None,
) -> bytes:
    """Encode one v2 binary feed frame.

    ``lanes`` is the chunk's ``(C, L)`` uint64 matrix.  With ``arena``,
    the chunk ships interned — first-seen rows once plus per-step ids —
    unless the table is full (silent raw fallback).  ``deflate=None``
    compresses the section only when that actually wins; ``True``/
    ``False`` force it (golden fixtures pin the uncompressed form).
    """
    lanes = np.ascontiguousarray(lanes, dtype="<u8")
    L = lane_count(width)
    if lanes.ndim != 2 or lanes.shape[1] != L:
        raise ProtocolError(
            f"lane rows have {lanes.shape[-1] if lanes.ndim else 0} "
            f"lanes, width {width} needs {L}"
        )
    count = lanes.shape[0]
    if count < 1:
        raise ProtocolError("feed chunks must contain at least one mask")
    sid = session.encode()
    if not 1 <= len(sid) <= 255:
        raise ProtocolError(
            "binary feed session ids must be 1..255 UTF-8 bytes"
        )
    flags = 0
    interned = arena.intern(lanes) if arena is not None else None
    if interned is not None:
        base, new_lanes, ids = interned
        flags |= BIN_FLAG_INTERNED
        id_blob = ids.astype(
            _id_dtype(base + new_lanes.shape[0]), copy=False
        ).tobytes()
        section = new_lanes.tobytes() + id_blob
        section, deflated = _deflate_maybe(section, deflate)
        head = _U32x2.pack(base, new_lanes.shape[0])
    else:
        section, deflated = _deflate_maybe(lanes.tobytes(), deflate)
        head = b""
    flags |= deflated
    payload = (
        bytes((len(sid),)) + sid + _U32.pack(count) + head + section
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    return BIN_HEADER.pack(
        BIN_MAGIC, BIN_VERSION, BIN_OP_FEED, flags, len(payload)
    ) + payload


@dataclass(frozen=True)
class BinFeedFrame:
    """Parsed v2 binary ``feed`` request.

    ``section`` stays encoded (possibly deflated) until the server
    knows the session's width: :meth:`raw_lanes` /
    :meth:`interned_parts` inflate, length-check and bit-validate —
    raw resolution runs in the drain executor, off the event loop.
    """

    session: str
    count: int
    interned: bool
    deflated: bool
    base_epoch: int
    new_rows: int
    section: bytes

    def _section_bytes(self, expected: int) -> bytes:
        """The section at its exact expected inflated size, or raise."""
        data = self.section
        if self.deflated:
            try:
                obj = zlib.decompressobj()
                data = obj.decompress(data, expected)
                if not obj.eof or obj.unused_data:
                    raise ProtocolError(
                        "deflated feed section does not match its "
                        "declared size"
                    )
            except zlib.error as exc:
                raise ProtocolError(
                    f"invalid deflate stream: {exc}"
                ) from None
        if len(data) != expected:
            raise ProtocolError(
                f"feed section holds {len(data)} bytes, "
                f"expected {expected}"
            )
        return data

    def raw_lanes(self, width: int) -> np.ndarray:
        """Resolve a raw frame into validated ``(count, L)`` lanes."""
        L = lane_count(width)
        raw = self._section_bytes(self.count * L * 8)
        return lanes_from_bytes(raw, self.count, width)

    def interned_parts(self, width: int):
        """Resolve an interned frame into ``(new_lanes, ids)``.

        ``new_lanes`` is the validated ``(new_rows, L)`` matrix of
        first-seen rows, ``ids`` the ``(count,)`` connection-local id
        row (each below ``base_epoch + new_rows``).
        """
        L = lane_count(width)
        dtype = _id_dtype(self.base_epoch + self.new_rows)
        lane_bytes = self.new_rows * L * 8
        id_bytes = self.count * int(dtype[-1])
        data = self._section_bytes(lane_bytes + id_bytes)
        new_lanes = lanes_from_bytes(
            data[:lane_bytes], self.new_rows, width
        )
        ids = np.frombuffer(data[lane_bytes:], dtype=dtype)
        top = self.base_epoch + self.new_rows
        if ids.size and int(ids.max()) >= top:
            raise ProtocolError(
                f"interned feed references id {int(ids.max())}, table "
                f"holds {top}"
            )
        return new_lanes, ids


def parse_bin_feed(
    opcode: int,
    flags: int,
    payload: bytes,
    *,
    max_chunk_steps: int | None = None,
) -> BinFeedFrame:
    """Validate one binary frame's opcode/flags/payload structure.

    Cheap structural checks only (the section stays opaque); the
    header itself — magic, version, length bounds — is the transport
    loop's job, since framing errors kill the connection while payload
    errors only earn an error reply.
    """
    if opcode != BIN_OP_FEED:
        raise ProtocolError(f"unknown binary opcode {opcode}")
    if flags & ~_BIN_KNOWN_FLAGS:
        raise ProtocolError(f"unknown binary flags {flags:#04x}")
    interned = bool(flags & BIN_FLAG_INTERNED)
    deflated = bool(flags & BIN_FLAG_DEFLATE)
    head = 1
    if len(payload) < head:
        raise ProtocolError("binary feed payload is truncated")
    slen = payload[0]
    if slen < 1:
        raise ProtocolError("binary feed session id is empty")
    if len(payload) < head + slen + 4:
        raise ProtocolError("binary feed payload is truncated")
    try:
        session = payload[head : head + slen].decode()
    except UnicodeDecodeError as exc:
        raise ProtocolError(
            f"binary feed session id is not UTF-8: {exc}"
        ) from None
    head += slen
    (count,) = _U32.unpack_from(payload, head)
    head += 4
    if count < 1:
        raise ProtocolError("feed.count must be a positive integer")
    if max_chunk_steps is not None and count > max_chunk_steps:
        raise ProtocolError(
            f"feed.count {count} exceeds the server chunk limit "
            f"{max_chunk_steps}"
        )
    base_epoch = new_rows = 0
    if interned:
        if len(payload) < head + 8:
            raise ProtocolError("binary feed payload is truncated")
        base_epoch, new_rows = _U32x2.unpack_from(payload, head)
        head += 8
        if base_epoch + new_rows > MAX_CLIENT_ARENA:
            raise ProtocolError(
                f"interned table would exceed {MAX_CLIENT_ARENA} rows"
            )
        if new_rows > count:
            raise ProtocolError(
                "interned feed declares more new rows than steps"
            )
    return BinFeedFrame(
        session=session,
        count=int(count),
        interned=interned,
        deflated=deflated,
        base_epoch=int(base_epoch),
        new_rows=int(new_rows),
        section=payload[head:],
    )


# ---------------------------------------------------------------------------
# Request parsing and policy construction
# ---------------------------------------------------------------------------


def _require(obj: dict, key: str, types, *, op: str):
    if key not in obj:
        raise ProtocolError(f"{op} frame missing field {key!r}")
    value = obj[key]
    # bool is a subclass of int; a frame saying "count": true is malformed.
    if not isinstance(value, types) or isinstance(value, bool):
        raise ProtocolError(
            f"{op} frame field {key!r} has invalid type "
            f"{type(value).__name__}"
        )
    return value


#: Recognized ``open`` policy parameters (anything else is rejected).
_POLICY_PARAMS = {"alpha", "memory", "k", "scalar"}

#: Client trace ids are short opaque tokens, not payload channels.
MAX_TRACE_CHARS = 128


def _trace_of(obj: dict, *, op: str) -> str | None:
    trace = obj.get("trace")
    if trace is None:
        return None
    if not isinstance(trace, str) or not trace:
        raise ProtocolError(f"{op}.trace must be a non-empty string")
    if len(trace) > MAX_TRACE_CHARS:
        raise ProtocolError(
            f"{op}.trace exceeds {MAX_TRACE_CHARS} characters"
        )
    return trace


def parse_request(
    obj: dict, *, max_chunk_steps: int | None = None
) -> OpenFrame | FeedFrame | CloseFrame | StatsFrame | MetricsFrame:
    """Validate a decoded frame object into a typed request.

    ``max_chunk_steps`` caps ``feed.count`` (admission control lives at
    the parse boundary, before any bytes are decoded).
    """
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("frame missing string field 'op'")
    if op == "open":
        policy = _require(obj, "policy", str, op=op)
        width = _require(obj, "width", int, op=op)
        if width < 1:
            raise ProtocolError("open.width must be at least 1")
        w = _require(obj, "w", (int, float), op=op)
        if w <= 0:
            raise ProtocolError("open.w must be positive")
        session = obj.get("session")
        if session is not None and not isinstance(session, str):
            raise ProtocolError("open.session must be a string")
        params = {
            k: obj[k] for k in _POLICY_PARAMS if k in obj
        }
        proto = obj.get("proto", PROTO_JSON)
        if not isinstance(proto, int) or isinstance(proto, bool) or (
            proto not in (PROTO_JSON, PROTO_BIN)
        ):
            raise ProtocolError(
                f"open.proto must be {PROTO_JSON} or {PROTO_BIN}"
            )
        unknown = (
            set(obj)
            - _POLICY_PARAMS
            - {"op", "policy", "width", "w", "session", "trace", "proto"}
        )
        if unknown:
            raise ProtocolError(
                f"open frame has unknown fields {sorted(unknown)}"
            )
        return OpenFrame(
            session=session,
            policy=policy,
            width=int(width),
            w=float(w),
            params=params,
            trace=_trace_of(obj, op=op),
            proto=proto,
        )
    if op == "feed":
        session = _require(obj, "session", str, op=op)
        count = _require(obj, "count", int, op=op)
        if count < 1:
            raise ProtocolError("feed.count must be a positive integer")
        if max_chunk_steps is not None and count > max_chunk_steps:
            raise ProtocolError(
                f"feed.count {count} exceeds the server chunk limit "
                f"{max_chunk_steps}"
            )
        masks = _require(obj, "masks", str, op=op)
        encoding = obj.get("encoding", "b64")
        if encoding not in ("b64", "hex"):
            raise ProtocolError(f"unknown mask encoding {encoding!r}")
        return FeedFrame(
            session=session,
            count=int(count),
            masks=masks,
            encoding=encoding,
            trace=_trace_of(obj, op=op),
        )
    if op == "close":
        return CloseFrame(
            session=_require(obj, "session", str, op=op),
            trace=_trace_of(obj, op=op),
        )
    if op == "stats":
        return StatsFrame()
    if op == "metrics":
        return MetricsFrame()
    raise ProtocolError(f"unknown op {op!r}")


def policy_from_spec(policy: str, w: float, params: dict):
    """Build an online scheduler from a wire-level policy spec.

    Shared by the server (``open`` frames) and the ``repro stream`` /
    ``serve-bench`` CLI paths, so every entry point accepts the same
    vocabulary.  ``scalar: true`` wraps the policy in
    :class:`~repro.solvers.online.ScalarOnly` (oracle path).
    """
    from repro.solvers.online import (
        RentOrBuyScheduler,
        ScalarOnly,
        WindowScheduler,
    )

    unknown = set(params) - _POLICY_PARAMS
    if unknown:
        raise ProtocolError(f"unknown policy parameters {sorted(unknown)}")
    try:
        if policy == "rent_or_buy":
            scheduler = RentOrBuyScheduler(
                w,
                alpha=float(params.get("alpha", 1.0)),
                memory=int(params.get("memory", 4)),
            )
        elif policy == "window":
            scheduler = WindowScheduler(k=int(params.get("k", 8)))
        else:
            raise ProtocolError(f"unknown policy {policy!r}")
    except ProtocolError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid policy parameters: {exc}") from None
    if params.get("scalar"):
        scheduler = ScalarOnly(scheduler, name=f"{scheduler.name} [scalar]")
    return scheduler


# ---------------------------------------------------------------------------
# Replies
# ---------------------------------------------------------------------------


def ok_frame(op: str, **fields) -> dict:
    """Success reply for one request op."""
    out = {"ok": True, "op": op}
    out.update(fields)
    return out


def error_frame(message: str, *, op: str | None = None) -> dict:
    """Failure reply (the connection stays up; the frame is rejected)."""
    out = {"ok": False, "error": message}
    if op is not None:
        out["op"] = op
    return out
