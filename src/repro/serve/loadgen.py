"""Loopback load generator: drive a serving process like a user fleet.

``repro serve-bench`` and benchmark E17 both need the same exercise:
open S sessions through real client connections, feed every session a
phased requirement stream chunk by chunk, close everything, and report
throughput — optionally cross-checking every per-session cost against
a single-threaded :class:`~repro.engine.stream.StreamHub` replay of
the same traces (the serving layer must never change an answer, only
how fast it arrives).

Clients run on threads, each owning an equal slice of the fleet and
feeding it round-robin (all sessions advance chunk 0, then chunk 1, …)
— the arrival pattern that lets the server's per-shard drain cycles
actually batch.  With ``pipeline=True`` each round goes out as one
:meth:`~repro.serve.client.ServeClient.feed_pipelined` burst per
client, so a whole fleet round costs one round trip instead of one per
session.  ``proto`` selects the wire protocol per client
(``"auto"``/``"json"``/``"bin"``); the result carries the bytes each
generation actually put on the wire.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs.histogram import TIME_SCHEME, Histogram
from repro.util.rng import make_rng

__all__ = ["LoadgenResult", "drifting_masks", "run_loadgen"]


def drifting_masks(
    width: int, n: int, seed, *, phase: int = 150, noise: float = 0.003
) -> list[int]:
    """A phased requirement stream: a ~12-switch working set that
    drifts every ``phase`` steps, plus occasional noise bits — the
    regime online policies are built for (stable phases, abrupt
    changes).  Shared by E16/E17 and the ``serve-bench`` CLI."""
    rng = make_rng(seed)
    masks = []
    working = set(int(x) for x in rng.choice(width, size=12, replace=False))
    for i in range(n):
        if i % phase == 0 and i:
            drop = min(len(working), int(rng.integers(3, 7)))
            for s in list(rng.permutation(sorted(working))[:drop]):
                working.discard(int(s))
            while len(working) < 12:
                working.add(int(rng.integers(0, width)))
        subset = rng.random(len(working)) < 0.7
        mask = 0
        for keep, switch in zip(subset, sorted(working)):
            if keep:
                mask |= 1 << switch
        if rng.random() < noise:
            mask |= 1 << int(rng.integers(0, width))
        masks.append(mask)
    return masks


@dataclass
class LoadgenResult:
    """Outcome of one load-generation run."""

    sessions: int
    steps: int
    frames: int
    wall_s: float
    costs: dict[str, float] = field(default_factory=dict)
    verified: bool | None = None
    #: wire protocol the clients ran ("json" | "bin" | "auto").
    proto: str = "json"
    #: request bytes the clients put on the wire / reply bytes read
    #: back, summed over every client connection.
    bytes_out: int = 0
    bytes_in: int = 0
    #: client-observed feed round-trip latency, merged across all
    #: client threads — same :class:`Histogram` type as the server's
    #: families, so client p50/p95/p99 line up with server quantiles
    #: in the E17 / serve-bench tables.
    latency: Histogram = field(
        default_factory=lambda: Histogram(TIME_SCHEME)
    )

    @property
    def steps_per_s(self) -> float:
        return self.steps / self.wall_s if self.wall_s else 0.0

    @property
    def frames_per_s(self) -> float:
        return self.frames / self.wall_s if self.wall_s else 0.0


def _client_worker(
    host, port, jobs, chunk, policy, policy_params, width, w,
    proto, pipeline, out, latency, errors
):
    from repro.serve.client import ServeClient

    try:
        with ServeClient(host, port, proto=proto) as client:
            for sid, _masks in jobs:
                got = client.open(
                    policy=policy,
                    width=width,
                    w=w,
                    session_id=sid,
                    **policy_params,
                )
                assert got == sid
            longest = max(len(masks) for _sid, masks in jobs)
            frames = len(jobs)  # the opens
            pos = 0
            while pos < longest:
                batch = [
                    (sid, masks[pos : pos + chunk])
                    for sid, masks in jobs
                    if pos < len(masks)
                ]
                if pipeline:
                    # One burst per round: the whole batch shares one
                    # round trip, so each frame is booked at the batch
                    # RTT it actually waited behind.
                    t0 = time.perf_counter()
                    client.feed_pipelined(batch)
                    dt = time.perf_counter() - t0
                    for _ in batch:
                        latency.observe(dt)
                else:
                    for sid, masks in batch:
                        t0 = time.perf_counter()
                        client.feed(sid, masks)
                        latency.observe(time.perf_counter() - t0)
                frames += len(batch)
                pos += chunk
            for sid, _masks in jobs:
                res = client.close_session(sid)
                frames += 1
                out[sid] = res.cost
            # sentinel: this worker's frame count + wire byte totals.
            out[None] = (frames, client.bytes_sent, client.bytes_received)
    except Exception as exc:  # noqa: BLE001 - surfaced by the caller
        errors.append(exc)


def run_loadgen(
    host: str,
    port: int,
    *,
    sessions: int,
    steps: int,
    chunk: int = 256,
    width: int = 96,
    w: float | None = None,
    policy: str = "rent_or_buy",
    policy_params: dict | None = None,
    clients: int = 4,
    phase: int = 600,
    seed: int = 0,
    verify: bool = False,
    proto: str = "auto",
    pipeline: bool = False,
) -> LoadgenResult:
    """Drive a serving process with a synthetic fleet; see module doc.

    ``verify=True`` replays every trace through a local single-threaded
    :class:`StreamHub` and requires exact per-session cost equality
    (raises ``AssertionError`` otherwise, with the offending session).
    """
    if sessions < 1 or steps < 1 or chunk < 1 or clients < 1:
        raise ValueError(
            "sessions, steps, chunk and clients must be at least 1"
        )
    policy_params = dict(policy_params or {})
    w = float(w) if w is not None else float(width)
    traces = {
        f"u{s}": drifting_masks(
            width, steps, seed=seed * 1_000_003 + s, phase=phase
        )
        for s in range(sessions)
    }
    clients = min(clients, sessions)
    slices = [list(traces.items())[c::clients] for c in range(clients)]
    outs = [dict() for _ in range(clients)]
    # One histogram per client thread (no shared-state contention in
    # the timed path), merged after the join.
    latencies = [Histogram(TIME_SCHEME) for _ in range(clients)]
    errors: list[Exception] = []
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(host, port, slices[c], chunk, policy, policy_params,
                  width, w, proto, pipeline, outs[c], latencies[c],
                  errors),
            name=f"loadgen-{c}",
        )
        for c in range(clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    costs: dict[str, float] = {}
    frames = bytes_out = bytes_in = 0
    for out in outs:
        got, sent, received = out.pop(None, (0, 0, 0))
        frames += got
        bytes_out += sent
        bytes_in += received
        costs.update(out)
    latency = Histogram(TIME_SCHEME)
    for h in latencies:
        latency.merge(h)
    result = LoadgenResult(
        sessions=sessions,
        steps=sessions * steps,
        frames=frames,
        wall_s=wall,
        costs=costs,
        proto=proto,
        bytes_out=bytes_out,
        bytes_in=bytes_in,
        latency=latency,
    )
    if verify:
        result.verified = _verify(traces, costs, width, w, policy,
                                  policy_params)
    return result


def _verify(traces, costs, width, w, policy, policy_params) -> bool:
    """Single-hub oracle replay; exact equality per session."""
    from repro.core.switches import SwitchUniverse
    from repro.engine.stream import StreamHub
    from repro.serve.protocol import policy_from_spec

    universe = SwitchUniverse.of_size(width)
    hub = StreamHub()
    for sid, masks in traces.items():
        scheduler = policy_from_spec(policy, w, policy_params)
        hub.open(scheduler, universe, w, session_id=sid)
        hub.feed_many({sid: masks})
    runs = hub.finish_all()
    for sid, masks in traces.items():
        if runs[sid].cost != costs[sid]:
            raise AssertionError(
                f"session {sid}: served cost {costs[sid]} != "
                f"single-hub replay {runs[sid].cost}"
            )
    return True
