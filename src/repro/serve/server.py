"""Asyncio front door: the shard pool as a long-running network service.

:class:`StreamServer` listens on TCP (and/or speaks the same protocol
over stdin/stdout) and turns newline-delimited JSON frames
(:mod:`repro.serve.protocol`) into shard-pool calls:

* **admission control** — ``open`` is rejected once ``max_sessions``
  live sessions exist; ``feed`` frames larger than ``max_chunk_steps``
  are rejected at the parse boundary; oversized lines kill only the
  offending connection;
* **per-shard batching** — ``feed`` frames do not hit the pool one by
  one: each lands in the owning shard's bounded queue, and a drainer
  task per shard collects everything queued (one chunk per session,
  FIFO order preserved) into **one**
  :meth:`~repro.serve.shard.ShardPool.feed_shard` call per drain
  cycle.  Under load, frames that arrive while a cycle runs coalesce
  into the next one — the batch size adapts to the backlog;
* **backpressure** — the queues are bounded (``queue_depth``); when a
  shard falls behind, ``feed`` frames wait in the reader coroutine,
  TCP flow control propagates the stall to the client, and memory
  stays bounded;
* **ordering** — ``close`` travels through the same shard queue as a
  barrier, so a session's pending feeds are always served before its
  run is finished and validated.

Sessions are server-global (not per-connection): any connection may
feed any open session, and a dropped connection leaves its sessions
live for a reconnect.  Per-session decisions come out bit-identical to
a single-threaded :class:`~repro.engine.stream.StreamHub` replay —
sharding and batching change the schedule of the work, never its
answers (``tests/test_serve_server.py`` pins 256 concurrent sessions
against the single-hub oracle).
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.switches import SwitchUniverse
from repro.engine.intern import InternedChunk, arena_for
from repro.obs.expo import MetricsHTTPServer, render_exposition
from repro.obs.trace import TraceRecorder
from repro.serve.protocol import (
    BIN_HEADER,
    BIN_MAGIC,
    BIN_VERSION,
    MAX_FRAME_BYTES,
    PROTO_BIN,
    PROTO_JSON,
    CloseFrame,
    FeedFrame,
    MetricsFrame,
    OpenFrame,
    ProtocolError,
    StatsFrame,
    decode_frame,
    decode_mask_chunk,
    encode_frame,
    error_frame,
    ok_frame,
    parse_bin_feed,
    parse_request,
    policy_from_spec,
)
from repro.serve.shard import ShardPool

__all__ = ["ServeConfig", "ServerThread", "StreamServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving process."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is in .address)
    shards: int = 1
    shard_procs: bool = False
    max_sessions: int = 4096
    max_chunk_steps: int = 65536
    queue_depth: int = 64
    #: Per-session state is O(width · history); without these caps one
    #: `open` frame could allocate gigabytes of cursor state before
    #: max_sessions ever mattered.
    max_width: int = 65536
    max_history: int = 65536
    #: ``None`` disables the HTTP telemetry plane; ``0`` binds an
    #: ephemeral port (tests), anything else the given port.
    metrics_port: int | None = None
    #: Seconds between periodic stderr stats lines (``None`` = off).
    stats_interval: float | None = None
    #: Spans at least this many milliseconds land in the slow-request
    #: log (ring + rate-limited stderr line).  ``None``/``0`` disables.
    slow_ms: float | None = 100.0
    #: Span ring size of the request tracer (``0`` disables tracing).
    trace_capacity: int = 2048
    #: ``"auto"`` negotiates wire protocol v2 (binary feed frames) with
    #: clients that ask for it; ``"json"`` declines v2 on ``open`` and
    #: rejects binary frames outright (debugging / packet capture).
    proto: str = "auto"
    #: Per-connection cap on staged-but-unanswered frames.  Pipelined
    #: clients keep up to this many requests in flight before the
    #: reader stalls and TCP backpressure reaches the sender.
    pipeline: int = 32

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if self.max_chunk_steps < 1:
            raise ValueError("max_chunk_steps must be at least 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.max_width < 1:
            raise ValueError("max_width must be at least 1")
        if self.max_history < 1:
            raise ValueError("max_history must be at least 1")
        if self.metrics_port is not None and not (
            0 <= self.metrics_port <= 65535
        ):
            raise ValueError("metrics_port must be in [0, 65535]")
        if self.stats_interval is not None and self.stats_interval <= 0:
            raise ValueError("stats_interval must be positive")
        if self.slow_ms is not None and self.slow_ms < 0:
            raise ValueError("slow_ms must be non-negative")
        if self.trace_capacity < 0:
            raise ValueError("trace_capacity must be non-negative")
        if self.proto not in ("auto", "json"):
            raise ValueError('proto must be "auto" or "json"')
        if self.pipeline < 1:
            raise ValueError("pipeline must be at least 1")


def _echo(frame) -> dict:
    """Reply fields echoed from the request (the client's trace id)."""
    return {"trace": frame.trace} if frame.trace is not None else {}


async def _ready(reply: dict) -> dict:
    """A reply that needs no further work, as an awaitable (the reply
    sender awaits every staged item uniformly)."""
    return reply


@dataclass
class _EncodedChunk:
    """A feed payload whose decode is deferred to the drain executor.

    Base64/hex text for v1, a raw (possibly deflated) binary section
    for v2 — either way the event loop never touches the bytes; the
    drainer resolves them on the shard executor and books the CPU under
    ``wire_decode_seconds_total{proto=...}``.
    """

    proto: str
    _resolve: object  # () -> validated (C, L) uint64 lanes

    def resolve(self) -> np.ndarray:
        return self._resolve()


class _IdMap:
    """Connection-local arena ids -> global arena ids, one width.

    A client numbers its interned rows 0, 1, 2, ... in send order; the
    server appends each frame's first-seen rows to the process-global
    :class:`~repro.engine.intern.MaskArena` and records the resulting
    global ids here, so later frames' id rows translate with one
    fancy-indexed gather.  ``len`` is the replicated client epoch —
    every interned frame must arrive with exactly this base epoch.
    """

    __slots__ = ("_map", "_n")

    def __init__(self):
        self._map = np.empty(256, dtype=np.uint32)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def extend(self, global_ids: np.ndarray) -> None:
        need = self._n + global_ids.shape[0]
        if need > self._map.shape[0]:
            grown = np.empty(
                max(need, 2 * self._map.shape[0]), dtype=np.uint32
            )
            grown[: self._n] = self._map[: self._n]
            self._map = grown
        self._map[self._n : need] = global_ids
        self._n = need

    def translate(self, ids: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(self._map[: self._n][ids])


class _ConnState:
    """Per-connection wire state: one client-arena id map per width."""

    __slots__ = ("idmaps",)

    def __init__(self):
        self.idmaps: dict[int, _IdMap] = {}

    def idmap(self, width: int) -> _IdMap:
        try:
            return self.idmaps[width]
        except KeyError:
            self.idmaps[width] = made = _IdMap()
            return made


@dataclass
class _Job:
    """One queued shard operation (a feed chunk or a close barrier).

    ``enqueued`` (perf-counter seconds) marks when the job entered the
    shard queue; the drainer subtracts it from its cycle start to split
    each span into queue-wait vs service time.
    """

    kind: str  # "feed" | "close"
    session: str
    lanes: object = None
    future: asyncio.Future = None
    enqueued: float = 0.0
    trace: str | None = None


class _ShardQueue:
    """Bounded FIFO the drainer collects cycles from.

    ``take_cycle`` greedily pops queued jobs in order, stopping at the
    first job whose session already appears in the cycle — so a cycle
    carries at most one chunk per session (``feed_many``'s contract)
    and per-session order is never reordered across cycles.
    """

    def __init__(self, depth: int):
        self._depth = depth
        self._jobs: deque[_Job] = deque()
        self._cond = asyncio.Condition()

    async def put(self, job: _Job) -> None:
        async with self._cond:
            while len(self._jobs) >= self._depth:
                await self._cond.wait()
            self._jobs.append(job)
            self._cond.notify_all()

    async def take_cycle(self) -> tuple[dict[str, _Job], list[_Job]]:
        """Wait for work; return (feeds by session, closes in order)."""
        async with self._cond:
            while not self._jobs:
                await self._cond.wait()
            feeds: dict[str, _Job] = {}
            closes: list[_Job] = []
            seen: set[str] = set()
            while self._jobs:
                job = self._jobs[0]
                if job.session in seen:
                    break
                seen.add(job.session)
                self._jobs.popleft()
                if job.kind == "feed":
                    feeds[job.session] = job
                else:
                    closes.append(job)
            self._cond.notify_all()
            return feeds, closes

    def drain(self) -> list[_Job]:
        """Pop everything (shutdown path; the caller fails the futures).

        Runs on the event loop with no awaits, after the drainers are
        cancelled — nothing races the deque.
        """
        jobs = list(self._jobs)
        self._jobs.clear()
        return jobs


@dataclass
class _ServerCounters:
    """Operator-facing request accounting of one server."""

    connections: int = 0
    frames: int = 0
    opens: int = 0
    feeds: int = 0
    closes: int = 0
    stats_calls: int = 0
    metrics_calls: int = 0
    protocol_errors: int = 0
    rejected_sessions: int = 0
    errors: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, name: str, by: int = 1) -> None:
        with self.lock:
            setattr(self, name, getattr(self, name) + by)

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "connections": self.connections,
                "frames": self.frames,
                "opens": self.opens,
                "feeds": self.feeds,
                "closes": self.closes,
                "stats_calls": self.stats_calls,
                "metrics_calls": self.metrics_calls,
                "protocol_errors": self.protocol_errors,
                "rejected_sessions": self.rejected_sessions,
                "errors": self.errors,
            }


class StreamServer:
    """The shard pool behind a TCP/stdin frame loop.

    Build, ``await start()``, then either let the asyncio server accept
    TCP clients or pump stdin through :meth:`serve_stdin`; ``await
    stop()`` tears down drainers, listeners and (if owned) the pool.
    Tests and the load generator run the whole thing on a background
    thread via :class:`ServerThread`.
    """

    def __init__(
        self, config: ServeConfig | None = None, *, pool: ShardPool | None = None
    ):
        self.config = config if config is not None else ServeConfig()
        slow_ms = self.config.slow_ms
        self.tracer = TraceRecorder(
            self.config.trace_capacity,
            slow_threshold=slow_ms / 1e3 if slow_ms else None,
        )
        self._own_pool = pool is None
        self.pool = (
            pool
            if pool is not None
            else ShardPool(
                self.config.shards,
                procs=self.config.shard_procs,
                tracer=self.tracer,
            )
        )
        if self.pool.shards != self.config.shards:
            raise ValueError("pool shard count disagrees with the config")
        if self.pool.tracer is None:
            self.pool.tracer = self.tracer
        self.counters = _ServerCounters()
        self._started_mono = time.monotonic()
        self._slow_printed = 0.0  # rate limiter for stderr slow lines
        self._slow_lock = threading.Lock()
        self._metrics_http: MetricsHTTPServer | None = None
        self._reporter: asyncio.Task | None = None
        #: session id -> (universe width, shard) for feed decoding.
        self._sessions: dict[str, tuple[int, int]] = {}
        self._sessions_lock = threading.Lock()
        self._queues = [
            _ShardQueue(self.config.queue_depth)
            for _ in range(self.config.shards)
        ]
        self._drainers: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None
        self._writers: set = set()  # live client connections
        # Shard calls block (locks, pipes, NumPy); they run on this
        # executor so the event loop keeps accepting frames.  One
        # worker per shard plus one for open/close/stats traffic.
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.shards + 1, thread_name_prefix="serve"
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, listen: bool = True) -> None:
        """Start drainers (and the TCP listener unless ``listen=False``)."""
        loop = asyncio.get_running_loop()
        self._started_mono = time.monotonic()
        self._drainers = [
            loop.create_task(self._drain(shard))
            for shard in range(self.config.shards)
        ]
        if self.config.metrics_port is not None:
            self._metrics_http = MetricsHTTPServer(
                self.exposition,
                self.metrics_snapshot,
                host=self.config.host,
                port=self.config.metrics_port,
            )
            self._metrics_http.start()
        if self.config.stats_interval is not None:
            self._reporter = loop.create_task(self._stats_reporter())
        if listen:
            self._server = await asyncio.start_server(
                self._client_loop,
                self.config.host,
                self.config.port,
                limit=MAX_FRAME_BYTES + 2,
            )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) of the TCP listener."""
        if self._server is None:
            raise RuntimeError("server is not listening")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def metrics_address(self) -> tuple[str, int]:
        """The bound (host, port) of the ``GET /metrics`` endpoint."""
        if self._metrics_http is None:
            raise RuntimeError("metrics endpoint is not enabled")
        return self._metrics_http.address

    async def stop(self) -> None:
        """Stop listening, cancel drainers, close the owned pool.

        Live client connections are closed first: from Python 3.12.1
        ``Server.wait_closed()`` waits for every connection handler to
        finish, so an idle client would otherwise stall the shutdown
        forever.
        """
        for writer in tuple(self._writers):
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._reporter is not None:
            self._reporter.cancel()
            try:
                await self._reporter
            except asyncio.CancelledError:
                pass
            self._reporter = None
        if self._metrics_http is not None:
            self._metrics_http.stop()
            self._metrics_http = None
        for task in self._drainers:
            task.cancel()
        for task in self._drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drainers = []
        # Anything still queued will never be drained; fail its futures
        # so a straggling reply sender cannot wait forever.
        for queue in self._queues:
            for job in queue.drain():
                if job.future is not None and not job.future.done():
                    job.future.set_exception(
                        RuntimeError("server stopped")
                    )
        self._executor.shutdown(wait=True)
        if self._own_pool:
            self.pool.close()

    # -- drainers ----------------------------------------------------------

    async def _drain(self, shard: int) -> None:
        """Forever: collect one cycle, run it, resolve its futures."""
        loop = asyncio.get_running_loop()
        queue = self._queues[shard]
        while True:
            feeds, closes = await queue.take_cycle()
            # A feed can race a close issued on another connection; a
            # session gone by its drain cycle fails alone instead of
            # poisoning the whole batched feed_many call.
            for sid in [s for s in feeds if s not in self.pool]:
                job = feeds.pop(sid)
                if not job.future.done():
                    job.future.set_exception(
                        KeyError(f"unknown session id {sid!r}")
                    )
            if feeds:
                chunks = {sid: job.lanes for sid, job in feeds.items()}
                t0 = time.perf_counter()
                try:
                    summaries, failed = await loop.run_in_executor(
                        self._executor, self._run_cycle, shard, chunks
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    for job in feeds.values():
                        if not job.future.done():
                            job.future.set_exception(exc)
                else:
                    service = time.perf_counter() - t0
                    for sid, exc in failed.items():
                        job = feeds.pop(sid)
                        if not job.future.done():
                            job.future.set_exception(exc)
                    for sid, job in feeds.items():
                        self._span(
                            "feed", job, t0, service, shard,
                            steps=summaries[sid].steps,
                        )
                        if not job.future.done():
                            job.future.set_result(summaries[sid])
            for job in closes:
                t0 = time.perf_counter()
                try:
                    run = await loop.run_in_executor(
                        self._executor, self.pool.finish, job.session
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    if not job.future.done():
                        job.future.set_exception(exc)
                else:
                    self._span(
                        "close", job, t0, time.perf_counter() - t0, shard,
                        steps=run.schedule.n,
                    )
                    if not job.future.done():
                        job.future.set_result(run)

    def _run_cycle(self, shard: int, chunks: dict):
        """One executor hop: resolve deferred decodes, feed the shard.

        Runs on the shard executor.  A chunk whose decode fails (bad
        base64, wrong section length, tail bits set) fails alone — its
        error lands in ``failed`` and the rest of the cycle proceeds —
        and the decode CPU is booked per protocol either way.
        """
        resolved: dict[str, object] = {}
        failed: dict[str, Exception] = {}
        decode: dict[str, float] = {}
        for sid, payload in chunks.items():
            if not isinstance(payload, _EncodedChunk):
                resolved[sid] = payload
                continue
            t0 = time.perf_counter()
            try:
                resolved[sid] = payload.resolve()
            except ProtocolError as exc:
                failed[sid] = exc
            finally:
                decode[payload.proto] = (
                    decode.get(payload.proto, 0.0)
                    + time.perf_counter() - t0
                )
        for proto, seconds in decode.items():
            self.pool.metrics.record_wire(proto, decode_seconds=seconds)
        summaries = (
            self.pool.feed_shard(shard, resolved) if resolved else {}
        )
        return summaries, failed

    def _span(
        self, kind: str, job: _Job, t0: float, service: float,
        shard: int, **detail,
    ) -> None:
        """Record one queued request's span (queue wait + service) and
        feed the rate-limited slow-request stderr log."""
        queue_wait = max(0.0, t0 - job.enqueued) if job.enqueued else 0.0
        event = self.tracer.record(
            kind,
            duration=queue_wait + service,
            queue_wait=queue_wait,
            trace=job.trace,
            session=job.session,
            shard=shard,
            **detail,
        )
        threshold = self.tracer.slow_threshold
        if (
            event is not None
            and threshold is not None
            and event.duration >= threshold
        ):
            now = time.monotonic()
            with self._slow_lock:
                if now - self._slow_printed < 1.0:
                    return
                self._slow_printed = now
            trace = f" trace={event.trace}" if event.trace else ""
            print(
                f"[repro.serve] slow {kind}: session={job.session} "
                f"shard={shard} total={event.duration * 1e3:.1f}ms "
                f"(queue {queue_wait * 1e3:.1f}ms + service "
                f"{service * 1e3:.1f}ms){trace}",
                file=sys.stderr,
                flush=True,
            )

    # -- frame handling ----------------------------------------------------

    async def _client_loop(self, reader, writer) -> None:
        """One connection: read frames, reply in order, never crash."""
        self.counters.bump("connections")
        self._writers.add(writer)

        async def send(data: bytes) -> None:
            writer.write(data)
            await writer.drain()

        try:
            await self._pump(reader, send)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _pump(self, reader, send) -> None:
        """Shared transport loop (TCP and stdin speak the same frames).

        Frames are read and *staged* strictly in arrival order on the
        event loop — feed/close land in their shard queue here, so
        per-session order survives pipelining — while a sender task
        writes replies in the same order as their requests.  The reply
        queue is bounded by ``config.pipeline``: a client that fires
        frames faster than they resolve eventually stalls the reader,
        and TCP flow control carries the backpressure home.
        """
        loop = asyncio.get_running_loop()
        conn = _ConnState()
        replies: asyncio.Queue = asyncio.Queue(maxsize=self.config.pipeline)
        sender = loop.create_task(self._reply_sender(replies, send))
        try:
            while True:
                item = await self._read_frame(reader)
                if item is None:
                    break
                kind, payload = item
                if kind == "fatal":
                    self.counters.bump("protocol_errors")
                    await replies.put(
                        ("json", _ready(error_frame(payload)))
                    )
                    break
                self.counters.bump("frames")
                proto = "bin" if kind == "bin" else "json"
                try:
                    finish = await self._stage(conn, kind, payload)
                except ProtocolError as exc:
                    self.counters.bump("protocol_errors")
                    finish = _ready(error_frame(str(exc)))
                except (KeyError, ValueError, RuntimeError) as exc:
                    self.counters.bump("errors")
                    message = exc.args[0] if exc.args else str(exc)
                    finish = _ready(error_frame(str(message)))
                await replies.put((proto, finish))
        finally:
            await replies.put(None)
            await sender

    async def _reply_sender(self, replies: asyncio.Queue, send) -> None:
        """Write replies strictly in request order.

        Each queue item is ``(proto, awaitable)``; the awaitable
        produces the reply dict (feed/close block on their shard
        future).  A dead peer stops the writes but not the consumption:
        staged shard work still resolves, so nothing leaks.
        """
        broken = False
        while True:
            item = await replies.get()
            if item is None:
                return
            proto, finish = item
            try:
                reply = await finish
            except ProtocolError as exc:
                self.counters.bump("protocol_errors")
                reply = error_frame(str(exc))
            except (KeyError, ValueError, RuntimeError) as exc:
                self.counters.bump("errors")
                message = exc.args[0] if exc.args else str(exc)
                reply = error_frame(str(message))
            if broken:
                continue
            data = encode_frame(reply)
            try:
                await send(data)
            except (ConnectionResetError, BrokenPipeError, OSError):
                broken = True
            else:
                self.pool.metrics.record_wire(proto, bytes_out=len(data))

    async def _read_frame(self, reader):
        """One frame off the wire.

        Returns ``("json", line)``, ``("bin", (opcode, flags,
        payload))``, ``("fatal", message)`` on unrecoverable framing
        loss, or ``None`` at EOF.  v2 binary frames are detected by
        their magic byte — 0xA7 can never open a JSON line — so both
        protocol generations share one socket.
        """
        try:
            first = await reader.readexactly(1)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        if first[0] == BIN_MAGIC:
            try:
                header = first + await reader.readexactly(
                    BIN_HEADER.size - 1
                )
            except asyncio.IncompleteReadError:
                return None
            _magic, version, opcode, flags, length = BIN_HEADER.unpack(
                header
            )
            if version != BIN_VERSION:
                return "fatal", (
                    f"unsupported binary protocol version {version}"
                )
            if length > MAX_FRAME_BYTES:
                return "fatal", f"frame exceeds {MAX_FRAME_BYTES} bytes"
            try:
                payload = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
            self.pool.metrics.record_wire(
                "bin", frames_in=1, bytes_in=BIN_HEADER.size + length
            )
            return "bin", (opcode, flags, payload)
        if first == b"\n":
            return await self._read_frame(reader)
        try:
            line = first + await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return "fatal", f"frame exceeds {MAX_FRAME_BYTES} bytes"
        if not line.strip():
            return await self._read_frame(reader)
        self.pool.metrics.record_wire(
            "json", frames_in=1, bytes_in=len(line)
        )
        return "json", line

    async def _stage(self, conn: _ConnState, kind: str, payload):
        """Parse and admit one frame in read order; return the
        awaitable that produces its reply.

        Feed and close enter their shard's bounded queue *here*, so a
        backed-up shard stalls the reader (bounded memory), and two
        frames for one session can never reorder no matter how deep the
        client pipelines.
        """
        if kind == "bin":
            opcode, flags, data = payload
            if self.config.proto == "json":
                raise ProtocolError(
                    "binary frames are disabled (server runs "
                    "--proto json)"
                )
            return await self._stage_bin_feed(conn, opcode, flags, data)
        frame = parse_request(
            decode_frame(payload),
            max_chunk_steps=self.config.max_chunk_steps,
        )
        if isinstance(frame, FeedFrame):
            return await self._stage_feed(frame)
        if isinstance(frame, CloseFrame):
            return await self._stage_close(frame)
        if isinstance(frame, OpenFrame):
            # Opens run to completion at stage time: a pipelined burst
            # of open-then-feed must find the session registered when
            # the feed stages one frame later.
            return _ready(await self._handle_open(frame))
        if isinstance(frame, MetricsFrame):
            return self._handle_metrics(frame)
        return self._handle_stats(frame)

    def _session_of(self, session: str) -> tuple[int, int]:
        with self._sessions_lock:
            try:
                return self._sessions[session]
            except KeyError:
                raise KeyError(
                    f"unknown session id {session!r}"
                ) from None

    async def _enqueue_feed(
        self, session: str, shard: int, lanes, trace=None
    ) -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        await self._queues[shard].put(
            _Job(
                kind="feed",
                session=session,
                lanes=lanes,
                future=future,
                enqueued=time.perf_counter(),
                trace=trace,
            )
        )
        return future

    async def _finish_feed(
        self, session: str, future: asyncio.Future, extra: dict
    ) -> dict:
        summary = await future
        return ok_frame(
            "feed",
            session=session,
            start=summary.start,
            steps=summary.steps,
            hypers=summary.hypers,
            cost=summary.cost,
            cumulative_cost=summary.cumulative_cost,
            **extra,
        )

    async def _stage_feed(self, frame: FeedFrame):
        self.counters.bump("feeds")
        width, shard = self._session_of(frame.session)
        masks, count, encoding = frame.masks, frame.count, frame.encoding
        lanes = _EncodedChunk(
            "json",
            lambda: decode_mask_chunk(
                masks, count, width, encoding=encoding
            ),
        )
        future = await self._enqueue_feed(
            frame.session, shard, lanes, frame.trace
        )
        return self._finish_feed(frame.session, future, _echo(frame))

    async def _stage_bin_feed(
        self, conn: _ConnState, opcode: int, flags: int, data: bytes
    ):
        self.counters.bump("feeds")
        bframe = parse_bin_feed(
            opcode, flags, data,
            max_chunk_steps=self.config.max_chunk_steps,
        )
        width, shard = self._session_of(bframe.session)
        if bframe.interned:
            # Interned sections are small (first-seen rows plus an id
            # row) and ordering-critical — the global-arena append and
            # the id map must advance in frame order — so they resolve
            # at stage time, not in the drain executor.
            t0 = time.perf_counter()
            new_lanes, ids = bframe.interned_parts(width)
            idmap = conn.idmap(width)
            if bframe.base_epoch != len(idmap):
                raise ProtocolError(
                    f"interned feed base epoch {bframe.base_epoch} does "
                    f"not match the connection's table "
                    f"({len(idmap)} rows)"
                )
            if new_lanes.shape[0]:
                idmap.extend(arena_for(width).intern_rows(new_lanes))
            lanes = InternedChunk(width, idmap.translate(ids))
            self.pool.metrics.record_wire(
                "bin", decode_seconds=time.perf_counter() - t0
            )
        else:
            lanes = _EncodedChunk(
                "bin", lambda: bframe.raw_lanes(width)
            )
        future = await self._enqueue_feed(bframe.session, shard, lanes)
        return self._finish_feed(bframe.session, future, {})

    async def _stage_close(self, frame: CloseFrame):
        self.counters.bump("closes")
        _width, shard = self._session_of(frame.session)
        future = asyncio.get_running_loop().create_future()
        await self._queues[shard].put(
            _Job(
                kind="close",
                session=frame.session,
                future=future,
                enqueued=time.perf_counter(),
                trace=frame.trace,
            )
        )
        return self._finish_close(frame, future)

    async def _finish_close(
        self, frame: CloseFrame, future: asyncio.Future
    ) -> dict:
        run = await future
        with self._sessions_lock:
            self._sessions.pop(frame.session, None)
        return ok_frame(
            "close",
            session=frame.session,
            solver=run.solver,
            steps=run.schedule.n,
            hypers=run.schedule.r,
            cost=run.cost,
            **_echo(frame),
        )

    async def _handle_open(self, frame: OpenFrame) -> dict:
        self.counters.bump("opens")
        if len(self.pool) >= self.config.max_sessions:
            self.counters.bump("rejected_sessions")
            return error_frame(
                f"server full: {self.config.max_sessions} live sessions"
            )
        if frame.width > self.config.max_width:
            self.counters.bump("rejected_sessions")
            return error_frame(
                f"open.width {frame.width} exceeds the server limit "
                f"{self.config.max_width}"
            )
        history = max(
            int(frame.params.get("memory", 0) or 0),
            int(frame.params.get("k", 0) or 0),
        )
        if history > self.config.max_history:
            self.counters.bump("rejected_sessions")
            return error_frame(
                f"policy history {history} exceeds the server limit "
                f"{self.config.max_history}"
            )
        scheduler = policy_from_spec(frame.policy, frame.w, frame.params)
        universe = SwitchUniverse.of_size(frame.width)
        loop = asyncio.get_running_loop()
        t0 = time.perf_counter()
        sid = await loop.run_in_executor(
            self._executor,
            lambda: self.pool.open(
                scheduler, universe, frame.w, session_id=frame.session
            ),
        )
        shard = self.pool.shard_of(sid)
        self.tracer.record(
            "open",
            duration=time.perf_counter() - t0,
            trace=frame.trace,
            session=sid,
            shard=shard,
        )
        with self._sessions_lock:
            self._sessions[sid] = (frame.width, shard)
        reply = ok_frame(
            "open", session=sid, shard=shard, **_echo(frame)
        )
        if frame.proto == PROTO_BIN:
            # Negotiation: the client asked for wire protocol v2;
            # echoing proto=2 green-lights binary feed frames on this
            # connection.  A "--proto json" server answers 1 and the
            # client stays on JSON.  v1 clients never send the field
            # and never see it.
            reply["proto"] = (
                PROTO_BIN if self.config.proto == "auto" else PROTO_JSON
            )
        return reply

    async def _handle_stats(self, _frame: StatsFrame) -> dict:
        self.counters.bump("stats_calls")
        loop = asyncio.get_running_loop()
        pool_stats = await loop.run_in_executor(self._executor, self.pool.stats)
        return ok_frame(
            "stats",
            server=self.counters.snapshot(),
            uptime_s=time.monotonic() - self._started_mono,
            trace=self.tracer.snapshot(),
            **pool_stats,
        )

    async def _handle_metrics(self, _frame: MetricsFrame) -> dict:
        """Full telemetry dump: labeled histogram wire snapshots, the
        JSON summary snapshot, and the Prometheus text exposition —
        everything ``GET /metrics`` serves, over the frame protocol."""
        self.counters.bump("metrics_calls")
        loop = asyncio.get_running_loop()

        def build():
            return (
                self.metrics_snapshot(),
                {
                    name: fam.to_wire()
                    for name, fam in self.pool.merged_histograms().items()
                },
                self.exposition(),
            )

        snapshot, wire, text = await loop.run_in_executor(
            self._executor, build
        )
        return ok_frame(
            "metrics",
            metrics=snapshot,
            histograms=wire,
            exposition=text,
        )

    # -- telemetry plane ---------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """One JSON-safe snapshot of everything: server counters,
        uptime, tracer state, recent slow spans, pool stats (engine
        counters, merged histogram summaries, per-shard rows)."""
        return {
            "server": self.counters.snapshot(),
            "uptime_s": time.monotonic() - self._started_mono,
            "trace": self.tracer.snapshot(),
            "slow": [e.to_dict() for e in self.tracer.slow_events(32)],
            **self.pool.stats(),
        }

    def exposition(self) -> str:
        """Prometheus text of the full labeled state (see obs.expo)."""
        server = self.counters.snapshot()
        engine = self.pool.metrics.snapshot()
        trace = self.tracer.snapshot()
        with self._sessions_lock:
            occupancy: dict[int, int] = {}
            for _width, shard in self._sessions.values():
                occupancy[shard] = occupancy.get(shard, 0) + 1
        counters = {
            f"server_{name}_total": value
            for name, value in server.items()
        }
        counters.update({
            "engine_requests_total": engine["requests"],
            "engine_solved_total": engine["solved"],
            "engine_cache_hits_total": engine["cache_hits"],
            "engine_errors_total": engine["errors"],
            "engine_timeouts_total": engine["timeouts"],
            "engine_batches_total": engine["batches"],
            "stream_sessions_total": engine["stream"]["sessions"],
            "stream_closed_total": engine["stream"]["closed"],
            "stream_steps_total": engine["stream"]["steps"],
            "stream_hypers_total": engine["stream"]["hypers"],
            "stream_fused_sessions_total": engine["stream"]["fused_sessions"],
            "stream_fused_fallback_total": engine["stream"]["fused_fallback"],
            "stream_replay_epochs_total": engine["stream"]["replay_epochs"],
            "stream_replay_triggers_total": (
                engine["stream"]["replay_triggers"]
            ),
            "trace_spans_total": trace["recorded"],
            "trace_slow_spans_total": trace["slow"],
        })
        wire = engine.get("wire", {})
        counters.update({
            "wire_frames_in_total": [
                ({"proto": proto}, series["frames_in"])
                for proto, series in wire.items()
            ],
            "wire_bytes_in_total": [
                ({"proto": proto}, series["bytes_in"])
                for proto, series in wire.items()
            ],
            "wire_bytes_out_total": [
                ({"proto": proto}, series["bytes_out"])
                for proto, series in wire.items()
            ],
            "wire_decode_seconds_total": [
                ({"proto": proto}, series["decode_s"])
                for proto, series in wire.items()
            ],
        })
        portfolio = engine.get("portfolio", {})
        decisions = portfolio.get("decisions", {})
        counters.update({
            # Labeled per chosen solver once decisions flow; the
            # unlabeled zero row keeps the series present (and the CI
            # boot-check green) on an idle server.
            "portfolio_decisions_total": (
                [({"solver": name}, count)
                 for name, count in sorted(decisions.items())]
                or [({}, 0)]
            ),
            "portfolio_races_total": portfolio.get("races", 0),
            "portfolio_explores_total": portfolio.get("explores", 0),
            "portfolio_records_total": portfolio.get("records", 0),
        })
        gauges = {
            "uptime_seconds": time.monotonic() - self._started_mono,
            "sessions": sum(occupancy.values()),
            "shard_sessions": [
                ({"shard": str(shard)}, occupancy.get(shard, 0))
                for shard in range(self.config.shards)
            ],
        }
        histograms = {
            name: fam.to_wire()
            for name, fam in self.pool.merged_histograms().items()
        }
        return render_exposition(
            counters=counters, gauges=gauges, histograms=histograms
        )

    async def _stats_reporter(self) -> None:
        """Periodic one-line stderr report (``--stats-interval``)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.stats_interval)
            try:
                stats = await loop.run_in_executor(
                    self._executor, self.pool.stats
                )
            except RuntimeError:  # executor shutting down
                return
            stream = stats["engine"]["stream"]
            feed = stats["histograms"]["feed_latency_seconds"]
            drain = stats["histograms"]["drain_cycle_seconds"]
            server = self.counters.snapshot()
            print(
                f"[repro.serve] up {time.monotonic() - self._started_mono:.0f}s"
                f" sessions={stats['sessions']}"
                f" frames={server['frames']}"
                f" steps={stream['steps']}"
                f" steps/s={stream['steps_per_s']:.0f}"
                f" drain p50/p99="
                f"{drain['p50'] * 1e3:.2f}/{drain['p99'] * 1e3:.2f}ms"
                f" feed p50/p99="
                f"{feed['p50'] * 1e3:.2f}/{feed['p99'] * 1e3:.2f}ms"
                f" slow={self.tracer.snapshot()['slow']}",
                file=sys.stderr,
                flush=True,
            )

    # -- stdin mode --------------------------------------------------------

    async def serve_stdin(self) -> None:
        """Speak the frame protocol over stdin/stdout (POSIX pipes).

        The same pump as TCP connections — ``repro serve --stdin``
        turns any line-oriented parent process into a client, and since
        PR 7 the pipe accepts v2 binary frames too (replies are always
        JSON lines either way).
        """
        import sys

        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=MAX_FRAME_BYTES + 2)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        out = sys.stdout.buffer

        async def send(data: bytes) -> None:
            out.write(data)
            out.flush()

        await self._pump(reader, send)


class ServerThread:
    """A :class:`StreamServer` on a background thread with its own loop.

    The synchronous harness tests, the load generator and the
    ``serve-bench`` CLI all need a live loopback server without turning
    themselves into asyncio programs::

        with ServerThread(ServeConfig(shards=4)) as host_port:
            client = ServeClient(*host_port)
            ...
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self.server: StreamServer | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-thread", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        self.server = StreamServer(self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def start(self) -> tuple[str, int]:
        """Start the thread; block until the listener is bound."""
        self._thread.start()
        self._started.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.server is None or self.server._server is None:
            raise RuntimeError("server failed to start")
        return self.server.address

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
