"""Asyncio front door: the shard pool as a long-running network service.

:class:`StreamServer` listens on TCP (and/or speaks the same protocol
over stdin/stdout) and turns newline-delimited JSON frames
(:mod:`repro.serve.protocol`) into shard-pool calls:

* **admission control** — ``open`` is rejected once ``max_sessions``
  live sessions exist; ``feed`` frames larger than ``max_chunk_steps``
  are rejected at the parse boundary; oversized lines kill only the
  offending connection;
* **per-shard batching** — ``feed`` frames do not hit the pool one by
  one: each lands in the owning shard's bounded queue, and a drainer
  task per shard collects everything queued (one chunk per session,
  FIFO order preserved) into **one**
  :meth:`~repro.serve.shard.ShardPool.feed_shard` call per drain
  cycle.  Under load, frames that arrive while a cycle runs coalesce
  into the next one — the batch size adapts to the backlog;
* **backpressure** — the queues are bounded (``queue_depth``); when a
  shard falls behind, ``feed`` frames wait in the reader coroutine,
  TCP flow control propagates the stall to the client, and memory
  stays bounded;
* **ordering** — ``close`` travels through the same shard queue as a
  barrier, so a session's pending feeds are always served before its
  run is finished and validated.

Sessions are server-global (not per-connection): any connection may
feed any open session, and a dropped connection leaves its sessions
live for a reconnect.  Per-session decisions come out bit-identical to
a single-threaded :class:`~repro.engine.stream.StreamHub` replay —
sharding and batching change the schedule of the work, never its
answers (``tests/test_serve_server.py`` pins 256 concurrent sessions
against the single-hub oracle).
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.switches import SwitchUniverse
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    CloseFrame,
    FeedFrame,
    OpenFrame,
    ProtocolError,
    StatsFrame,
    decode_frame,
    decode_mask_chunk,
    encode_frame,
    error_frame,
    ok_frame,
    parse_request,
    policy_from_spec,
)
from repro.serve.shard import ShardPool

__all__ = ["ServeConfig", "ServerThread", "StreamServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving process."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is in .address)
    shards: int = 1
    shard_procs: bool = False
    max_sessions: int = 4096
    max_chunk_steps: int = 65536
    queue_depth: int = 64
    #: Per-session state is O(width · history); without these caps one
    #: `open` frame could allocate gigabytes of cursor state before
    #: max_sessions ever mattered.
    max_width: int = 65536
    max_history: int = 65536

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if self.max_chunk_steps < 1:
            raise ValueError("max_chunk_steps must be at least 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.max_width < 1:
            raise ValueError("max_width must be at least 1")
        if self.max_history < 1:
            raise ValueError("max_history must be at least 1")


@dataclass
class _Job:
    """One queued shard operation (a feed chunk or a close barrier)."""

    kind: str  # "feed" | "close"
    session: str
    lanes: object = None
    future: asyncio.Future = None


class _ShardQueue:
    """Bounded FIFO the drainer collects cycles from.

    ``take_cycle`` greedily pops queued jobs in order, stopping at the
    first job whose session already appears in the cycle — so a cycle
    carries at most one chunk per session (``feed_many``'s contract)
    and per-session order is never reordered across cycles.
    """

    def __init__(self, depth: int):
        self._depth = depth
        self._jobs: deque[_Job] = deque()
        self._cond = asyncio.Condition()

    async def put(self, job: _Job) -> None:
        async with self._cond:
            while len(self._jobs) >= self._depth:
                await self._cond.wait()
            self._jobs.append(job)
            self._cond.notify_all()

    async def take_cycle(self) -> tuple[dict[str, _Job], list[_Job]]:
        """Wait for work; return (feeds by session, closes in order)."""
        async with self._cond:
            while not self._jobs:
                await self._cond.wait()
            feeds: dict[str, _Job] = {}
            closes: list[_Job] = []
            seen: set[str] = set()
            while self._jobs:
                job = self._jobs[0]
                if job.session in seen:
                    break
                seen.add(job.session)
                self._jobs.popleft()
                if job.kind == "feed":
                    feeds[job.session] = job
                else:
                    closes.append(job)
            self._cond.notify_all()
            return feeds, closes


@dataclass
class _ServerCounters:
    """Operator-facing request accounting of one server."""

    connections: int = 0
    frames: int = 0
    opens: int = 0
    feeds: int = 0
    closes: int = 0
    stats_calls: int = 0
    protocol_errors: int = 0
    rejected_sessions: int = 0
    errors: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, name: str, by: int = 1) -> None:
        with self.lock:
            setattr(self, name, getattr(self, name) + by)

    def snapshot(self) -> dict:
        with self.lock:
            return {
                "connections": self.connections,
                "frames": self.frames,
                "opens": self.opens,
                "feeds": self.feeds,
                "closes": self.closes,
                "stats_calls": self.stats_calls,
                "protocol_errors": self.protocol_errors,
                "rejected_sessions": self.rejected_sessions,
                "errors": self.errors,
            }


class StreamServer:
    """The shard pool behind a TCP/stdin frame loop.

    Build, ``await start()``, then either let the asyncio server accept
    TCP clients or pump stdin through :meth:`serve_stdin`; ``await
    stop()`` tears down drainers, listeners and (if owned) the pool.
    Tests and the load generator run the whole thing on a background
    thread via :class:`ServerThread`.
    """

    def __init__(
        self, config: ServeConfig | None = None, *, pool: ShardPool | None = None
    ):
        self.config = config if config is not None else ServeConfig()
        self._own_pool = pool is None
        self.pool = (
            pool
            if pool is not None
            else ShardPool(self.config.shards, procs=self.config.shard_procs)
        )
        if self.pool.shards != self.config.shards:
            raise ValueError("pool shard count disagrees with the config")
        self.counters = _ServerCounters()
        #: session id -> (universe width, shard) for feed decoding.
        self._sessions: dict[str, tuple[int, int]] = {}
        self._sessions_lock = threading.Lock()
        self._queues = [
            _ShardQueue(self.config.queue_depth)
            for _ in range(self.config.shards)
        ]
        self._drainers: list[asyncio.Task] = []
        self._server: asyncio.AbstractServer | None = None
        self._writers: set = set()  # live client connections
        # Shard calls block (locks, pipes, NumPy); they run on this
        # executor so the event loop keeps accepting frames.  One
        # worker per shard plus one for open/close/stats traffic.
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.shards + 1, thread_name_prefix="serve"
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, listen: bool = True) -> None:
        """Start drainers (and the TCP listener unless ``listen=False``)."""
        loop = asyncio.get_running_loop()
        self._drainers = [
            loop.create_task(self._drain(shard))
            for shard in range(self.config.shards)
        ]
        if listen:
            self._server = await asyncio.start_server(
                self._client_loop,
                self.config.host,
                self.config.port,
                limit=MAX_FRAME_BYTES + 2,
            )

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) of the TCP listener."""
        if self._server is None:
            raise RuntimeError("server is not listening")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Stop listening, cancel drainers, close the owned pool.

        Live client connections are closed first: from Python 3.12.1
        ``Server.wait_closed()`` waits for every connection handler to
        finish, so an idle client would otherwise stall the shutdown
        forever.
        """
        for writer in tuple(self._writers):
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._drainers:
            task.cancel()
        for task in self._drainers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._drainers = []
        self._executor.shutdown(wait=True)
        if self._own_pool:
            self.pool.close()

    # -- drainers ----------------------------------------------------------

    async def _drain(self, shard: int) -> None:
        """Forever: collect one cycle, run it, resolve its futures."""
        loop = asyncio.get_running_loop()
        queue = self._queues[shard]
        while True:
            feeds, closes = await queue.take_cycle()
            # A feed can race a close issued on another connection; a
            # session gone by its drain cycle fails alone instead of
            # poisoning the whole batched feed_many call.
            for sid in [s for s in feeds if s not in self.pool]:
                job = feeds.pop(sid)
                if not job.future.done():
                    job.future.set_exception(
                        KeyError(f"unknown session id {sid!r}")
                    )
            if feeds:
                chunks = {sid: job.lanes for sid, job in feeds.items()}
                try:
                    summaries = await loop.run_in_executor(
                        self._executor, self.pool.feed_shard, shard, chunks
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    for job in feeds.values():
                        if not job.future.done():
                            job.future.set_exception(exc)
                else:
                    for sid, job in feeds.items():
                        if not job.future.done():
                            job.future.set_result(summaries[sid])
            for job in closes:
                try:
                    run = await loop.run_in_executor(
                        self._executor, self.pool.finish, job.session
                    )
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    if not job.future.done():
                        job.future.set_exception(exc)
                else:
                    if not job.future.done():
                        job.future.set_result(run)

    # -- frame handling ----------------------------------------------------

    async def _client_loop(self, reader, writer) -> None:
        """One connection: read frames, reply frames, never crash."""
        self.counters.bump("connections")
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized frame: unrecoverable framing loss
                    self.counters.bump("protocol_errors")
                    writer.write(encode_frame(error_frame(
                        f"frame exceeds {MAX_FRAME_BYTES} bytes"
                    )))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.counters.bump("frames")
                reply = await self._handle_line(line)
                writer.write(encode_frame(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        try:
            frame = parse_request(
                decode_frame(line),
                max_chunk_steps=self.config.max_chunk_steps,
            )
        except ProtocolError as exc:
            self.counters.bump("protocol_errors")
            return error_frame(str(exc))
        try:
            if isinstance(frame, OpenFrame):
                return await self._handle_open(frame)
            if isinstance(frame, FeedFrame):
                return await self._handle_feed(frame)
            if isinstance(frame, CloseFrame):
                return await self._handle_close(frame)
            return await self._handle_stats(frame)
        except ProtocolError as exc:
            self.counters.bump("protocol_errors")
            return error_frame(str(exc))
        except (KeyError, ValueError, RuntimeError) as exc:
            self.counters.bump("errors")
            message = exc.args[0] if exc.args else str(exc)
            return error_frame(str(message))

    async def _handle_open(self, frame: OpenFrame) -> dict:
        self.counters.bump("opens")
        if len(self.pool) >= self.config.max_sessions:
            self.counters.bump("rejected_sessions")
            return error_frame(
                f"server full: {self.config.max_sessions} live sessions"
            )
        if frame.width > self.config.max_width:
            self.counters.bump("rejected_sessions")
            return error_frame(
                f"open.width {frame.width} exceeds the server limit "
                f"{self.config.max_width}"
            )
        history = max(
            int(frame.params.get("memory", 0) or 0),
            int(frame.params.get("k", 0) or 0),
        )
        if history > self.config.max_history:
            self.counters.bump("rejected_sessions")
            return error_frame(
                f"policy history {history} exceeds the server limit "
                f"{self.config.max_history}"
            )
        scheduler = policy_from_spec(frame.policy, frame.w, frame.params)
        universe = SwitchUniverse.of_size(frame.width)
        loop = asyncio.get_running_loop()
        sid = await loop.run_in_executor(
            self._executor,
            lambda: self.pool.open(
                scheduler, universe, frame.w, session_id=frame.session
            ),
        )
        shard = self.pool.shard_of(sid)
        with self._sessions_lock:
            self._sessions[sid] = (frame.width, shard)
        return ok_frame("open", session=sid, shard=shard)

    async def _handle_feed(self, frame: FeedFrame) -> dict:
        self.counters.bump("feeds")
        with self._sessions_lock:
            if frame.session not in self._sessions:
                raise KeyError(f"unknown session id {frame.session!r}")
            width, shard = self._sessions[frame.session]
        lanes = decode_mask_chunk(
            frame.masks, frame.count, width, encoding=frame.encoding
        )
        future = asyncio.get_running_loop().create_future()
        await self._queues[shard].put(
            _Job(kind="feed", session=frame.session, lanes=lanes, future=future)
        )
        summary = await future
        return ok_frame(
            "feed",
            session=frame.session,
            start=summary.start,
            steps=summary.steps,
            hypers=summary.hypers,
            cost=summary.cost,
            cumulative_cost=summary.cumulative_cost,
        )

    async def _handle_close(self, frame: CloseFrame) -> dict:
        self.counters.bump("closes")
        with self._sessions_lock:
            if frame.session not in self._sessions:
                raise KeyError(f"unknown session id {frame.session!r}")
            _width, shard = self._sessions[frame.session]
        future = asyncio.get_running_loop().create_future()
        await self._queues[shard].put(
            _Job(kind="close", session=frame.session, future=future)
        )
        run = await future
        with self._sessions_lock:
            self._sessions.pop(frame.session, None)
        return ok_frame(
            "close",
            session=frame.session,
            solver=run.solver,
            steps=run.schedule.n,
            hypers=run.schedule.r,
            cost=run.cost,
        )

    async def _handle_stats(self, _frame: StatsFrame) -> dict:
        self.counters.bump("stats_calls")
        loop = asyncio.get_running_loop()
        pool_stats = await loop.run_in_executor(self._executor, self.pool.stats)
        return ok_frame(
            "stats", server=self.counters.snapshot(), **pool_stats
        )

    # -- stdin mode --------------------------------------------------------

    async def serve_stdin(self) -> None:
        """Speak the frame protocol over stdin/stdout (POSIX pipes).

        The same handler as TCP connections — ``repro serve --stdin``
        turns any line-oriented parent process into a client.
        """
        import sys

        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=MAX_FRAME_BYTES + 2)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                self.counters.bump("protocol_errors")
                sys.stdout.write(
                    encode_frame(error_frame(
                        f"frame exceeds {MAX_FRAME_BYTES} bytes"
                    )).decode()
                )
                sys.stdout.flush()
                break
            if not line:
                break
            if not line.strip():
                continue
            self.counters.bump("frames")
            reply = await self._handle_line(line)
            sys.stdout.write(encode_frame(reply).decode())
            sys.stdout.flush()


class ServerThread:
    """A :class:`StreamServer` on a background thread with its own loop.

    The synchronous harness tests, the load generator and the
    ``serve-bench`` CLI all need a live loopback server without turning
    themselves into asyncio programs::

        with ServerThread(ServeConfig(shards=4)) as host_port:
            client = ServeClient(*host_port)
            ...
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self.server: StreamServer | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-thread", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._error = exc
            self._started.set()

    async def _main(self) -> None:
        self.server = StreamServer(self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def start(self) -> tuple[str, int]:
        """Start the thread; block until the listener is bound."""
        self._thread.start()
        self._started.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if self.server is None or self.server._server is None:
            raise RuntimeError("server failed to start")
        return self.server.address

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
