"""Sharded session pools: many :class:`StreamHub` workers under one roof.

A single :class:`~repro.engine.stream.StreamHub` advances sessions back
to back in one thread.  Sessions are independent, so the serving layer
hash-partitions them across a pool of *shards*, each wrapping one hub:

* **thread shards** (default) keep every hub in-process behind a lock;
  NumPy releases the GIL on large lane chunks, so concurrent
  ``feed_many`` calls across shards overlap on multicore machines with
  zero serialization cost;
* **process shards** (``procs=True``) give each hub its own
  interpreter — true parallelism for Python-bound workloads.  Lane
  chunks cross the process boundary pickled, or — above the same
  threshold the batch engine uses — through one
  :mod:`multiprocessing.shared_memory` segment per drain cycle
  (the existing zero-copy fan-out, reused; both sides of the trade
  land in the pool metrics as bytes shipped vs. shared).

Placement is **decision-free**: a session's shard is
``crc32(session_id) % shards`` (stable across runs and processes), and
every session runs its own independent cursor state, so per-session
costs are bit-identical no matter how many shards serve the fleet —
``tests/test_serve_shard.py`` pins a pool of any shape against a single
hub.  Aggregate accounting (sessions, steps, hypers, wall time) is
recorded parent-side into one shared
:class:`~repro.engine.metrics.EngineMetrics`, so the operator report
looks the same whether the fleet runs on one hub or sixteen shards.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import count
from multiprocessing import shared_memory

import numpy as np

from repro.core.switches import SwitchUniverse
from repro.engine.batch import SHARED_LANES_MIN_BYTES, _attach_shared
from repro.engine.intern import InternedChunk, arena_for, arena_stats
from repro.engine.metrics import DETERMINISTIC_FAMILIES, EngineMetrics
from repro.engine.stream import StreamBatch, StreamHub
from repro.obs.histogram import HistogramFamily
from repro.solvers.online import OnlineRun

__all__ = ["BatchSummary", "ShardPool", "shard_index"]


def shard_index(session_id: str, shards: int) -> int:
    """Stable hash placement (``hash()`` is salted per process; crc32
    is not, so placement survives restarts and crosses processes)."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return zlib.crc32(session_id.encode()) % shards


@dataclass(frozen=True)
class BatchSummary:
    """Wire-sized view of one :class:`StreamBatch` (no per-step arrays;
    what a reply frame or a cross-process pipe actually needs)."""

    start: int
    steps: int
    hypers: int
    cost: float
    cumulative_cost: float


def _summarize(batch: StreamBatch) -> BatchSummary:
    return BatchSummary(
        start=batch.start,
        steps=batch.steps,
        hypers=batch.hypers,
        cost=batch.cost,
        cumulative_cost=batch.cumulative_cost,
    )


# ---------------------------------------------------------------------------
# Shared-memory lane transport (process shards)
# ---------------------------------------------------------------------------


class _SharedChunks:
    """One drain cycle's lane chunks in a single shared segment.

    Pickles as the segment name plus per-session (offset, shape)
    descriptors; the worker maps the segment once and slices per-session
    views (sessions copy what they keep, so the parent may unlink as
    soon as the feed call returns).
    """

    __slots__ = ("name", "layout")

    def __init__(self, name: str, layout):
        self.name = name
        self.layout = layout  # [(sid, offset_bytes, C, L)]

    @classmethod
    def publish(cls, chunks: dict[str, np.ndarray]):
        """Copy the chunks into a fresh segment; returns (handle, shm)."""
        total = sum(lanes.nbytes for lanes in chunks.values())
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        layout = []
        offset = 0
        for sid, lanes in chunks.items():
            C, L = lanes.shape
            view = np.ndarray((C, L), dtype=np.uint64, buffer=shm.buf,
                              offset=offset)
            view[:] = lanes
            layout.append((sid, offset, C, L))
            offset += lanes.nbytes
        return cls(shm.name, layout), shm

    def materialize(self):
        """Worker side: map the segment, slice per-session views."""
        shm = _attach_shared(self.name)
        chunks = {
            sid: np.ndarray((C, L), dtype=np.uint64, buffer=shm.buf,
                            offset=offset)
            for sid, offset, C, L in self.layout
        }
        return chunks, shm


# ---------------------------------------------------------------------------
# Shard workers
# ---------------------------------------------------------------------------


class _ThreadShard:
    """One in-process hub behind a lock (drainers and CLI paths may
    touch different shards concurrently, never one shard twice)."""

    kind = "thread"

    def __init__(self):
        # The shard hub keeps its own private metrics (the pool
        # aggregates parent-side so thread and process shards report
        # identically) and drops finished runs — a serving process
        # closing sessions forever must not retain them.
        self.hub = StreamHub(metrics=EngineMetrics(), retain_runs=False)
        self.lock = threading.Lock()

    def open(self, scheduler, universe, w, session_id):
        with self.lock:
            return self.hub.open(
                scheduler, universe, w, session_id=session_id
            )

    def feed_many(self, chunks):
        """One drain cycle: summaries plus the hub's fused/fallback
        session counts for that cycle (the pool re-records them in the
        parent metrics so thread and process shards report alike)."""
        with self.lock:
            batches = self.hub.feed_many(chunks)
            fused = self.hub.last_fused
        return (
            {sid: _summarize(batch) for sid, batch in batches.items()},
            fused,
        )

    def finish(self, session_id) -> OnlineRun:
        with self.lock:
            return self.hub.finish(session_id)

    def hist_wire(self) -> dict:
        """Mergeable snapshots of the deterministic histogram families
        this shard's hub recorded (chunk steps, session cost/steps)."""
        with self.lock:
            return self.hub.metrics.hist_wire(DETERMINISTIC_FAMILIES)

    def close(self):
        pass


def _shard_worker(conn):  # pragma: no cover - exercised in a child process
    """Process-shard main loop: one hub, commands over a pipe."""
    hub = StreamHub(metrics=EngineMetrics(), retain_runs=False)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "open":
                _op, scheduler, universe, w, session_id = msg
                conn.send(("ok", hub.open(
                    scheduler, universe, w, session_id=session_id
                )))
            elif op == "feed_many":
                _op, chunks, interned, deltas = msg
                # Extend the replica arenas *before* any chunk resolves:
                # the parent ships exactly the rows appended since this
                # shard's last synced epoch (rows inherited on fork
                # overlap the first delta and are skipped).
                for width, (upto, rows) in deltas.items():
                    arena_for(width).extend_to(upto, rows)
                shm = None
                if isinstance(chunks, _SharedChunks):
                    chunks, shm = chunks.materialize()
                if interned:
                    chunks = {**chunks, **interned}
                try:
                    batches = hub.feed_many(chunks)
                finally:
                    if shm is not None:
                        shm.close()
                conn.send(("ok", (
                    {
                        sid: _summarize(batch)
                        for sid, batch in batches.items()
                    },
                    hub.last_fused,
                )))
            elif op == "finish":
                conn.send(("ok", hub.finish(msg[1])))
            elif op == "metrics":
                conn.send(
                    ("ok", hub.metrics.hist_wire(DETERMINISTIC_FAMILIES))
                )
            elif op == "stop":
                conn.send(("ok", None))
                break
            else:
                conn.send(("err", "ValueError", f"unknown shard op {op!r}"))
        except Exception as exc:  # noqa: BLE001 - process boundary
            conn.send(("err", type(exc).__name__, str(exc)))
    conn.close()


_ERROR_TYPES = {
    "ValueError": ValueError,
    "KeyError": KeyError,
    "RuntimeError": RuntimeError,
}


class _ProcShard:
    """One hub in a child process, commands over a duplex pipe."""

    kind = "proc"

    def __init__(self):
        parent, child = multiprocessing.Pipe()
        self._conn = parent
        self._proc = multiprocessing.Process(
            target=_shard_worker, args=(child,), daemon=True
        )
        self._proc.start()
        child.close()
        self.lock = threading.Lock()
        #: width -> highest global-arena epoch this worker's replica
        #: has been extended to (per-shard calls are serialized — one
        #: drainer per shard — so read-then-ship is race-free).
        self.synced: dict[int, int] = {}

    def _call(self, *msg):
        with self.lock:
            self._conn.send(msg)
            reply = self._conn.recv()
        if reply[0] == "ok":
            return reply[1]
        _tag, name, text = reply
        raise _ERROR_TYPES.get(name, RuntimeError)(text)

    def open(self, scheduler, universe, w, session_id):
        return self._call("open", scheduler, universe, w, session_id)

    def feed_many(self, chunks, interned=None, deltas=None):
        return self._call(
            "feed_many", chunks, interned or {}, deltas or {}
        )

    def finish(self, session_id) -> OnlineRun:
        return self._call("finish", session_id)

    def hist_wire(self) -> dict:
        """Deterministic-family snapshots shipped over the pipe."""
        return self._call("metrics")

    def close(self):
        with self.lock:
            if self._proc.is_alive():
                try:
                    self._conn.send(("stop",))
                    self._conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            self._conn.close()
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - stuck worker
            self._proc.terminate()
            self._proc.join(timeout=5)


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class ShardPool:
    """Sessions hash-partitioned across a pool of hub shards.

    The drop-in sharded counterpart of a single
    :class:`~repro.engine.stream.StreamHub`: ``open`` / ``feed_many`` /
    ``finish`` keep their shapes, chunks are partitioned by the owning
    shard and advanced concurrently (one executor worker per shard),
    and per-session results are bit-identical to the single-hub replay
    regardless of ``shards``/``procs``.

    Parameters
    ----------
    shards:
        Number of hub workers.
    procs:
        ``True`` runs each shard in its own process (pipes + optional
        shared-memory lane transport); default is in-process threads.
    metrics:
        Parent-side :class:`EngineMetrics` all aggregate streaming
        counters land in (created when omitted).
    shared_lanes:
        Process-shard lane transport: ``True`` always ships drain
        cycles through shared memory, ``False`` always pickles,
        ``None`` (auto) shares cycles of at least
        :data:`~repro.engine.batch.SHARED_LANES_MIN_BYTES`.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder`; the pool
        records parent-side ``drain`` and ``close`` spans.
    """

    def __init__(
        self,
        shards: int = 1,
        *,
        procs: bool = False,
        metrics: EngineMetrics | None = None,
        shared_lanes: bool | None = None,
        tracer=None,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shards = shards
        self.procs = procs
        self.shared_lanes = shared_lanes
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self._shards = [
            _ProcShard() if procs else _ThreadShard() for _ in range(shards)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="shard"
        )
        self._placement: dict[str, int] = {}  # live session -> shard
        self._auto_id = count()
        self._lock = threading.Lock()
        self._closed = False

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._placement)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._placement

    def session_ids(self) -> tuple[str, ...]:
        return tuple(self._placement)

    def shard_of(self, session_id: str) -> int:
        """The shard serving a live session."""
        try:
            return self._placement[session_id]
        except KeyError:
            raise KeyError(f"unknown session id {session_id!r}") from None

    # -- session management ------------------------------------------------

    def open(
        self,
        scheduler,
        universe: SwitchUniverse,
        w: float,
        *,
        session_id: str | None = None,
    ) -> str:
        """Open a session on its hash-placed shard; returns the id.

        Unlike a retaining :class:`StreamHub`, closed ids become
        reusable immediately — a serving process sees the same user
        reconnect, and reserving every closed id forever would grow
        without bound.
        """
        with self._lock:
            if session_id is None:
                session_id = f"s{next(self._auto_id)}"
                while session_id in self._placement:
                    session_id = f"s{next(self._auto_id)}"
            elif session_id in self._placement:
                raise ValueError(f"session id {session_id!r} already in use")
            shard = shard_index(session_id, self.shards)
            # Reserve before the (possibly cross-process) open so two
            # racing opens of one id cannot both reach the shard.
            self._placement[session_id] = shard
        try:
            self._shards[shard].open(scheduler, universe, w, session_id)
        except BaseException:
            with self._lock:
                self._placement.pop(session_id, None)
            raise
        self.metrics.record_stream_open()
        return session_id

    # -- serving -----------------------------------------------------------

    def feed_shard(
        self, shard: int, chunks: dict[str, np.ndarray]
    ) -> dict[str, BatchSummary]:
        """Advance one shard by one batched drain cycle.

        ``chunks`` must all belong to ``shard`` (the server's per-shard
        queues guarantee it; :meth:`feed_many` partitions for you).
        The whole cycle crosses to a process shard as a single message —
        pickled, or through one shared-memory segment when the lane
        bytes clear the batch engine's threshold.
        """
        if not chunks:
            return {}
        start = time.perf_counter()
        out = self._feed_shard(shard, chunks)
        elapsed = time.perf_counter() - start
        steps = sum(s.steps for s in out.values())
        self.metrics.record_stream(
            steps=steps,
            hypers=sum(s.hypers for s in out.values()),
            seconds=elapsed,
            drain_shard=shard,
        )
        if self.tracer is not None:
            self.tracer.record(
                "drain",
                duration=elapsed,
                shard=shard,
                sessions=len(out),
                steps=steps,
            )
        return out

    def _feed_shard(self, shard, chunks) -> dict[str, BatchSummary]:
        """One shard drain cycle, no latency metrics (callers time
        themselves); the cycle's fused/fallback counts are folded into
        the pool metrics here, where both shard kinds converge."""
        worker = self._shards[shard]
        if worker.kind != "proc":
            out, fused = worker.feed_many(chunks)
        else:
            payload, interned, deltas, shm = self._pack_cycle(worker, chunks)
            try:
                out, fused = worker.feed_many(payload, interned, deltas)
            finally:
                if shm is not None:
                    shm.close()
                    shm.unlink()
        if fused[0] or fused[1]:
            self.metrics.record_fused(
                sessions=fused[0],
                fallback=fused[1],
                group_sizes=fused[2],
                epochs=fused[3],
                triggers=fused[4],
            )
        return out

    def _arena_deltas(self, worker, interned):
        """Rows the worker's replica arenas are missing for ``interned``.

        The ids in an :class:`InternedChunk` were minted at stage time,
        so every referenced row sits below the arena's *current* epoch;
        shipping ``snapshot_since(synced)`` therefore covers them all.
        Per-shard serialization (one drainer per shard) makes the
        read-advance of ``worker.synced`` race-free.
        """
        deltas = {}
        for width in {c.width for c in interned.values()}:
            synced = worker.synced.get(width, 0)
            upto, rows = arena_for(width).snapshot_since(synced)
            if upto > synced:
                deltas[width] = (upto, rows)
                worker.synced[width] = upto
        return deltas

    def _pack_cycle(self, worker, chunks):
        """Pick the pipe payload for one process-shard drain cycle.

        Returns ``(payload, interned, deltas, shm)``: the non-interned
        chunks (a dict or one :class:`_SharedChunks` handle), the
        interned chunks (ids only — the arena deltas carry any rows the
        replica is missing), and the shared segment to unlink, if any.
        """
        interned = {
            sid: chunk for sid, chunk in chunks.items()
            if isinstance(chunk, InternedChunk)
        }
        rest = {
            sid: chunk for sid, chunk in chunks.items()
            if sid not in interned
        }
        deltas = self._arena_deltas(worker, interned)
        if interned:
            self.metrics.record_shipment(shipped=(
                sum(c.ids.nbytes for c in interned.values())
                + sum(rows.nbytes for _upto, rows in deltas.values())
            ))
        if not rest:
            return {}, interned, deltas, None
        lane_chunks = {
            sid: np.ascontiguousarray(lanes, dtype=np.uint64)
            for sid, lanes in rest.items()
            if isinstance(lanes, np.ndarray) and lanes.ndim == 2
        }
        if len(lane_chunks) != len(rest):
            # Mixed mask-list input: pickle the lot (CLI convenience
            # path; the server always feeds decoded lanes).
            return rest, interned, deltas, None
        nbytes = sum(lanes.nbytes for lanes in lane_chunks.values())
        share = (
            self.shared_lanes
            if self.shared_lanes is not None
            else nbytes >= SHARED_LANES_MIN_BYTES
        )
        if not share:
            self.metrics.record_shipment(shipped=nbytes)
            return lane_chunks, interned, deltas, None
        try:
            handle, shm = _SharedChunks.publish(lane_chunks)
        except Exception:  # pragma: no cover - no /dev/shm etc.
            self.metrics.record_shipment(shipped=nbytes)
            return lane_chunks, interned, deltas, None
        self.metrics.record_shipment(
            shipped=len(pickle.dumps(handle, pickle.HIGHEST_PROTOCOL)),
            shared=nbytes,
        )
        return handle, interned, deltas, shm

    def feed_many(self, chunks) -> dict[str, BatchSummary]:
        """Serve one chunk per session, shards advanced concurrently.

        The cycle's *wall* time (not the sum of per-shard busy times)
        lands in the metrics, so the steps/s row reflects what
        sharding actually buys.
        """
        per_shard: dict[int, dict[str, object]] = {}
        for sid, masks in chunks.items():
            per_shard.setdefault(self.shard_of(sid), {})[sid] = masks
        if not per_shard:
            return {}
        start = time.perf_counter()
        if len(per_shard) == 1:
            ((shard, shard_chunks),) = per_shard.items()
            out = self._feed_shard(shard, shard_chunks)
        else:
            futures = [
                self._executor.submit(self._feed_shard, shard, shard_chunks)
                for shard, shard_chunks in per_shard.items()
            ]
            out = {}
            for future in futures:
                out.update(future.result())
        self.metrics.record_stream(
            steps=sum(s.steps for s in out.values()),
            hypers=sum(s.hypers for s in out.values()),
            seconds=time.perf_counter() - start,
        )
        return out

    # -- closing -----------------------------------------------------------

    def finish(self, session_id: str) -> OnlineRun:
        """Close one session (validated); the id becomes reusable."""
        shard = self.shard_of(session_id)
        run = self._shards[shard].finish(session_id)
        with self._lock:
            self._placement.pop(session_id, None)
        # Counter only: the shard's hub recorded the deterministic
        # cost/steps histograms where the session actually ran, so the
        # merged view counts every close exactly once.
        self.metrics.record_session_close()
        if self.tracer is not None:
            self.tracer.record(
                "close", session=session_id, shard=shard,
                steps=run.schedule.n,
            )
        return run

    def finish_all(self) -> dict[str, OnlineRun]:
        """Close every live session; returns id → validated run."""
        return {sid: self.finish(sid) for sid in self.session_ids()}

    def merged_histograms(self) -> dict[str, HistogramFamily]:
        """One labeled histogram view of the whole pool.

        Starts from the parent-side families (timing: drain cycles,
        feed latency) and folds in every shard's deterministic-family
        wire snapshot tagged ``shard=<i>`` — process shards ship theirs
        over the pipe.  The fixed bucket boundaries make the fold pure
        addition, so the aggregate of each deterministic family is
        bit-identical to what a single hub records for the same
        traffic, no matter the pool shape.
        """
        merged = {
            name: HistogramFamily.from_wire(wire)
            for name, wire in self.metrics.hist_wire().items()
        }
        for i, shard in enumerate(self._shards):
            for name, wire in shard.hist_wire().items():
                merged[name].merge_wire(wire, extra_labels={"shard": str(i)})
        return merged

    def stats(self) -> dict:
        """Aggregate snapshot: engine counters, merged histograms, and
        per-shard occupancy + drain-cycle latency quantiles."""
        with self._lock:
            occupancy = [0] * self.shards
            for shard in self._placement.values():
                occupancy[shard] += 1
        merged = self.merged_histograms()
        drain_by_shard = {
            labels.get("shard"): hist
            for labels, hist in merged["drain_cycle_seconds"].series()
        }
        shards = []
        for i in range(self.shards):
            row = {
                "shard": i,
                "kind": self._shards[i].kind,
                "sessions": occupancy[i],
            }
            drain = drain_by_shard.get(str(i))
            if drain is not None and drain.count:
                row["drain"] = drain.snapshot()
            shards.append(row)
        return {
            "engine": self.metrics.snapshot(),
            "histograms": {
                name: fam.snapshot() for name, fam in merged.items()
            },
            "shards": shards,
            "sessions": sum(occupancy),
            "arenas": arena_stats(),
        }

    def close(self) -> None:
        """Tear down shard workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardPool(shards={self.shards}, "
            f"kind={'proc' if self.procs else 'thread'}, "
            f"live={len(self._placement)})"
        )
