"""repro.serve — the streaming stack as a multi-user network service.

:mod:`repro.engine.stream` gave the online policies a multiplexing
:class:`~repro.engine.stream.StreamHub`; this package puts that hub
behind sockets and shards so many users can load it concurrently:

* :mod:`repro.serve.protocol` — the framed wire protocol
  (newline-delimited JSON control frames ``open``/``feed``/``close``/
  ``stats``; base64/hex lane-encoded mask chunks) plus encode/decode
  helpers shared by server and client;
* :mod:`repro.serve.shard` — :class:`ShardPool`: sessions
  hash-partitioned across hub shards (threads by default, processes
  with shared-memory lane transport on request), per-session results
  bit-identical to a single hub;
* :mod:`repro.serve.server` — :class:`StreamServer`: asyncio TCP +
  stdin front door with admission control, bounded per-shard queues
  (backpressure) and per-shard drain cycles that batch queued feeds
  into one ``feed_many`` call; :class:`ServerThread` runs it on a
  background thread for tests/benchmarks;
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  request/response client;
* :mod:`repro.serve.loadgen` — the loopback load generator behind
  ``repro serve-bench`` and benchmark E17.

Quickstart (loopback)::

    from repro.serve import ServeClient, ServeConfig, ServerThread

    with ServerThread(ServeConfig(shards=4)) as (host, port):
        with ServeClient(host, port) as client:
            sid = client.open(policy="rent_or_buy", width=96, w=96.0)
            client.feed(sid, [0b1011, 0b0011, 0b1000])
            print(client.close_session(sid).cost)
"""

from repro.serve.client import (
    CloseResult,
    FeedResult,
    ServeClient,
    ServeError,
)
from repro.serve.loadgen import LoadgenResult, drifting_masks, run_loadgen
from repro.serve.protocol import (
    CloseFrame,
    FeedFrame,
    OpenFrame,
    ProtocolError,
    StatsFrame,
    decode_frame,
    decode_mask_chunk,
    encode_frame,
    encode_mask_chunk,
    parse_request,
    policy_from_spec,
)
from repro.serve.server import ServeConfig, ServerThread, StreamServer
from repro.serve.shard import BatchSummary, ShardPool, shard_index

__all__ = [
    "BatchSummary",
    "CloseFrame",
    "CloseResult",
    "FeedFrame",
    "FeedResult",
    "LoadgenResult",
    "OpenFrame",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "ShardPool",
    "StatsFrame",
    "StreamServer",
    "decode_frame",
    "decode_mask_chunk",
    "drifting_masks",
    "encode_frame",
    "encode_mask_chunk",
    "parse_request",
    "policy_from_spec",
    "run_loadgen",
    "shard_index",
]
