"""Declarative solver registry with capability tags.

Before the engine existed, knowledge about *which* solver fits *which*
instance was duplicated ad hoc: :mod:`repro.solvers.auto` hard-coded
its candidate list, :mod:`repro.cli` imported individual solve
functions, and every experiment driver picked solvers by module path.
The registry centralizes that knowledge: each solver is described once
by a :class:`SolverSpec` — its kind (single/multi-task), whether it
certifies optimality, its cost model, and free-form capability tags —
and every consumer (auto-dispatch, CLI, batch engine, benchmarks)
selects by declared capability instead of by import.

All registered entry points are module-level functions, so specs
pickle by reference and travel to :mod:`multiprocessing` workers
unchanged.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult, SolveResult

__all__ = [
    "SolverSpec",
    "SolverRegistry",
    "default_registry",
    "TAG_EXACT",
    "TAG_HEURISTIC",
    "TAG_STOCHASTIC",
    "TAG_META",
    "TAG_TINY_ONLY",
    "TAG_PACKED",
]

#: Capability tags with agreed meaning across consumers.
TAG_EXACT = "exact"
TAG_HEURISTIC = "heuristic"
TAG_STOCHASTIC = "stochastic"  # result depends on a seed parameter
TAG_META = "meta"  # dispatches to other registered solvers
TAG_TINY_ONLY = "tiny-only"  # exponential; refuses big instances
TAG_PACKED = "packed"  # accepts a precompiled PackedProblem (packed=)


@dataclass(frozen=True)
class SolverSpec:
    """One solver as seen by the engine.

    Attributes
    ----------
    name:
        Unique registry name; also the ``solver`` field of requests.
    kind:
        ``"single"`` (``fn(seq, w, **params)``) or ``"multi"``
        (``fn(system, seqs, model, **params)``).
    fn:
        Entry point with the normalized signature above.  Must be a
        module-level callable so batch workers can unpickle it.
    exact:
        True when the solver proves optimality on every instance it
        accepts.
    cost_model:
        Objective family (``"switch"``, ``"changeover"``, …); consumers
        must not mix results across cost models.
    tags:
        Free-form capability tags (see the ``TAG_*`` constants).
    description:
        One-line summary for listings.
    """

    name: str
    kind: str
    fn: Callable
    exact: bool
    cost_model: str = "switch"
    tags: frozenset = field(default_factory=frozenset)
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("single", "multi"):
            raise ValueError(f"kind must be 'single' or 'multi': {self.kind!r}")
        if not self.name:
            raise ValueError("solver name must be non-empty")

    def solve(self, *args, **kwargs):
        return self.fn(*args, **kwargs)


class SolverRegistry:
    """Name → :class:`SolverSpec` mapping with capability queries."""

    def __init__(self):
        self._specs: dict[str, SolverSpec] = {}
        self._lock = threading.Lock()

    # Registries travel to multiprocessing workers inside batch
    # payloads; locks don't pickle, so ship the specs and rebuild.
    def __getstate__(self):
        return {"specs": dict(self._specs)}

    def __setstate__(self, state):
        self._specs = state["specs"]
        self._lock = threading.Lock()

    def register(self, spec: SolverSpec, *, replace: bool = False) -> SolverSpec:
        with self._lock:
            if spec.name in self._specs and not replace:
                raise ValueError(f"solver {spec.name!r} already registered")
            self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> SolverSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(sorted(self._specs)) or "<empty registry>"
            raise KeyError(
                f"unknown solver {name!r}; registered: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def names(self, kind: str | None = None) -> tuple[str, ...]:
        """Registered solver names, **sorted by name**.

        Ordering guarantee: every enumeration this registry exposes —
        :meth:`names`, :meth:`select`, :meth:`describe` — is sorted by
        solver name, never by registration order.  Consumers that
        tie-break between equivalent solvers (the portfolio's
        deterministic rankings, ``auto``'s candidate walk) rely on this
        being stable across processes and registration histories.
        """
        return tuple(
            sorted(
                name
                for name, spec in self._specs.items()
                if kind is None or spec.kind == kind
            )
        )

    def select(
        self,
        *,
        kind: str | None = None,
        exact: bool | None = None,
        tags: Iterable[str] = (),
        without_tags: Iterable[str] = (),
    ) -> list[SolverSpec]:
        """All specs matching every given constraint, **sorted by name**
        (the same ordering guarantee as :meth:`names` — registration
        order is never observable)."""
        tags = frozenset(tags)
        without = frozenset(without_tags)
        out = [
            spec
            for spec in self._specs.values()
            if (kind is None or spec.kind == kind)
            and (exact is None or spec.exact == exact)
            and tags <= spec.tags
            and not (without & spec.tags)
        ]
        return sorted(out, key=lambda s: s.name)

    def _meta_params(self, spec: SolverSpec, params: dict) -> dict:
        """Meta solvers draw their candidates from the registry that
        invoked them — inject it so overridden solvers are honored."""
        if TAG_META in spec.tags:
            params.setdefault("registry", self)
        return params

    def solve_single(
        self, name: str, seq: RequirementSequence, w: float, **params
    ) -> SolveResult:
        spec = self.get(name)
        if spec.kind != "single":
            raise ValueError(f"solver {name!r} is not a single-task solver")
        return spec.fn(seq, w, **self._meta_params(spec, params))

    def solve_multi(
        self,
        name: str,
        system: TaskSystem,
        seqs: Sequence[RequirementSequence],
        model: MachineModel | None = None,
        *,
        packed=None,
        **params,
    ) -> MTSolveResult:
        """Dispatch a multi-task solve.

        ``packed`` optionally carries a precompiled
        :class:`~repro.core.packed.PackedProblem` for the instance; it
        is forwarded only to solvers tagged :data:`TAG_PACKED` (others
        never see the keyword), so the batch engine can pass it
        unconditionally.
        """
        spec = self.get(name)
        if spec.kind != "multi":
            raise ValueError(f"solver {name!r} is not a multi-task solver")
        params = self._meta_params(spec, params)
        if packed is not None and TAG_PACKED in spec.tags:
            params.setdefault("packed", packed)
        return spec.fn(system, seqs, model, **params)

    def describe(self) -> list[list]:
        """Rows (name, kind, exact, cost model, tags) for listings."""
        return [
            [
                spec.name,
                spec.kind,
                "yes" if spec.exact else "no",
                spec.cost_model,
                ",".join(sorted(spec.tags)),
            ]
            for spec in (self._specs[n] for n in self.names())
        ]


# -- default registry ---------------------------------------------------------
#
# Adapters normalize the zoo's native signatures to the registry
# conventions.  They are module-level on purpose: multiprocessing
# workers resolve them by qualified name.


def _single_dp(seq, w, **params):
    from repro.solvers.single_dp import solve_single_switch

    return solve_single_switch(seq, w, **params)


def _single_exhaustive(seq, w, **params):
    from repro.solvers.exhaustive import solve_single_exhaustive

    return solve_single_exhaustive(seq, w, **params)


def _mt_exhaustive(system, seqs, model=None, **params):
    from repro.solvers.exhaustive import solve_mt_exhaustive

    return solve_mt_exhaustive(system, seqs, model, **params)


def _mt_exact(system, seqs, model=None, **params):
    from repro.solvers.mt_exact import solve_mt_exact

    return solve_mt_exact(system, seqs, model, **params)


def _mt_branch_bound(system, seqs, model=None, **params):
    from repro.solvers.mt_branch_bound import solve_mt_branch_bound

    return solve_mt_branch_bound(system, seqs, model, **params)


def _mt_greedy(system, seqs, model=None, **params):
    from repro.solvers.mt_greedy import solve_mt_greedy_merge

    return solve_mt_greedy_merge(system, seqs, model, **params)


def _mt_genetic(system, seqs, model=None, **params):
    from repro.solvers.mt_genetic import solve_mt_genetic

    return solve_mt_genetic(system, seqs, model, **params)


def _mt_annealing(system, seqs, model=None, **params):
    from repro.solvers.mt_annealing import solve_mt_annealing

    return solve_mt_annealing(system, seqs, model, **params)


def _mt_annealing_multistart(system, seqs, model=None, **params):
    from repro.solvers.mt_annealing import AnnealParams, solve_mt_annealing

    params.setdefault(
        "params", AnnealParams(restarts=4, restart_workers=4)
    )
    return solve_mt_annealing(system, seqs, model, **params)


def _mt_auto(system, seqs, model=None, **params):
    from repro.solvers.auto import solve_mt_auto

    return solve_mt_auto(system, seqs, model, **params)


def _mt_portfolio(system, seqs, model=None, **params):
    from repro.portfolio.engine import solve_mt_portfolio

    return solve_mt_portfolio(system, seqs, model, **params)


_DEFAULT_SPECS = (
    SolverSpec(
        name="single_dp",
        kind="single",
        fn=_single_dp,
        exact=True,
        tags=frozenset({TAG_EXACT}),
        description="O(n²) optimal partition DP (Theorem 1, m=1)",
    ),
    SolverSpec(
        name="single_exhaustive",
        kind="single",
        fn=_single_exhaustive,
        exact=True,
        tags=frozenset({TAG_EXACT, TAG_TINY_ONLY}),
        description="brute-force single-task enumeration (validation)",
    ),
    SolverSpec(
        name="mt_exhaustive",
        kind="multi",
        fn=_mt_exhaustive,
        exact=True,
        tags=frozenset({TAG_EXACT, TAG_TINY_ONLY}),
        description="enumerate all indicator matrices (ground truth)",
    ),
    SolverSpec(
        name="mt_exact",
        kind="multi",
        fn=_mt_exact,
        exact=True,
        tags=frozenset({TAG_EXACT}),
        description="exact DP with Pareto pruning (Theorem 1)",
    ),
    SolverSpec(
        name="mt_branch_bound",
        kind="multi",
        fn=_mt_branch_bound,
        exact=True,
        tags=frozenset({TAG_EXACT, TAG_PACKED}),
        description="DFS branch & bound with admissible lower bounds",
    ),
    SolverSpec(
        name="mt_greedy",
        kind="multi",
        fn=_mt_greedy,
        exact=False,
        tags=frozenset({TAG_HEURISTIC, TAG_PACKED}),
        description="best greedy construction + bit-flip local search",
    ),
    SolverSpec(
        name="mt_genetic",
        kind="multi",
        fn=_mt_genetic,
        exact=False,
        tags=frozenset({TAG_HEURISTIC, TAG_STOCHASTIC, TAG_PACKED}),
        description="the paper's genetic algorithm",
    ),
    SolverSpec(
        name="mt_annealing",
        kind="multi",
        fn=_mt_annealing,
        exact=False,
        tags=frozenset({TAG_HEURISTIC, TAG_STOCHASTIC, TAG_PACKED}),
        description="simulated annealing over indicator matrices",
    ),
    SolverSpec(
        name="mt_annealing_multistart",
        kind="multi",
        fn=_mt_annealing_multistart,
        exact=False,
        tags=frozenset({TAG_HEURISTIC, TAG_STOCHASTIC, TAG_PACKED}),
        description="annealing preset: 4 restarts fanned across 4 processes",
    ),
    SolverSpec(
        name="auto",
        kind="multi",
        fn=_mt_auto,
        exact=False,
        # Stochastic: the heuristic tier forwards the seed parameter.
        tags=frozenset({TAG_META, TAG_STOCHASTIC}),
        description="tiered dispatch: exhaustive → exact DP → heuristics",
    ),
    SolverSpec(
        name="portfolio",
        kind="multi",
        fn=_mt_portfolio,
        exact=False,
        # Stochastic: exploration draws and forwarded solver seeds
        # derive from the seed parameter (bit-reproducible per seed).
        tags=frozenset({TAG_META, TAG_STOCHASTIC}),
        description="adaptive portfolio: learned pick/race over the zoo",
    ),
)

_default: SolverRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> SolverRegistry:
    """The process-wide registry holding the built-in solver zoo.

    Built lazily (solver modules import on first use) and shared —
    callers wanting isolation construct their own
    :class:`SolverRegistry` and register specs explicitly.
    """
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                reg = SolverRegistry()
                for spec in _DEFAULT_SPECS:
                    reg.register(spec)
                _default = reg
    return _default
