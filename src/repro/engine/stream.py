"""Streaming sessions: step-by-step requirements, incremental cost.

A batch request needs the whole requirement sequence up front; a
machine scheduling *at run time* receives requirements one
reconfiguration step at a time.  :class:`StreamSession` is the serving
API for that mode: it owns one online policy cursor (from
:mod:`repro.solvers.online`), accepts requirements via :meth:`feed`,
and does the cost accounting the offline evaluator would do — ``w``
per hyperreconfiguration plus ``|h|`` switch-writes per served step —
incrementally, so a dashboard can read the running total at any point.

:meth:`finish` closes the session into an
:class:`~repro.solvers.online.OnlineRun` whose schedule carries the
exact hypercontexts the session installed; the accumulated cost is
cross-checked against the offline evaluator, so streaming and batch
accounting can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.schedule import SingleTaskSchedule
from repro.core.switches import SwitchUniverse
from repro.solvers.online import OnlineRun

__all__ = ["StreamEvent", "StreamSession"]


@dataclass(frozen=True)
class StreamEvent:
    """One served requirement.

    Attributes
    ----------
    step:
        0-based reconfiguration step index.
    hyper:
        True when the policy hyperreconfigured before serving.
    hypercontext:
        Mask of the hypercontext that served the step.
    step_cost:
        Cost charged for this step (``w·hyper + |hypercontext|``).
    cumulative_cost:
        Session total including this step.
    """

    step: int
    hyper: bool
    hypercontext: int
    step_cost: float
    cumulative_cost: float


class StreamSession:
    """Feed requirements to an online policy, one step at a time.

    Parameters
    ----------
    scheduler:
        An online policy with a ``cursor()`` method
        (:class:`~repro.solvers.online.RentOrBuyScheduler`,
        :class:`~repro.solvers.online.WindowScheduler`, or anything
        honoring the same cursor contract).
    universe:
        Switch universe the fed masks live in (validates mask range).
    w:
        Hyperreconfiguration cost charged per installed hypercontext.
    """

    def __init__(self, scheduler, universe: SwitchUniverse, w: float):
        if w <= 0:
            raise ValueError("hyperreconfiguration cost w must be positive")
        self.scheduler = scheduler
        self.universe = universe
        self.w = float(w)
        self.solver = getattr(scheduler, "name", type(scheduler).__name__)
        self._cursor = scheduler.cursor()
        self._masks: list[int] = []
        self._hyper_steps: list[int] = []
        self._hyper_masks: list[int] = []
        self._cost = 0.0
        self._finished = False

    # -- introspection -----------------------------------------------------

    @property
    def steps(self) -> int:
        """Requirements served so far."""
        return len(self._masks)

    @property
    def hyper_count(self) -> int:
        return len(self._hyper_steps)

    @property
    def cost(self) -> float:
        """Running total of the switch-model cost."""
        return self._cost

    @property
    def current_hypercontext(self) -> int:
        return self._cursor.current

    # -- serving -----------------------------------------------------------

    def feed(self, mask: int) -> StreamEvent:
        """Serve one requirement; returns the step's accounting event."""
        if self._finished:
            raise RuntimeError("session already finished")
        if mask < 0 or mask > self.universe.full_mask:
            raise ValueError(
                f"requirement {mask:#x} out of universe range "
                f"(size {self.universe.size})"
            )
        i = len(self._masks)
        installed = self._cursor.step(i, mask)
        current = self._cursor.current
        if mask & ~current:
            raise RuntimeError(
                f"policy {self.solver!r} broke the cursor contract: "
                f"step {i} requirement {mask:#x} not covered by "
                f"hypercontext {current:#x}"
            )
        hyper = installed is not None
        step_cost = (self.w if hyper else 0.0) + current.bit_count()
        self._cost += step_cost
        self._masks.append(mask)
        if hyper:
            self._hyper_steps.append(i)
            self._hyper_masks.append(installed)
        return StreamEvent(
            step=i,
            hyper=hyper,
            hypercontext=current,
            step_cost=step_cost,
            cumulative_cost=self._cost,
        )

    def feed_sequence(self, seq) -> list[StreamEvent]:
        """Feed a whole :class:`RequirementSequence` (or mask iterable)."""
        masks = seq.masks if isinstance(seq, RequirementSequence) else seq
        return [self.feed(m) for m in masks]

    # -- closing -----------------------------------------------------------

    def finish(self) -> OnlineRun:
        """Close the session into a validated :class:`OnlineRun`.

        The returned schedule carries the session's exact installed
        hypercontexts; its offline-evaluated cost must equal the
        incrementally accumulated one (asserted, not assumed).
        """
        self._finished = True
        n = len(self._masks)
        schedule = SingleTaskSchedule(
            n=n,
            hyper_steps=tuple(self._hyper_steps),
            explicit_masks=tuple(self._hyper_masks),
        )
        if n:
            seq = RequirementSequence(self.universe, self._masks)
            offline = switch_cost(seq, schedule, w=self.w)
            if abs(offline - self._cost) > 1e-6:  # pragma: no cover
                raise AssertionError(
                    f"incremental cost {self._cost} disagrees with offline "
                    f"evaluation {offline}"
                )
        return OnlineRun(schedule=schedule, cost=self._cost, solver=self.solver)
