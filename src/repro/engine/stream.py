"""Streaming sessions: step-by-step requirements, incremental cost.

A batch request needs the whole requirement sequence up front; a
machine scheduling *at run time* receives requirements one
reconfiguration step at a time.  Two serving APIs cover that mode:

* :class:`StreamSession` owns one online policy cursor (from
  :mod:`repro.solvers.online`), accepts requirements via :meth:`feed`
  (one step) or :meth:`feed_many` (a chunk), and does the cost
  accounting the offline evaluator would do — ``w`` per
  hyperreconfiguration plus ``|h|`` switch-writes per served step —
  incrementally, so a dashboard can read the running total at any
  point.  Policies exposing the *batched cursor* contract
  (``batched_cursor``/``step_many``, see :mod:`repro.solvers.online`)
  run on lane-packed NumPy state: a chunk of steps advances in a few
  vectorized sweeps, and the per-step accounting comes off the returned
  arrays (benchmark E16 measures the speedup over the scalar cursor).
  Schedulers without the batched contract fall back to the scalar
  ``cursor()`` path transparently.

* :class:`StreamHub` multiplexes many concurrent sessions — one per
  user/machine — under string session ids, with per-session policy,
  universe and ``w``.  ``feed_many`` takes a mapping of per-session
  chunks and advances each session on its packed state;
  aggregate counters (sessions, steps, hyperreconfigurations, wall
  time) flow into a shared :class:`~repro.engine.metrics.EngineMetrics`
  so the operator report shows streaming steps/sec and the fleet-wide
  hyper rate next to the batch counters.

:meth:`StreamSession.finish` closes a session into an
:class:`~repro.solvers.online.OnlineRun` whose schedule carries the
exact hypercontexts the session installed; the accumulated cost is
cross-checked against the offline evaluator, so streaming and batch
accounting can never drift apart.  The incremental total is accumulated
in the exact order the scalar session used (a seeded cumulative sum),
so packed and scalar sessions agree bit for bit, not approximately.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from itertools import count

import numpy as np

from repro.core.context import RequirementSequence
from repro.core.cost_single import switch_cost
from repro.core.packed import lanes_to_masks, masks_to_lanes
from repro.core.schedule import SingleTaskSchedule
from repro.core.switches import SwitchUniverse
from repro.engine.intern import InternedChunk
from repro.engine.metrics import EngineMetrics
from repro.solvers.online import OnlineRun

__all__ = ["StreamBatch", "StreamEvent", "StreamHub", "StreamSession"]


@dataclass(frozen=True)
class StreamEvent:
    """One served requirement.

    Attributes
    ----------
    step:
        0-based reconfiguration step index.
    hyper:
        True when the policy hyperreconfigured before serving.
    hypercontext:
        Mask of the hypercontext that served the step.
    step_cost:
        Cost charged for this step (``w·hyper + |hypercontext|``).
    cumulative_cost:
        Session total including this step.
    """

    step: int
    hyper: bool
    hypercontext: int
    step_cost: float
    cumulative_cost: float


@dataclass(frozen=True)
class StreamBatch:
    """Aggregate accounting of one :meth:`StreamSession.feed_many` chunk.

    The hot path serves thousands of steps per call; this is the
    chunk-level view (no per-step event objects).  ``hyper_flags`` and
    ``sizes`` are the per-step arrays for callers that want them.

    Attributes
    ----------
    start:
        Step index of the chunk's first requirement.
    steps:
        Requirements served by this chunk.
    hypers:
        Hyperreconfigurations the chunk triggered.
    cost:
        Cost charged for the chunk.
    cumulative_cost:
        Session total including this chunk.
    hyper_flags:
        ``(steps,)`` bool — which steps hyperreconfigured.
    sizes:
        ``(steps,)`` int64 — ``|hypercontext|`` serving each step.
    """

    start: int
    steps: int
    hypers: int
    cost: float
    cumulative_cost: float
    hyper_flags: np.ndarray
    sizes: np.ndarray


class StreamSession:
    """Feed requirements to an online policy, one step or chunk at a time.

    Parameters
    ----------
    scheduler:
        An online policy (:class:`~repro.solvers.online.RentOrBuyScheduler`,
        :class:`~repro.solvers.online.WindowScheduler`, or anything
        honoring the cursor contract).  When the policy implements
        ``batched_cursor(width)`` the session runs on the lane-packed
        batched path; otherwise it steps the scalar ``cursor()``.
    universe:
        Switch universe the fed masks live in (validates mask range).
    w:
        Hyperreconfiguration cost charged per installed hypercontext.
    """

    def __init__(self, scheduler, universe: SwitchUniverse, w: float):
        if w <= 0:
            raise ValueError("hyperreconfiguration cost w must be positive")
        self.scheduler = scheduler
        self.universe = universe
        self.w = float(w)
        self.solver = getattr(scheduler, "name", type(scheduler).__name__)
        if hasattr(scheduler, "batched_cursor"):
            self._batched = scheduler.batched_cursor(universe.size)
            self._cursor = None
        else:
            self._batched = None
            self._cursor = scheduler.cursor()
        # Session-invariant half of the fused group key, precomputed so
        # the hub's per-chunk eligibility test only inspects the chunk.
        if self._batched is not None and hasattr(
            type(self._batched), "sweep_many"
        ):
            stream = self._batched.stream
            self._fuse_key = (
                type(self._batched), stream.lane_width, stream.history
            )
        else:
            self._fuse_key = None
        self._chunks: list[np.ndarray] = []  # lane rows of every fed chunk
        self._scalar_masks: list[int] = []  # scalar-path requirement log
        self._n = 0
        self._hyper_steps: list[int] = []
        self._hyper_masks: list[int] = []
        self._cost = 0.0
        self._finished = False

    # -- introspection -----------------------------------------------------

    @property
    def steps(self) -> int:
        """Requirements served so far."""
        return self._n

    @property
    def hyper_count(self) -> int:
        return len(self._hyper_steps)

    @property
    def cost(self) -> float:
        """Running total of the switch-model cost."""
        return self._cost

    @property
    def current_hypercontext(self) -> int:
        cursor = self._batched if self._batched is not None else self._cursor
        return cursor.current

    # -- serving -----------------------------------------------------------

    def _check_masks(self, masks: Iterable[int]) -> list[int]:
        masks = list(masks)
        full = self.universe.full_mask
        for mask in masks:
            if mask < 0 or mask > full:
                raise ValueError(
                    f"requirement {mask:#x} out of universe range "
                    f"(size {self.universe.size})"
                )
        return masks

    def feed(self, mask: int) -> StreamEvent:
        """Serve one requirement; returns the step's accounting event."""
        if self._finished:
            raise RuntimeError("session already finished")
        (mask,) = self._check_masks([mask])
        if self._batched is not None:
            batch = self._apply_lanes(
                masks_to_lanes([mask], self.universe.size)
            )
            return StreamEvent(
                step=batch.start,
                hyper=bool(batch.hyper_flags[0]),
                hypercontext=self._batched.current,
                step_cost=batch.cost,
                cumulative_cost=batch.cumulative_cost,
            )
        return self._feed_scalar(mask)

    def _feed_scalar(self, mask: int) -> StreamEvent:
        i = self._n
        installed = self._cursor.step(i, mask)
        current = self._cursor.current
        if mask & ~current:
            raise RuntimeError(
                f"policy {self.solver!r} broke the cursor contract: "
                f"step {i} requirement {mask:#x} not covered by "
                f"hypercontext {current:#x}"
            )
        hyper = installed is not None
        step_cost = (self.w if hyper else 0.0) + current.bit_count()
        self._cost += step_cost
        self._scalar_masks.append(mask)
        self._n += 1
        if hyper:
            self._hyper_steps.append(i)
            self._hyper_masks.append(installed)
        return StreamEvent(
            step=i,
            hyper=hyper,
            hypercontext=current,
            step_cost=step_cost,
            cumulative_cost=self._cost,
        )

    def _apply_lanes(self, lanes: np.ndarray, *, log=None) -> StreamBatch:
        """Advance the batched cursor by a pre-validated lane chunk.

        ``log`` substitutes what lands in the requirement log (an
        :class:`~repro.engine.intern.InternedChunk` keeps ids instead
        of the gathered lane matrix — same masks at :meth:`finish`,
        a fraction of the resident bytes)."""
        start = self._n
        batch = self._batched.step_many(lanes)
        C = batch.steps
        # Per-step charge w·hyper + |h|, accumulated in the scalar
        # session's order: seed the cumulative sum with the running
        # total so float rounding matches step-by-step accumulation.
        step_costs = np.where(batch.hyper, self.w, 0.0) + batch.sizes
        cum = np.cumsum(np.concatenate(([self._cost], step_costs)))
        chunk_cost = float(cum[-1] - self._cost)
        self._cost = float(cum[-1])
        self._chunks.append(lanes if log is None else log)
        self._n += C
        flagged = np.flatnonzero(batch.hyper)
        if flagged.size:
            self._hyper_steps.extend((start + flagged).tolist())
            self._hyper_masks.extend(batch.installed_masks())
        return StreamBatch(
            start=start,
            steps=C,
            hypers=int(flagged.size),
            cost=chunk_cost,
            cumulative_cost=self._cost,
            hyper_flags=batch.hyper,
            sizes=batch.sizes,
        )

    def _commit_fused(
        self,
        log,
        steps: int,
        hyper_flags: np.ndarray,
        sizes: np.ndarray,
        chunk_cost: float,
        new_cost: float,
        hyper_steps=(),
        hyper_masks=(),
    ) -> StreamBatch:
        """Book a chunk the fused multi-session sweep already served.

        The cursor and stream state were advanced inside
        ``sweep_many`` — quiet sessions in its first epoch, triggering
        ones through batched trigger replay — and the hub computed the
        seeded cost cumsum for the whole group in one batched pass;
        this just appends the requirement log, records the chunk's
        installs and folds the totals in.  ``hyper_flags``/``sizes``
        are read-only row views into the sweep's shared arrays, and
        ``hyper_steps``/``hyper_masks`` are this session's slice of the
        group's flat install records (chunk-relative steps, int
        masks)."""
        start = self._n
        self._chunks.append(log)
        self._n += steps
        self._cost = new_cost
        hypers = len(hyper_steps)
        if hypers:
            # hyper_steps arrive as chunk-relative Python ints (the hub
            # flattens the group's install columns once with .tolist()).
            self._hyper_steps.extend(start + i for i in hyper_steps)
            self._hyper_masks.extend(hyper_masks)
        return StreamBatch(
            start=start,
            steps=steps,
            hypers=hypers,
            cost=chunk_cost,
            cumulative_cost=new_cost,
            hyper_flags=hyper_flags,
            sizes=sizes,
        )

    def feed_many(self, masks) -> StreamBatch:
        """Serve a chunk of requirements in one vectorized call.

        ``masks`` is an iterable of int masks, a
        :class:`~repro.core.context.RequirementSequence`, an already
        lane-packed ``(C, L)`` uint64 array (fast path; lanes are
        trusted to fit the universe), or an
        :class:`~repro.engine.intern.InternedChunk` of global-arena ids
        (the serve ingest path) — resolved here, logged as ids.  The
        session keeps its own copy of the chunk, so callers may reuse
        one preallocated buffer across feeds.
        """
        if self._finished:
            raise RuntimeError("session already finished")
        if isinstance(masks, InternedChunk):
            if masks.width != self.universe.size:
                raise ValueError(
                    f"interned chunk is for a {masks.width}-switch "
                    f"universe, session runs {self.universe.size}"
                )
            lanes = masks.resolve()
            if self._batched is not None:
                return self._apply_lanes(lanes, log=masks)
            masks = lanes_to_masks(lanes) if lanes.shape[0] else []
        if isinstance(masks, np.ndarray) and masks.ndim == 2:
            lanes = np.ascontiguousarray(masks, dtype=np.uint64)
            if np.shares_memory(lanes, masks):
                # The requirement log must survive the caller reusing
                # or mutating their buffer after this call.
                lanes = lanes.copy()
            int_masks = None
        else:
            if isinstance(masks, RequirementSequence):
                masks = masks.masks
            int_masks = self._check_masks(masks)
            lanes = masks_to_lanes(int_masks, self.universe.size)
        if self._batched is not None:
            return self._apply_lanes(lanes)
        if int_masks is None:
            int_masks = lanes_to_masks(lanes) if lanes.shape[0] else []
        start = self._n
        cost_before = self._cost
        hypers_before = self.hyper_count
        hyper_flags = np.zeros(len(int_masks), dtype=bool)
        sizes = np.zeros(len(int_masks), dtype=np.int64)
        for j, mask in enumerate(int_masks):
            event = self._feed_scalar(mask)
            hyper_flags[j] = event.hyper
            sizes[j] = event.hypercontext.bit_count()
        return StreamBatch(
            start=start,
            steps=len(int_masks),
            hypers=self.hyper_count - hypers_before,
            cost=self._cost - cost_before,
            cumulative_cost=self._cost,
            hyper_flags=hyper_flags,
            sizes=sizes,
        )

    def feed_sequence(self, seq) -> list[StreamEvent]:
        """Feed a whole :class:`RequirementSequence` (or mask iterable).

        Returns one event per step (API kept from the scalar era; use
        :meth:`feed_many` when per-step events are not needed).
        """
        masks = seq.masks if isinstance(seq, RequirementSequence) else seq
        return [self.feed(m) for m in masks]

    # -- closing -----------------------------------------------------------

    def _all_masks(self) -> list[int]:
        if self._batched is None:
            return self._scalar_masks
        out: list[int] = []
        for chunk in self._chunks:
            lanes = (
                chunk.resolve() if isinstance(chunk, InternedChunk)
                else chunk
            )
            if lanes.shape[0]:
                out.extend(lanes_to_masks(lanes))
        return out

    def finish(self) -> OnlineRun:
        """Close the session into a validated :class:`OnlineRun`.

        The returned schedule carries the session's exact installed
        hypercontexts; its offline-evaluated cost must equal the
        incrementally accumulated one (asserted, not assumed).
        """
        self._finished = True
        n = self._n
        schedule = SingleTaskSchedule(
            n=n,
            hyper_steps=tuple(self._hyper_steps),
            explicit_masks=tuple(self._hyper_masks),
        )
        if n:
            seq = RequirementSequence(self.universe, self._all_masks())
            offline = switch_cost(seq, schedule, w=self.w)
            if abs(offline - self._cost) > 1e-6:  # pragma: no cover
                raise AssertionError(
                    f"incremental cost {self._cost} disagrees with offline "
                    f"evaluation {offline}"
                )
        return OnlineRun(schedule=schedule, cost=self._cost, solver=self.solver)


class StreamHub:
    """Many concurrent streaming sessions under one metrics roof.

    The hub is the serving front door for the online mode: each
    user/machine opens a session (its own policy, universe and ``w``),
    requirements arrive per session — singly via :meth:`feed` or as
    per-session chunks via :meth:`feed_many` — and every session runs
    on its own lane-packed cursor state.  Aggregate counters stream
    into the shared :class:`~repro.engine.metrics.EngineMetrics`
    (sessions opened, steps served, hyperreconfigurations, wall time),
    which derives steps/sec and the fleet-wide hyper rate for the
    operator report.
    """

    def __init__(
        self,
        *,
        metrics: EngineMetrics | None = None,
        retain_runs: bool = True,
        tracer=None,
        fused: bool = True,
    ):
        """``retain_runs=False`` drops finished runs after handing them
        to the caller (and releases their session ids for reuse) — the
        long-running-service mode the shard pool uses, where retaining
        every closed session forever would leak O(steps) per user.
        ``tracer`` is an optional
        :class:`~repro.obs.trace.TraceRecorder`; the hub records
        open/feed/close spans into it.  ``fused=False`` disables the
        fused multi-session sweep and advances sessions back to back —
        the sequential baseline benchmark E16 measures the fused path
        against (answers are bit-identical either way)."""
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.retain_runs = retain_runs
        self.tracer = tracer
        self.fused = fused
        self._sessions: dict[str, StreamSession] = {}
        self._runs: dict[str, OnlineRun] = {}
        self._auto_id = count()
        # O(1) fleet totals (satellite of the fused-sweep PR): steps
        # and hypers of live sessions and retained runs, maintained on
        # feed/close instead of re-summed per stats scrape.  Exact for
        # hub-routed traffic, which is the only kind there is — the
        # shard/serve layers never feed a session behind the hub's
        # back.
        self._live_steps = 0
        self._live_hypers = 0
        self._closed_steps = 0
        self._closed_hypers = 0
        #: (fused, fallback, group sizes, replay epochs, triggers) of
        #: the most recent :meth:`feed_many` — shard drain cycles ship
        #: this upstream so a pool's parent metrics see per-cycle fused
        #: counts and replay-epoch telemetry.
        self._last_fused: tuple[int, int, tuple[int, ...], int, int] = (
            0, 0, (), 0, 0,
        )

    # -- session management ------------------------------------------------

    def open(
        self,
        scheduler,
        universe: SwitchUniverse,
        w: float,
        *,
        session_id: str | None = None,
    ) -> str:
        """Open a session; returns its id (generated when omitted)."""
        if session_id is None:
            session_id = f"s{next(self._auto_id)}"
            while session_id in self._sessions or session_id in self._runs:
                session_id = f"s{next(self._auto_id)}"
        if session_id in self._sessions or session_id in self._runs:
            raise ValueError(f"session id {session_id!r} already in use")
        self._sessions[session_id] = StreamSession(scheduler, universe, w)
        self.metrics.record_stream_open()
        if self.tracer is not None:
            self.tracer.record("open", session=session_id)
        return session_id

    def session(self, session_id: str) -> StreamSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session id {session_id!r}") from None

    def session_ids(self) -> tuple[str, ...]:
        return tuple(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    # -- serving -----------------------------------------------------------

    def feed(self, session_id: str, mask: int) -> StreamEvent:
        """Serve one requirement on one session."""
        session = self.session(session_id)
        start = time.perf_counter()
        event = session.feed(mask)
        elapsed = time.perf_counter() - start
        self._live_steps += 1
        self._live_hypers += 1 if event.hyper else 0
        self.metrics.record_stream(
            steps=1,
            hypers=1 if event.hyper else 0,
            seconds=elapsed,
            chunk_steps=(1,),
        )
        if self.tracer is not None:
            self.tracer.record(
                "feed", duration=elapsed, session=session_id, steps=1
            )
        return event

    def feed_many(self, chunks: Mapping[str, object]) -> dict[str, StreamBatch]:
        """Serve one chunk per session; returns per-session batches.

        ``chunks`` maps session ids to whatever
        :meth:`StreamSession.feed_many` accepts (mask iterables or
        lane-packed arrays).  With :attr:`fused` (the default) the hub
        groups compatible lane chunks — same cursor kind, lane width
        and history; chunk lengths may be ragged — and advances each
        group through the policy's epoch-synchronous ``sweep_many``
        kernel: quiet sessions complete in the first struct-of-arrays
        epoch, and triggering sessions stay stacked through batched
        trigger replay instead of ejecting to per-session Python
        (bit-identical decisions either way).  The call's wall time,
        aggregate step/hyper counts, fused/fallback session counts and
        replay-epoch/trigger totals land in the hub metrics.
        """
        sessions = {sid: self.session(sid) for sid in chunks}
        out: dict[str, StreamBatch] = {}
        start = time.perf_counter()
        fused = fallback = 0
        group_sizes: tuple[int, ...] = ()
        epochs = triggers = 0
        if self.fused:
            fused, fallback, group_sizes, epochs, triggers = (
                self._feed_many_fused(sessions, chunks, out)
            )
        else:
            for sid, masks in chunks.items():
                out[sid] = sessions[sid].feed_many(masks)
        if len(out) != len(chunks):  # pragma: no cover - defensive
            raise RuntimeError("fused dispatch lost a session chunk")
        out = {sid: out[sid] for sid in chunks}  # caller's order
        steps = hypers = 0
        for batch in out.values():
            steps += batch.steps
            hypers += batch.hypers
        elapsed = time.perf_counter() - start
        self._live_steps += steps
        self._live_hypers += hypers
        self._last_fused = (fused, fallback, group_sizes, epochs, triggers)
        self.metrics.record_stream(
            steps=steps,
            hypers=hypers,
            seconds=elapsed,
            chunk_steps=tuple(b.steps for b in out.values()),
        )
        if fused or fallback:
            self.metrics.record_fused(
                sessions=fused,
                fallback=fallback,
                group_sizes=group_sizes,
                epochs=epochs,
                triggers=triggers,
            )
        if self.tracer is not None:
            self.tracer.record(
                "feed",
                duration=elapsed,
                steps=steps,
                sessions=len(out),
            )
        return out

    def _feed_many_fused(
        self,
        sessions: dict[str, StreamSession],
        chunks: Mapping[str, object],
        out: dict[str, StreamBatch],
    ) -> tuple[int, int, tuple[int, ...], int, int]:
        """Group-and-sweep core of the fused :meth:`feed_many` path.

        Eligible chunks (lane-packed, on a batched-cursor session) are
        grouped by ``(cursor kind, lane width, history)`` — ragged
        chunk lengths fuse into one zero-padded stack, so sessions that
        differ only in chunk length (including singletons left alone by
        the old equal-length grouping) share a sweep; history equality
        pins ``memory``/``k``, while ``w``/``alpha`` may vary inside a
        group (the sweep gathers them as vectors).  Every group member
        completes inside the epoch-synchronous ``sweep_many`` kernel —
        triggering sessions included — and the hub books the whole
        group with one seeded cost cumsum and one flat installed-mask
        conversion.  Only ineligible traffic — mask iterables, interned
        chunks for the wrong universe, empty chunks, non-batched
        cursors — takes the per-session path.  Returns
        (fused, fallback, group sizes, replay epochs, triggers);
        per-session batches land in ``out``.
        """
        groups: dict[tuple, list[tuple[str, np.ndarray, object]]] = {}
        plain: list[str] = []
        for sid, masks in chunks.items():
            session = sessions[sid]
            key = session._fuse_key
            lanes = None
            log = None
            if key is not None and not session._finished:
                if isinstance(masks, np.ndarray):
                    # No ascontiguousarray here: the stacked group
                    # block copies the rows into owned storage anyway.
                    if masks.ndim == 2 and masks.dtype == np.uint64:
                        lanes = masks
                elif isinstance(masks, InternedChunk):
                    if masks.width == session.universe.size:
                        lanes = masks.resolve()
                        log = masks
            if (
                lanes is None
                or lanes.shape[0] == 0
                or lanes.shape[1] != key[1]
            ):
                plain.append(sid)
                continue
            groups.setdefault(key, []).append((sid, lanes, log))
        for sid in plain:
            out[sid] = sessions[sid].feed_many(chunks[sid])
        fused = len(chunks) - len(plain)
        fallback = len(plain)
        group_sizes: list[int] = []
        epochs = triggers = 0
        for (cursor_cls, L, _hist), members in groups.items():
            lengths = np.fromiter(
                (lanes.shape[0] for _sid, lanes, _log in members),
                count=len(members),
                dtype=np.int64,
            )
            Cmax = int(lengths.max())
            if int(lengths.min()) == Cmax:
                block = np.stack([lanes for _sid, lanes, _log in members])
            else:
                block = np.zeros(
                    (len(members), Cmax, L), dtype=np.uint64
                )
                for s, (_sid, lanes, _log) in enumerate(members):
                    block[s, : lanes.shape[0]] = lanes
            cursors = [
                sessions[sid]._batched for sid, _lanes, _log in members
            ]
            sweep = cursor_cls.sweep_many(cursors, block, lengths=lengths)
            epochs += sweep.epochs
            triggers += sweep.triggers
            # Batched bookkeeping for the whole group: one seeded cost
            # cumsum (row-wise it is exactly the scalar session's
            # concatenate-and-cumsum — padding columns add 0.0, so the
            # final column is every ragged session's total), one flat
            # lanes→masks conversion for all installs, per-session
            # slices off the shared arrays.
            S = len(members)
            w_vec = np.fromiter(
                (sessions[sid].w for sid, _lanes, _log in members),
                count=S,
                dtype=np.float64,
            )
            costs = np.empty((S, Cmax + 1), dtype=np.float64)
            costs[:, 0] = [sessions[sid]._cost for sid, _l, _g in members]
            costs[:, 1:] = sweep.sizes + np.where(
                sweep.hyper, w_vec[:, None], 0.0
            )
            cum = np.cumsum(costs, axis=1)
            new_costs = cum[:, -1].tolist()
            chunk_costs = (cum[:, -1] - cum[:, 0]).tolist()
            offsets = np.zeros(S + 1, dtype=np.int64)
            np.cumsum(sweep.installed_counts, out=offsets[1:])
            offs = offsets.tolist()
            flat_masks = (
                lanes_to_masks(sweep.installed) if sweep.triggers else []
            )
            step_list = np.nonzero(sweep.hyper)[1].tolist()
            for s, (sid, lanes, log) in enumerate(members):
                n_s = int(lengths[s])
                o0, o1 = offs[s], offs[s + 1]
                out[sid] = sessions[sid]._commit_fused(
                    log if log is not None else block[s, :n_s],
                    n_s,
                    sweep.hyper[s, :n_s],
                    sweep.sizes[s, :n_s],
                    chunk_costs[s],
                    new_costs[s],
                    hyper_steps=step_list[o0:o1],
                    hyper_masks=flat_masks[o0:o1],
                )
            group_sizes.append(S)
        return fused, fallback, tuple(group_sizes), epochs, triggers

    @property
    def last_fused(self) -> tuple[int, int, tuple[int, ...], int, int]:
        """(fused, fallback, group sizes, replay epochs, triggers) of
        the latest :meth:`feed_many`."""
        return self._last_fused

    # -- aggregate accounting ----------------------------------------------

    @property
    def total_steps(self) -> int:
        """Steps served by live and retained finished sessions.

        O(1): running counters updated on feed and close, not a
        re-sum over sessions per stats scrape."""
        return self._live_steps + self._closed_steps

    @property
    def total_hypers(self) -> int:
        return self._live_hypers + self._closed_hypers

    @property
    def total_cost(self) -> float:
        return sum(s.cost for s in self._sessions.values()) + sum(
            run.cost for run in self._runs.values()
        )

    @property
    def hyper_rate(self) -> float:
        """Fleet-wide hyperreconfigurations per served step."""
        steps = self.total_steps
        return self.total_hypers / steps if steps else 0.0

    # -- closing -----------------------------------------------------------

    def finish(self, session_id: str) -> OnlineRun:
        """Close one session (validated).

        With ``retain_runs`` (default) the run is kept in :meth:`runs`
        and the id stays reserved; otherwise the run goes only to the
        caller and the id is immediately reusable.
        """
        session = self.session(session_id)
        run = session.finish()
        self.metrics.record_session_close(
            solver=run.solver, cost=run.cost, steps=run.schedule.n
        )
        if self.tracer is not None:
            self.tracer.record("close", session=session_id, steps=run.schedule.n)
        self._live_steps -= run.schedule.n
        self._live_hypers -= run.schedule.r
        if self.retain_runs:
            self._runs[session_id] = run
            self._closed_steps += run.schedule.n
            self._closed_hypers += run.schedule.r
        del self._sessions[session_id]
        return run

    def finish_all(self) -> dict[str, OnlineRun]:
        """Close every live session; returns id → validated run."""
        return {sid: self.finish(sid) for sid in tuple(self._sessions)}

    def runs(self) -> dict[str, OnlineRun]:
        """Validated runs of the sessions finished so far."""
        return dict(self._runs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamHub(live={len(self._sessions)}, "
            f"finished={len(self._runs)}, steps={self.total_steps})"
        )
