"""Canonical solve requests and engine-level results.

The engine treats every solver invocation as a value: a
:class:`SolveRequest` names the problem (single- or multi-task), the
data, the solver, and its parameters.  Requests are *canonicalized*
into a structural cache key so that

* universes that differ only in switch names,
* task systems that differ only in task names, and
* multi-task requests that list the same (task, sequence) pairs in a
  different order

all map to the same key.  Schedules carry no universe or task-name
references, so a result computed for one member of such an equivalence
class is valid for every member — the only fix-up needed on a cache hit
is permuting multi-task schedule rows back into the request's task
order, which :func:`permute_mt_result` performs.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.schedule import MultiTaskSchedule
from repro.core.task import TaskSystem
from repro.solvers.base import MTSolveResult, SolveResult

__all__ = [
    "SolveRequest",
    "CanonicalForm",
    "EngineResult",
    "canonicalize",
    "canonical_key",
    "model_signature",
    "packed_problem_key",
    "permute_mt_result",
    "to_canonical_result",
    "from_canonical_result",
]


def _freeze_params(params: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    """Deterministic, hashable view of a solver-parameter mapping.

    Values must themselves be hashable (ints, floats, strings, frozen
    dataclasses like ``GAParams``); unhashable values fail loudly here
    rather than deep in the cache.
    """
    items = tuple(sorted(params.items()))
    for k, v in items:
        try:
            hash(v)
        except TypeError as exc:
            raise TypeError(
                f"solver parameter {k!r} is not hashable: {v!r}"
            ) from exc
    return items


def model_signature(model: MachineModel | None):
    """Hashable structural view of a machine model (None stays None)."""
    if model is None:
        return None
    return (
        model.machine_class.value,
        model.sync_mode.value,
        model.hyper_upload.value,
        model.reconfig_upload.value,
        model.allow_public_global,
    )


_model_signature = model_signature


def packed_problem_key(request: "SolveRequest") -> tuple:
    """Structural key of the *problem* behind a multi-task request.

    Unlike :func:`canonicalize`, the solver name and its parameters are
    excluded: two requests asking different solvers (or the same solver
    with different hyper-parameters) about the same instance share one
    lane-packed compile.  Task order is kept as-is — a
    :class:`~repro.core.packed.PackedProblem` is row-order sensitive.
    """
    if request.kind != "multi":
        raise ValueError("packed problems exist for multi-task requests only")
    system = request.system
    return (
        system.universe.size,
        tuple((task.local_mask, task.v) for task in system.tasks),
        tuple(seq.masks for seq in request.seqs),
        system.private_global_mask,
        system.public_global_mask,
        model_signature(request.model),
    )


@dataclass(frozen=True)
class SolveRequest:
    """One solver invocation as data.

    Use the :meth:`single` / :meth:`multi` constructors; the raw
    constructor exists for dataclass plumbing only.

    Attributes
    ----------
    kind:
        ``"single"`` or ``"multi"``.
    solver:
        Registry name of the solver to run (e.g. ``"single_dp"``,
        ``"auto"``).
    seq, w:
        Single-task payload (requirement sequence and hyper cost).
    system, seqs, model:
        Multi-task payload (task system, per-task sequences, machine
        model).
    params:
        Frozen solver keyword arguments, part of the cache key.
    """

    kind: str
    solver: str
    seq: RequirementSequence | None = None
    w: float | None = None
    system: TaskSystem | None = None
    seqs: tuple[RequirementSequence, ...] | None = None
    model: MachineModel | None = None
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def single(
        cls,
        seq: RequirementSequence,
        w: float,
        *,
        solver: str = "single_dp",
        **params,
    ) -> "SolveRequest":
        if w <= 0:
            raise ValueError("hyperreconfiguration cost w must be positive")
        return cls(
            kind="single",
            solver=solver,
            seq=seq,
            w=float(w),
            params=_freeze_params(params),
        )

    @classmethod
    def multi(
        cls,
        system: TaskSystem,
        seqs: Sequence[RequirementSequence],
        model: MachineModel | None = None,
        *,
        solver: str = "auto",
        **params,
    ) -> "SolveRequest":
        seqs = tuple(seqs)
        if len(seqs) != system.m:
            raise ValueError(
                f"need one sequence per task: got {len(seqs)} for m={system.m}"
            )
        return cls(
            kind="multi",
            solver=solver,
            system=system,
            seqs=seqs,
            model=model,
            params=_freeze_params(params),
        )

    @property
    def kwargs(self) -> dict[str, Any]:
        """Solver keyword arguments as a plain dict."""
        return dict(self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "single":
            n = len(self.seq) if self.seq is not None else 0
            return f"SolveRequest(single, solver={self.solver!r}, n={n})"
        m = self.system.m if self.system is not None else 0
        n = len(self.seqs[0]) if self.seqs else 0
        return f"SolveRequest(multi, solver={self.solver!r}, m={m}, n={n})"


@dataclass(frozen=True)
class CanonicalForm:
    """Structural cache key plus the task permutation that produced it.

    ``perm[c]`` is the request-order index of the task placed at
    canonical position ``c``; single-task requests use the identity.
    """

    key: tuple
    perm: tuple[int, ...] = ()


def canonicalize(request: SolveRequest) -> CanonicalForm:
    """Reduce a request to its structural equivalence class.

    Switch and task *names* never appear in the key — only universe
    size, masks, per-task costs, the machine model, the solver name and
    its parameters.  Multi-task (task, sequence) pairs are sorted by a
    structural sort key, so permuting the task list leaves the key
    unchanged.
    """
    if request.kind == "single":
        seq = request.seq
        key = (
            "single",
            request.solver,
            request.params,
            request.w,
            seq.universe.size,
            seq.masks,
        )
        return CanonicalForm(key=key)
    if request.kind != "multi":
        raise ValueError(f"unknown request kind {request.kind!r}")
    system = request.system
    rows = []
    for j, (task, seq) in enumerate(zip(system.tasks, request.seqs)):
        rows.append(((task.local_mask, task.v, seq.masks), j))
    rows.sort(key=lambda item: item[0])
    perm = tuple(j for _row, j in rows)
    key = (
        "multi",
        request.solver,
        request.params,
        system.universe.size,
        tuple(row for row, _j in rows),
        system.private_global_mask,
        system.public_global_mask,
        _model_signature(request.model),
    )
    return CanonicalForm(key=key, perm=perm)


def canonical_key(request: SolveRequest) -> tuple:
    """Shorthand for ``canonicalize(request).key``."""
    return canonicalize(request).key


def permute_mt_result(
    result: MTSolveResult, order: Sequence[int]
) -> MTSolveResult:
    """Reorder a multi-task result's schedule rows.

    ``order[k]`` names the source row placed at output position ``k``.
    Fully synchronized costs are invariant under task permutation (the
    per-step terms are maxima/sums over tasks), so only the schedule
    changes.
    """
    schedule = result.schedule
    indicators = schedule.indicators
    permuted = MultiTaskSchedule([indicators[k] for k in order])
    return MTSolveResult(
        schedule=permuted,
        cost=result.cost,
        optimal=result.optimal,
        solver=result.solver,
        stats=result.stats,
    )


def to_canonical_result(
    result: SolveResult | MTSolveResult, form: CanonicalForm
):
    """Rewrite a request-order result into canonical task order."""
    if not form.perm or not isinstance(result, MTSolveResult):
        return result
    # perm[c] = request index at canonical slot c → gather rows by perm.
    return permute_mt_result(result, form.perm)


def from_canonical_result(
    result: SolveResult | MTSolveResult, form: CanonicalForm
):
    """Rewrite a canonical-order result into this request's task order."""
    if not form.perm or not isinstance(result, MTSolveResult):
        return result
    inverse = [0] * len(form.perm)
    for c, j in enumerate(form.perm):
        inverse[j] = c
    return permute_mt_result(result, inverse)


@dataclass(frozen=True)
class EngineResult:
    """Outcome of one request through the engine.

    Attributes
    ----------
    request:
        The originating request.
    value:
        The solver result (``None`` on error/timeout).
    error:
        Human-readable failure description, ``None`` on success.
    cached:
        True when the value was served from the result cache (including
        duplicates deduplicated within one batch).
    elapsed:
        Solve wall time in seconds (0.0 for cache hits).
    """

    request: SolveRequest
    value: SolveResult | MTSolveResult | None = None
    error: str | None = None
    cached: bool = False
    elapsed: float = 0.0
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None and self.value is not None

    @property
    def cost(self) -> float:
        if not self.ok:
            raise ValueError(f"request failed: {self.error}")
        return self.value.cost
