"""Batch execution: fan requests across processes, dedup via the cache.

:class:`BatchEngine` is the engine's front door.  One call takes a
list of :class:`~repro.engine.requests.SolveRequest`, and

1. canonicalizes every request (structural dedup — permuted task
   orders, renamed switches, repeated traces all collapse);
2. serves cache hits immediately;
3. compiles the lane-packed :class:`~repro.core.packed.PackedProblem`
   of each *unique problem* once (an LRU of compiles keyed on the
   problem structure, shared across solvers, parameters and batches)
   and hands it to every packed-capable solver;
4. solves each *unique* miss exactly once — inline, or chunked across
   ``workers`` :mod:`multiprocessing` processes with an optional
   per-request timeout.  Large compiled lane matrices cross the
   process boundary through :mod:`multiprocessing.shared_memory`
   segments instead of being pickled into every chunk payload: the
   chunk carries a tiny :class:`_SharedPacked` handle, the worker maps
   the segment and rebuilds the :class:`PackedProblem` as a zero-copy
   view (byte-identical results, a fraction of the serialization
   bytes — both sides of the trade land in the metrics as
   bytes-shipped vs. bytes-shared);
5. stores results under canonical keys and materializes one
   :class:`~repro.engine.requests.EngineResult` per input request, in
   input order, with multi-task schedule rows permuted back to each
   request's own task order.

Workers enforce timeouts with ``SIGALRM`` (per-request, inside the
worker process); on platforms without it the timeout degrades to
"no limit" rather than failing.  All solver entry points come from the
:class:`~repro.engine.registry.SolverRegistry`, so workers only need
the solver *name* plus the request payload.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import signal
import threading
import time
from collections.abc import Sequence
from multiprocessing import shared_memory

import numpy as np

from repro.core.packed import PackedProblem
from repro.engine.cache import MISS, ResultCache
from repro.engine.intern import intern_chunk, restore_chunk
from repro.engine.metrics import EngineMetrics
from repro.engine.registry import (
    TAG_META,
    TAG_PACKED,
    SolverRegistry,
    default_registry,
)
from repro.engine.requests import (
    EngineResult,
    SolveRequest,
    canonicalize,
    from_canonical_result,
    packed_problem_key,
    to_canonical_result,
)

__all__ = ["BatchEngine", "SolveTimeout"]


class SolveTimeout(Exception):
    """A request exceeded its per-request time budget."""


#: Lane matrices at or above this size take the shared-memory path when
#: ``shared_lanes`` is left on auto (small problems pickle faster than
#: a segment round-trip).
SHARED_LANES_MIN_BYTES = 1 << 16


def _attach_shared(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    The parent owns create/unlink.  Python < 3.13 has no ``track=False``
    and registers every attach with the resource tracker — under a
    fork-start pool that tracker is *shared* with the parent, so an
    attach-then-unregister would cancel the parent's registration and
    the final unlink would double-remove.  Suppressing the registration
    during the attach is correct for both start methods.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(rname, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _SharedPacked:
    """Zero-copy stand-in for a :class:`PackedProblem` crossing to a worker.

    Pickles as a few scalars plus the shared-memory segment name; the
    worker maps the segment and rebuilds the problem with its lane
    matrix as a read-only view of the shared buffer (no copy, no
    per-chunk lane pickling).
    """

    __slots__ = ("name", "shape", "width", "v", "flags")

    def __init__(self, name, shape, width, v, flags):
        self.name = name
        self.shape = tuple(shape)
        self.width = width
        self.v = v
        self.flags = flags

    @classmethod
    def publish(
        cls, packed: PackedProblem
    ) -> tuple["_SharedPacked", shared_memory.SharedMemory]:
        """Copy a problem's lanes into a fresh segment; returns the
        handle to ship and the segment the parent must unlink."""
        lanes = packed.lanes
        shm = shared_memory.SharedMemory(create=True, size=lanes.nbytes)
        view = np.ndarray(lanes.shape, dtype=np.uint64, buffer=shm.buf)
        view[:] = lanes
        handle = cls(
            shm.name,
            lanes.shape,
            packed.width,
            packed.v.copy(),
            (
                packed.hyper_parallel,
                packed.reconf_parallel,
                packed.partial_hyper_ok,
                packed.context_synced,
            ),
        )
        return handle, shm

    def materialize(
        self,
    ) -> tuple[PackedProblem, shared_memory.SharedMemory]:
        """Worker side: map the segment, rebuild the problem as a view.

        The caller must keep the returned segment open for as long as
        the problem is used, then close it (the parent unlinks).
        """
        shm = _attach_shared(self.name)
        lanes = np.ndarray(self.shape, dtype=np.uint64, buffer=shm.buf)
        hyper_parallel, reconf_parallel, partial_hyper_ok, context_synced = (
            self.flags
        )
        problem = PackedProblem(
            lanes,
            self.v,
            width=self.width,
            hyper_parallel=hyper_parallel,
            reconf_parallel=reconf_parallel,
            partial_hyper_ok=partial_hyper_ok,
            context_synced=context_synced,
        )
        return problem, shm


def _run_with_timeout(fn, args, kwargs, timeout: float | None):
    """Call ``fn`` under a SIGALRM deadline when the platform allows it.

    Only armed in a main thread on POSIX; elsewhere the call runs
    unbounded (documented degradation, never an error).
    """
    can_alarm = (
        timeout is not None
        and timeout > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        return fn(*args, **kwargs)

    def _on_alarm(_signum, _frame):
        raise SolveTimeout(f"solve exceeded {timeout} s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    start = time.monotonic()
    old_delay, old_interval = signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(*args, **kwargs)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if old_delay:
            # Re-arm the caller's own pending alarm (minus the time we
            # spent) instead of silently cancelling their watchdog.
            remaining = max(1e-3, old_delay - (time.monotonic() - start))
            signal.setitimer(signal.ITIMER_REAL, remaining, old_interval)


def _solve_one(registry: SolverRegistry, request: SolveRequest, packed=None):
    if request.kind == "single":
        return registry.solve_single(
            request.solver, request.seq, request.w, **request.kwargs
        )
    return registry.solve_multi(
        request.solver, request.system, request.seqs, request.model,
        packed=packed,
        **request.kwargs,
    )


def _execute(registry, request, timeout, packed=None):
    """(value, error, timed_out, elapsed) for one request, never raising."""
    start = time.perf_counter()
    try:
        value = _run_with_timeout(
            _solve_one, (registry, request, packed), {}, timeout
        )
        return value, None, False, time.perf_counter() - start
    except SolveTimeout as exc:
        return None, str(exc), True, time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - worker boundary
        error = f"{type(exc).__name__}: {exc}"
        return None, error, False, time.perf_counter() - start


def _solve_chunk(payload):
    """Worker entry: solve a chunk of (index, request, packed) triples.

    ``registry=None`` falls back to this worker process's default
    registry (kept for forward compatibility; the engine normally
    ships the registry it was built with).  ``packed`` is the parent's
    precompiled :class:`~repro.core.packed.PackedProblem` (or None),
    serialized with the chunk — or a :class:`_SharedPacked` handle,
    materialized here as a zero-copy view of the parent's
    shared-memory segment (mapped once per chunk, closed after the
    chunk's last solve; solver results never alias the segment).

    A four-element payload carries a mask-interned chunk (see
    :mod:`repro.engine.intern`): the trailing element is the chunk's
    mask table, and the requests are restored — bit-identically —
    before any solver runs.
    """
    if len(payload) == 4:
        items, timeout, registry, table_masks = payload
        items = restore_chunk(items, table_masks)
    else:
        items, timeout, registry = payload
    if registry is None:
        registry = default_registry()
    out = []
    problems: dict[str, PackedProblem] = {}
    segments: dict[str, shared_memory.SharedMemory] = {}
    try:
        for index, request, packed in items:
            if isinstance(packed, _SharedPacked):
                if packed.name not in problems:
                    problem, shm = packed.materialize()
                    problems[packed.name] = problem
                    segments[packed.name] = shm
                packed = problems[packed.name]
            out.append((index, *_execute(registry, request, timeout, packed)))
            packed = None  # drop the view before the segment is closed
    finally:
        problems.clear()
        for shm in segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - a solver kept a view
                pass  # mapping stays until worker exit; parent still unlinks
    return out


class BatchEngine:
    """High-throughput front door to the solver zoo.

    Parameters
    ----------
    registry:
        Solver registry; defaults to the built-in zoo.
    cache:
        Shared :class:`ResultCache`; created from ``cache_size`` when
        omitted.  Pass ``cache_size=0`` for a cache-off engine with
        identical code paths (baseline measurements).
    workers:
        Process count for :meth:`solve_batch`; ``1`` solves inline.
    chunk_size:
        Requests per worker task; default balances ~4 chunks per
        worker.
    timeout:
        Per-request solve budget in seconds (enforced inside workers
        via SIGALRM where available).
    packed_cache_size:
        Capacity of the per-problem :class:`PackedProblem` compile
        cache (``0`` disables reuse; every request compiles afresh).
    shared_lanes:
        Fan-out transport for compiled lane matrices.  ``True`` ships
        every packed problem through a shared-memory segment, ``False``
        always pickles them into the chunk payloads, ``None`` (auto)
        shares matrices of at least :data:`SHARED_LANES_MIN_BYTES`.
        Results are byte-identical either way; only serialization
        bytes change (reported by the metrics).
    intern_masks:
        Canonical mask interning for worker chunk payloads (see
        :mod:`repro.engine.intern`): requirement sequences ship as
        uint32 rows into one per-chunk table of distinct masks instead
        of re-pickling every mask per request.  Results are
        bit-identical; the ``mask interning`` metrics row reports the
        payload bytes saved.  ``False`` ships raw requests.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder`; one ``solve``
        span per solved request (solver name, latency, error flag).
    portfolio_learn:
        Feed the portfolio plane (see :mod:`repro.portfolio`): every
        finished concrete multi-task solve appends one run-ledger row
        (successes with their cost, errors/timeouts as failures), and
        ``portfolio`` results solved in worker processes have their
        decision records folded into the parent state.  ``False`` for
        engines that must not touch the learned state (the portfolio's
        own race engine, baseline measurements).
    portfolio_state:
        Explicit :class:`~repro.portfolio.engine.PortfolioState` to
        learn into; ``None`` uses the process-wide default state.
    """

    def __init__(
        self,
        registry: SolverRegistry | None = None,
        *,
        cache: ResultCache | None = None,
        cache_size: int = 1024,
        workers: int = 1,
        chunk_size: int | None = None,
        timeout: float | None = None,
        metrics: EngineMetrics | None = None,
        packed_cache_size: int = 128,
        shared_lanes: bool | None = None,
        intern_masks: bool = True,
        tracer=None,
        portfolio_learn: bool = True,
        portfolio_state=None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        self.registry = registry if registry is not None else default_registry()
        self.cache = cache if cache is not None else ResultCache(cache_size)
        self.workers = workers
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self.tracer = tracer
        self.shared_lanes = shared_lanes
        self.intern_masks = intern_masks
        self.portfolio_learn = portfolio_learn
        self.portfolio_state = portfolio_state
        # Lane-packed compiles, keyed on the problem structure (solver
        # and parameters excluded): one compile serves every solver and
        # every batch that asks about the same instance.
        self._packed_cache: ResultCache = ResultCache(packed_cache_size)

    # -- single request ----------------------------------------------------

    def solve(self, request: SolveRequest) -> EngineResult:
        """Solve one request inline (cache-aware)."""
        return self.solve_batch([request], workers=1)[0]

    # -- batches -----------------------------------------------------------

    def solve_batch(
        self,
        requests: Sequence[SolveRequest],
        *,
        workers: int | None = None,
    ) -> list[EngineResult]:
        """Solve many requests; results align with the input order."""
        requests = list(requests)
        workers = self.workers if workers is None else workers
        if workers < 1:
            raise ValueError("workers must be at least 1")
        results: list[EngineResult | None] = [None] * len(requests)
        with self.metrics.batch_timer():
            forms = [canonicalize(r) for r in requests]
            # One cache lookup per unique key; later duplicates are
            # resolved after the solve so they count as genuine hits.
            representative: dict[tuple, int] = {}
            to_solve: list[int] = []
            for i, form in enumerate(forms):
                if form.key in representative:
                    continue
                representative[form.key] = i
                hit = self.cache.get(form.key)
                if hit is not MISS:
                    results[i] = self._materialize(
                        requests[i], forms[i], hit, cached=True, elapsed=0.0
                    )
                else:
                    to_solve.append(i)

            solved = self._solve_unique(requests, to_solve, workers)

            for i in to_solve:
                value, error, timed_out, elapsed = solved[i]
                if self.tracer is not None:
                    self.tracer.record(
                        "solve",
                        duration=elapsed,
                        solver=requests[i].solver,
                        error=error is not None,
                    )
                if error is None:
                    self.metrics.record_solve(elapsed, solver=requests[i].solver)
                    solver_stats = getattr(value, "stats", None)
                    if solver_stats:
                        self.metrics.record_evaluator_stats(solver_stats)
                    self._learn_solve(requests[i], value, elapsed)
                    canonical_value = to_canonical_result(value, forms[i])
                    self.cache.put(forms[i].key, canonical_value)
                    results[i] = EngineResult(
                        request=requests[i],
                        value=value,
                        cached=False,
                        elapsed=elapsed,
                    )
                else:
                    self.metrics.record_error(timeout=timed_out)
                    self._learn_failure(
                        requests[i], error, timed_out, elapsed
                    )
                    results[i] = EngineResult(
                        request=requests[i],
                        error=error,
                        elapsed=elapsed,
                        stats={"timeout": timed_out},
                    )

            # Duplicates: serve from the cache (real hits) or replicate
            # the representative's failure.
            for i, form in enumerate(forms):
                if results[i] is not None:
                    continue
                rep = representative[form.key]
                rep_result = results[rep]
                if rep_result.ok:
                    hit = self.cache.get(form.key)
                    value = hit if hit is not MISS else to_canonical_result(
                        rep_result.value, forms[rep]
                    )
                    results[i] = self._materialize(
                        requests[i], form, value, cached=True, elapsed=0.0
                    )
                else:
                    # Failures are replicated, not served from the
                    # cache: no hit counters, but every failed request
                    # counts as an error (requests = solved + hits +
                    # errors must hold for the operator report).
                    self.metrics.record_error(
                        timeout=bool(rep_result.stats.get("timeout"))
                    )
                    results[i] = EngineResult(
                        request=requests[i],
                        error=rep_result.error,
                        cached=False,
                        elapsed=0.0,
                        stats=dict(rep_result.stats),
                    )

            for result in results:
                self.metrics.record_request(cached=result.cached)
        return results  # type: ignore[return-value]

    # -- internals ---------------------------------------------------------

    def _learning_target(self, request):
        """(state, spec) when this request should feed the run ledger.

        Only concrete (non-meta) multi-task switch-cost solvers produce
        directly attributable rows; ``portfolio`` requests contribute
        through their shipped decision records instead.
        """
        if not self.portfolio_learn or request.kind != "multi":
            return None
        try:
            spec = self.registry.get(request.solver)
        except KeyError:
            return None
        if TAG_META in spec.tags or spec.cost_model != "switch":
            return None
        return self._resolve_portfolio_state(), spec

    def _resolve_portfolio_state(self):
        if self.portfolio_state is not None:
            return self.portfolio_state
        from repro.portfolio.engine import default_state

        return default_state()

    def _learn_solve(self, request, value, elapsed):
        """Feed the portfolio plane from one successful solve.

        A ``portfolio`` result carries its own decision block: absorb
        the attempt records when the solve ran in another process (the
        solver already recorded them locally otherwise) and bump the
        decision counters.  Any other concrete multi-task solve becomes
        one warmup ledger row.
        """
        if not self.portfolio_learn or request.kind != "multi":
            return
        pstats = (getattr(value, "stats", None) or {}).get("portfolio")
        if pstats is not None:
            rows = pstats.get("records", ())
            if pstats.get("recorded_pid") != os.getpid():
                self._resolve_portfolio_state().absorb(rows)
            self.metrics.record_portfolio(
                solver=pstats.get("chosen", "?"),
                seconds=float(pstats.get("decision_s", elapsed)),
                raced=pstats.get("mode") == "race",
                explored=bool(pstats.get("explore")),
                records=len(rows),
            )
            return
        target = self._learning_target(request)
        if target is None:
            return
        from repro.portfolio.features import multi_features
        from repro.portfolio.records import RunRecord

        state, spec = target
        state.record(RunRecord(
            features=multi_features(request.system, request.seqs),
            solver=spec.name,
            runtime=elapsed,
            cost=value.cost,
            ok=True,
        ))
        self.metrics.record_portfolio_rows(1)

    def _learn_failure(self, request, error, timed_out, elapsed):
        """Record one failed concrete solve as a ledger failure row."""
        target = self._learning_target(request)
        if target is None:
            return
        from repro.portfolio.features import multi_features
        from repro.portfolio.records import RunRecord

        state, spec = target
        state.record(RunRecord(
            features=multi_features(request.system, request.seqs),
            solver=spec.name,
            runtime=elapsed,
            ok=False,
            error="timeout" if timed_out else error,
        ))
        self.metrics.record_portfolio_rows(1)

    def _materialize(self, request, form, canonical_value, *, cached, elapsed):
        return EngineResult(
            request=request,
            value=from_canonical_result(canonical_value, form),
            cached=cached,
            elapsed=elapsed,
        )

    def _packed_for(self, request: SolveRequest) -> PackedProblem | None:
        """Get-or-compile the request's lane-packed problem.

        Returns None for single-task requests, for solvers that do not
        declare :data:`~repro.engine.registry.TAG_PACKED`, and for
        requests whose compile fails (the solver then surfaces the
        configuration error itself, with its own message).
        """
        if request.kind != "multi":
            return None
        try:
            spec = self.registry.get(request.solver)
        except KeyError:
            return None
        if TAG_PACKED not in spec.tags:
            return None
        key = packed_problem_key(request)
        hit = self._packed_cache.get(key)
        if hit is not MISS:
            self.metrics.record_packed(reused=True)
            return hit
        try:
            packed = PackedProblem.compile(
                request.system, request.seqs, request.model
            )
        except Exception:  # noqa: BLE001 - solver reports the real error
            return None
        self._packed_cache.put(key, packed)
        self.metrics.record_packed(reused=False)
        return packed

    def _publish_packed(self, packed):
        """Pick the fan-out transport for each compiled problem.

        Returns ``(ship, segments, shared_bytes)``: per-index payload
        objects (the problem itself or a :class:`_SharedPacked`
        handle), the shared-memory segments the caller must unlink
        after the pool drains, and the lane bytes resident in them.
        """
        ship = dict(packed)
        segments: list[shared_memory.SharedMemory] = []
        shared_bytes = 0
        if self.shared_lanes is False:
            return ship, segments, shared_bytes
        by_id: dict[int, object] = {}
        for i, problem in packed.items():
            if problem is None:
                continue
            key = id(problem)
            if key not in by_id:
                nbytes = problem.lanes.nbytes
                if (
                    self.shared_lanes is None
                    and nbytes < SHARED_LANES_MIN_BYTES
                ):
                    by_id[key] = problem
                else:
                    try:
                        handle, shm = _SharedPacked.publish(problem)
                    except Exception:  # pragma: no cover - no /dev/shm etc.
                        by_id[key] = problem
                    else:
                        segments.append(shm)
                        shared_bytes += nbytes
                        by_id[key] = handle
            ship[i] = by_id[key]
        return ship, segments, shared_bytes

    def _solve_unique(self, requests, indices, workers):
        """Solve the deduplicated misses; returns index → outcome tuple."""
        if not indices:
            return {}
        packed = {i: self._packed_for(requests[i]) for i in indices}
        if workers == 1 or len(indices) == 1:
            return {
                i: _execute(self.registry, requests[i], self.timeout, packed[i])
                for i in indices
            }
        # Always ship the registry: under spawn-start platforms a worker
        # rebuilding default_registry() would miss solvers the caller
        # registered into it after import.  Registries pickle by spec
        # reference, so this is cheap for the built-in zoo.
        registry_arg = self.registry
        nproc = min(workers, len(indices))
        chunk = self.chunk_size or max(1, math.ceil(len(indices) / (nproc * 4)))
        ship, segments, shared_bytes = self._publish_packed(packed)
        payloads = []
        payload_sizes: dict[int, int] = {}  # id(obj) -> pickled bytes
        seq_sizes: dict[int, int] = {}  # id(seq) -> pickled masks bytes
        shipped_bytes = 0
        # Under fork, workers inherit every global-arena row interned
        # before the pool spawns (all payloads are built right here,
        # before Pool creation), so arena chunks ship ids and *no*
        # table.  Spawn-start platforms fall back to the per-chunk
        # table, which is self-contained.
        use_arena = multiprocessing.get_start_method() == "fork"
        for lo in range(0, len(indices), chunk):
            items = [
                (i, requests[i], ship[i]) for i in indices[lo : lo + chunk]
            ]
            interned = None
            if self.intern_masks:
                interned, table_masks, intern_stats = intern_chunk(
                    items, size_cache=seq_sizes, arena=use_arena
                )
                # Interning only ships when it actually shrinks the
                # payload: a chunk of mostly-distinct masks (random
                # workloads) would pay the index overhead for nothing.
                if intern_stats.bytes_saved <= 0:
                    interned = None
            if interned is not None:
                self.metrics.record_interning(intern_stats)
                items = interned
                payloads.append(
                    (items, self.timeout, registry_arg, table_masks)
                )
            else:
                payloads.append((items, self.timeout, registry_arg))
            # Per-chunk serialization cost of the packed payloads: each
            # distinct object pickles once per chunk (pickle memoizes
            # repeats within one payload).
            seen: set[int] = set()
            for item in items:
                obj = item[2]
                if obj is None or id(obj) in seen:
                    continue
                seen.add(id(obj))
                if id(obj) not in payload_sizes:
                    payload_sizes[id(obj)] = len(
                        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                shipped_bytes += payload_sizes[id(obj)]
        self.metrics.record_shipment(shipped=shipped_bytes, shared=shared_bytes)
        out = {}
        try:
            with multiprocessing.Pool(processes=nproc) as pool:
                for chunk_result in pool.imap_unordered(_solve_chunk, payloads):
                    for index, value, error, timed_out, elapsed in chunk_result:
                        out[index] = (value, error, timed_out, elapsed)
        finally:
            for shm in segments:
                shm.close()
                shm.unlink()
        return out
