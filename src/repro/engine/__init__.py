"""repro.engine — batch & streaming serving layer over the solver zoo.

The core library answers one question at a time; the engine turns it
into a service.  Components (each its own module):

* :mod:`repro.engine.registry` — declarative solver registry with
  capability tags; the single source of truth for "which solver can do
  what" (used by auto-dispatch, the CLI and the batch executor);
* :mod:`repro.engine.requests` — :class:`SolveRequest` /
  :class:`EngineResult` value types plus structural canonicalization
  (task permutations, renamed switches and repeated traces share one
  cache key);
* :mod:`repro.engine.cache` — LRU result cache with hit/miss stats;
* :mod:`repro.engine.batch` — :class:`BatchEngine`: dedup, cache,
  and fan-out across :mod:`multiprocessing` workers with per-request
  timeouts;
* :mod:`repro.engine.stream` — :class:`StreamSession` (step-by-step or
  chunked requirements into the online policies, incremental cost
  accounting on lane-packed cursor state) and :class:`StreamHub`
  (many concurrent sessions multiplexed under session ids, aggregate
  streaming metrics);
* :mod:`repro.engine.metrics` — throughput/latency/cache counters
  (surfaced by the ``repro batch`` CLI subcommand).

Quickstart::

    from repro.engine import BatchEngine, SolveRequest

    engine = BatchEngine(workers=2)
    requests = [SolveRequest.multi(system, seqs, solver="mt_greedy")
                for system, seqs in instances]
    for res in engine.solve_batch(requests):
        print(res.value.solver, res.cost, "cached" if res.cached else "")
    print(engine.metrics.format_report(engine.cache.stats))
"""

from repro.engine.batch import BatchEngine, SolveTimeout
from repro.engine.cache import MISS, CacheStats, ResultCache
from repro.engine.intern import (
    InternStats,
    InternedSeq,
    MaskTable,
    intern_chunk,
    restore_chunk,
)
from repro.engine.metrics import EngineMetrics, LatencyStats
from repro.engine.registry import (
    TAG_PACKED,
    SolverRegistry,
    SolverSpec,
    default_registry,
)
from repro.engine.requests import (
    CanonicalForm,
    EngineResult,
    SolveRequest,
    canonical_key,
    canonicalize,
    packed_problem_key,
)
from repro.engine.stream import (
    StreamBatch,
    StreamEvent,
    StreamHub,
    StreamSession,
)

__all__ = [
    "BatchEngine",
    "SolveTimeout",
    "MISS",
    "CacheStats",
    "ResultCache",
    "EngineMetrics",
    "LatencyStats",
    "SolverRegistry",
    "TAG_PACKED",
    "SolverSpec",
    "default_registry",
    "CanonicalForm",
    "EngineResult",
    "SolveRequest",
    "canonical_key",
    "packed_problem_key",
    "canonicalize",
    "StreamBatch",
    "StreamEvent",
    "StreamHub",
    "StreamSession",
]
