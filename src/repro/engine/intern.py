"""Canonical mask interning for worker-bound request payloads.

The shared-memory fan-out (:mod:`repro.engine.batch`) stopped the
*compiled lane matrices* from being pickled into every worker chunk;
the raw request payloads still were: every
:class:`~repro.core.context.RequirementSequence` pickles its full
``masks`` tuple of arbitrary-precision ints, once per chunk, even
though real traces are highly repetitive (periodic apps revisit a
handful of distinct requirements) and batches repeat whole traces
across requests.

Interning canonicalizes that redundancy away at the chunk boundary:

* one :class:`MaskTable` per chunk payload holds each *distinct* mask
  once;
* every sequence ships as an :class:`InternedSeq` — its universe plus
  a ``uint32`` index row into the table (5 orders of magnitude
  smaller than re-pickling a >64-bit mask per step);
* :func:`intern_chunk` rewrites a chunk's requests (single- and
  multi-task payloads both), :func:`restore_chunk` rebuilds
  bit-identical requests on the worker before any solver runs.

Restoration is exact — the same mask ints, the same tuple shapes — so
results cannot change; only serialized bytes do.  Both sides of the
trade are measured (the pickled size of the masks that *would* have
shipped vs the table + index rows that did) and land in the engine
metrics as the ``mask interning`` row.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, replace

import numpy as np

from repro.core.context import RequirementSequence

__all__ = [
    "InternStats",
    "InternedSeq",
    "MaskTable",
    "intern_chunk",
    "restore_chunk",
]


class MaskTable:
    """Append-only table of distinct requirement masks.

    ``intern`` maps a mask to its stable index (first-seen order), so
    equal masks — within one sequence, across sequences, across
    requests — share one table slot.
    """

    __slots__ = ("_index", "masks")

    def __init__(self):
        self._index: dict[int, int] = {}
        self.masks: list[int] = []

    def intern(self, mask: int) -> int:
        idx = self._index.get(mask)
        if idx is None:
            idx = len(self.masks)
            self._index[mask] = idx
            self.masks.append(mask)
        return idx

    def __len__(self) -> int:
        return len(self.masks)


@dataclass(frozen=True)
class InternedSeq:
    """Wire stand-in for one :class:`RequirementSequence`.

    ``blob`` is the step-order row of table indices, serialized with
    the narrowest unsigned dtype the table size allows (1 byte per
    step for ≤256 distinct masks — the common periodic-trace case);
    the universe object rides along as-is (requests of one batch
    overwhelmingly share a universe *instance*, which pickle memoizes
    once per payload).
    """

    universe: object
    dtype: str  # "<u1" | "<u2" | "<u4"
    blob: bytes

    def restore(self, masks: tuple[int, ...]) -> RequirementSequence:
        ids = np.frombuffer(self.blob, dtype=self.dtype)
        return RequirementSequence(
            self.universe, tuple(masks[i] for i in ids.tolist())
        )


@dataclass(frozen=True)
class InternStats:
    """Serialization accounting of one interned chunk."""

    masks_total: int
    masks_unique: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after


def _id_dtype(table_size: int) -> str:
    if table_size <= 1 << 8:
        return "<u1"
    if table_size <= 1 << 16:
        return "<u2"
    return "<u4"


def intern_chunk(items, *, size_cache: dict | None = None):
    """Rewrite one worker chunk's ``(index, request, packed)`` triples.

    Returns ``(interned_items, table_masks, stats)``: the items with
    every requirement sequence replaced by an :class:`InternedSeq`,
    the table to ship alongside them, and the byte accounting.
    Requests without sequences pass through untouched.

    Two passes: the first interns every sequence into id lists while
    the table grows; the second serializes the id rows with the
    narrowest dtype the *final* table size allows.

    ``size_cache`` memoizes the ``bytes_before`` measurement (one
    ``pickle.dumps`` of each distinct masks tuple) under ``id(seq)``.
    The caller must keep the sequences alive for the cache's lifetime
    — :class:`~repro.engine.batch.BatchEngine` passes one dict per
    ``solve_batch`` call, whose request list pins every id — so a
    sequence is measured at most once per batch, not once per chunk.
    """
    table = MaskTable()
    staged = []  # (index, request, packed, seqs or None)
    seq_ids: dict[int, list[int]] = {}  # id(seq) -> table-id row
    if size_cache is None:
        size_cache = {}
    masks_total = 0
    bytes_before = 0
    for index, request, packed in items:
        if request.kind == "single" and request.seq is not None:
            seqs = (request.seq,)
        elif request.kind == "multi" and request.seqs:
            seqs = request.seqs
        else:  # pragma: no cover - malformed request; ship untouched
            staged.append((index, request, packed, None))
            continue
        for seq in seqs:
            if id(seq) not in seq_ids:
                seq_ids[id(seq)] = [table.intern(m) for m in seq.masks]
                if id(seq) not in size_cache:
                    size_cache[id(seq)] = len(pickle.dumps(
                        seq.masks, protocol=pickle.HIGHEST_PROTOCOL
                    ))
                bytes_before += size_cache[id(seq)]
            masks_total += len(seq.masks)
        staged.append((index, request, packed, seqs))
    dtype = _id_dtype(len(table))
    interned_cache: dict[int, InternedSeq] = {}

    def _interned(seq) -> InternedSeq:
        cached = interned_cache.get(id(seq))
        if cached is None:
            blob = np.asarray(seq_ids[id(seq)], dtype=dtype).tobytes()
            cached = InternedSeq(
                universe=seq.universe, dtype=dtype, blob=blob
            )
            interned_cache[id(seq)] = cached
        return cached

    out = []
    for index, request, packed, seqs in staged:
        if seqs is None:  # pragma: no cover - malformed request
            out.append((index, request, packed))
        elif request.kind == "single":
            lean = replace(request, seq=None)
            out.append((index, lean, packed, (_interned(seqs[0]), None)))
        else:
            lean = replace(request, seqs=None)
            out.append((
                index,
                lean,
                packed,
                (None, tuple(_interned(s) for s in seqs)),
            ))
    table_masks = tuple(table.masks)
    bytes_after = len(
        pickle.dumps(table_masks, protocol=pickle.HIGHEST_PROTOCOL)
    ) + sum(
        len(s.blob) + 32  # bytes-object pickle overhead
        for s in interned_cache.values()
    )
    stats = InternStats(
        masks_total=masks_total,
        masks_unique=len(table),
        bytes_before=bytes_before,
        bytes_after=bytes_after,
    )
    return out, table_masks, stats


def restore_chunk(items, table_masks: tuple[int, ...]):
    """Worker side: rebuild the original ``(index, request, packed)``
    triples, bit-identical to what :func:`intern_chunk` consumed."""
    out = []
    restored: dict[int, RequirementSequence] = {}  # id(InternedSeq)

    def _restore(interned: InternedSeq) -> RequirementSequence:
        seq = restored.get(id(interned))
        if seq is None:
            seq = interned.restore(table_masks)
            restored[id(interned)] = seq
        return seq

    for item in items:
        if len(item) == 3:  # passed through untouched
            out.append(item)
            continue
        index, lean, packed, (single, multi) = item
        if single is not None:
            request = replace(lean, seq=_restore(single))
        else:
            request = replace(lean, seqs=tuple(_restore(s) for s in multi))
        out.append((index, request, packed))
    return out
