"""Canonical mask interning for worker-bound request payloads.

The shared-memory fan-out (:mod:`repro.engine.batch`) stopped the
*compiled lane matrices* from being pickled into every worker chunk;
the raw request payloads still were: every
:class:`~repro.core.context.RequirementSequence` pickles its full
``masks`` tuple of arbitrary-precision ints, once per chunk, even
though real traces are highly repetitive (periodic apps revisit a
handful of distinct requirements) and batches repeat whole traces
across requests.

Interning canonicalizes that redundancy away at the chunk boundary:

* one :class:`MaskTable` per chunk payload holds each *distinct* mask
  once;
* every sequence ships as an :class:`InternedSeq` — its universe plus
  a ``uint32`` index row into the table (5 orders of magnitude
  smaller than re-pickling a >64-bit mask per step);
* :func:`intern_chunk` rewrites a chunk's requests (single- and
  multi-task payloads both), :func:`restore_chunk` rebuilds
  bit-identical requests on the worker before any solver runs.

Restoration is exact — the same mask ints, the same tuple shapes — so
results cannot change; only serialized bytes do.  Both sides of the
trade are measured (the pickled size of the masks that *would* have
shipped vs the table + index rows that did) and land in the engine
metrics as the ``mask interning`` row.

Protocol v2 promoted the per-chunk :class:`MaskTable` into a
per-universe **global intern arena** (:class:`MaskArena`, one per
universe width via :func:`arena_for`): an append-only, thread-safe
table of distinct lane rows whose *epoch* is its row count.  Epochs
only grow, so any party that has observed epoch ``e`` can resolve every
id below ``e`` forever:

* the serve feed path interns each connection's new rows once and
  ships :class:`InternedChunk` ids through the shard queues;
* process shards keep a replica arena, synced by shipping
  ``(upto, new_rows)`` deltas over the pipe (``extend_to``) — steady
  state ships ids only;
* the batch engine interns worker payloads against the arena
  (``intern_chunk(..., arena=True)``); under the ``fork`` start method
  children inherit every row interned before the pool spawned, so the
  table itself never crosses the process boundary at all.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.core.context import RequirementSequence
from repro.core.packed import lane_count

__all__ = [
    "InternStats",
    "InternedChunk",
    "InternedSeq",
    "MaskArena",
    "MaskTable",
    "arena_for",
    "arena_stats",
    "intern_chunk",
    "reset_arenas",
    "restore_chunk",
]


class MaskTable:
    """Append-only table of distinct requirement masks.

    ``intern`` maps a mask to its stable index (first-seen order), so
    equal masks — within one sequence, across sequences, across
    requests — share one table slot.
    """

    __slots__ = ("_index", "masks")

    def __init__(self):
        self._index: dict[int, int] = {}
        self.masks: list[int] = []

    def intern(self, mask: int) -> int:
        idx = self._index.get(mask)
        if idx is None:
            idx = len(self.masks)
            self._index[mask] = idx
            self.masks.append(mask)
        return idx

    def __len__(self) -> int:
        return len(self.masks)


class MaskArena:
    """Per-universe global intern arena of distinct lane rows.

    Append-only and thread-safe: rows are ``(L,)`` little-endian uint64
    lane vectors (``L = ceil(width/64)``), each stored once at a stable
    ``uint32`` id in first-seen order.  The arena's **epoch** is its
    row count; epochs only grow, so an id is valid forever once any
    observer has seen an epoch above it.  ``snapshot_since``/
    ``extend_to`` are the replica-sync pair process shards use:
    the parent ships the rows appended since the shard's last synced
    epoch, the replica appends exactly the tail it is missing (rows it
    inherited on fork are skipped, never duplicated).
    """

    __slots__ = ("width", "lanes_per_row", "_lock", "_ids", "_buf", "_n")

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("universe width must be at least 1")
        self.width = int(width)
        self.lanes_per_row = lane_count(width)
        self._lock = threading.Lock()
        self._ids: dict[bytes, int] = {}
        self._buf = np.empty((64, self.lanes_per_row), dtype=np.uint64)
        self._n = 0

    @property
    def epoch(self) -> int:
        """Current row count (the arena's logical clock)."""
        with self._lock:
            return self._n

    def __len__(self) -> int:
        return self.epoch

    def _grow(self, need: int) -> None:
        cap = self._buf.shape[0]
        if self._n + need <= cap:
            return
        new_cap = max(cap * 2, self._n + need)
        buf = np.empty((new_cap, self.lanes_per_row), dtype=np.uint64)
        buf[: self._n] = self._buf[: self._n]
        self._buf = buf

    def _append_locked(self, key: bytes, row: np.ndarray) -> int:
        self._grow(1)
        idx = self._n
        self._buf[idx] = row
        self._ids[key] = idx
        self._n += 1
        return idx

    def _check_lanes(self, lanes) -> np.ndarray:
        lanes = np.ascontiguousarray(lanes, dtype="<u8")
        if lanes.ndim != 2 or lanes.shape[1] != self.lanes_per_row:
            raise ValueError(
                f"expected (C, {self.lanes_per_row}) lane rows for a "
                f"{self.width}-switch arena, got shape {lanes.shape}"
            )
        return lanes

    def intern_rows(self, lanes) -> np.ndarray:
        """Intern ``(C, L)`` lane rows; returns their ``(C,)`` u32 ids."""
        lanes = self._check_lanes(lanes)
        out = np.empty(lanes.shape[0], dtype=np.uint32)
        with self._lock:
            for j in range(lanes.shape[0]):
                key = lanes[j].tobytes()
                idx = self._ids.get(key)
                if idx is None:
                    idx = self._append_locked(key, lanes[j])
                out[j] = idx
        return out

    def intern_masks(self, masks) -> np.ndarray:
        """Intern int requirement masks; returns their u32 ids."""
        nbytes = self.lanes_per_row * 8
        masks = list(masks)
        out = np.empty(len(masks), dtype=np.uint32)
        with self._lock:
            for j, mask in enumerate(masks):
                if mask < 0 or mask >> self.width:
                    raise ValueError(
                        f"mask {mask:#x} out of the {self.width}-switch "
                        f"universe"
                    )
                key = int(mask).to_bytes(nbytes, "little")
                idx = self._ids.get(key)
                if idx is None:
                    row = np.frombuffer(key, dtype="<u8").astype(np.uint64)
                    idx = self._append_locked(key, row)
                out[j] = idx
        return out

    def rows(self, ids) -> np.ndarray:
        """Gather rows by id into a fresh ``(k, L)`` uint64 matrix.

        Raises ``KeyError`` on any id at or above the current epoch —
        the server maps a desynced client's ids to a protocol error.
        """
        ids = np.ascontiguousarray(ids)
        with self._lock:
            if ids.size and int(ids.max()) >= self._n:
                raise KeyError(
                    f"arena id {int(ids.max())} is beyond epoch {self._n}"
                )
            return self._buf[ids.astype(np.intp, copy=False)]

    def masks_for(self, ids) -> tuple[int, ...]:
        """Resolve ids back to int masks (bit-identical round trip)."""
        rows = self.rows(ids).astype("<u8", copy=False)
        return tuple(
            int.from_bytes(rows[j].tobytes(), "little")
            for j in range(rows.shape[0])
        )

    def snapshot_since(self, epoch: int) -> tuple[int, np.ndarray]:
        """Atomically read ``(current_epoch, rows[epoch:])`` (copies)."""
        with self._lock:
            if not 0 <= epoch <= self._n:
                raise ValueError(
                    f"epoch {epoch} out of range [0, {self._n}]"
                )
            return self._n, self._buf[epoch : self._n].copy()

    def extend_to(self, upto: int, rows) -> None:
        """Replica side: append the delta ``rows`` ending at epoch
        ``upto``, skipping any prefix this arena already holds (rows
        inherited on fork overlap the first delta)."""
        rows = self._check_lanes(rows)
        base = upto - rows.shape[0]
        if base < 0:
            raise ValueError("delta is longer than its target epoch")
        with self._lock:
            if base > self._n:
                raise ValueError(
                    f"arena gap: delta starts at epoch {base}, replica "
                    f"is at {self._n}"
                )
            if upto <= self._n:
                return
            for j in range(self._n - base, rows.shape[0]):
                self._append_locked(rows[j].tobytes(), rows[j])


_ARENAS: dict[int, MaskArena] = {}
_ARENAS_LOCK = threading.Lock()


def arena_for(width: int) -> MaskArena:
    """The process-global arena of one universe width (created once)."""
    width = int(width)
    with _ARENAS_LOCK:
        arena = _ARENAS.get(width)
        if arena is None:
            arena = _ARENAS[width] = MaskArena(width)
        return arena


def reset_arenas() -> None:
    """Drop every global arena (tests; never during live serving —
    shipped ids stay valid only while their arena lives)."""
    with _ARENAS_LOCK:
        _ARENAS.clear()


def arena_stats() -> dict[int, int]:
    """``{width: epoch}`` of every live global arena (telemetry)."""
    with _ARENAS_LOCK:
        arenas = dict(_ARENAS)
    return {width: len(arena) for width, arena in sorted(arenas.items())}


@dataclass(frozen=True)
class InternedChunk:
    """One feed chunk as global-arena row ids.

    The serve ingest path's zero-re-encode form: the server interns a
    connection's new rows once at stage time, and everything downstream
    — shard queues, process-shard pipes, the hub's chunk log — carries
    ``(C,)`` ids instead of ``(C, L)`` lane rows.  ``resolve()`` gathers
    the lane matrix back from the width's arena on the worker that
    actually advances the cursor.
    """

    width: int
    ids: np.ndarray  # (C,) uint32 arena row ids

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def resolve(self) -> np.ndarray:
        """Gather the ``(C, L)`` uint64 lane matrix (a fresh copy)."""
        return arena_for(self.width).rows(self.ids)


@dataclass(frozen=True)
class InternedSeq:
    """Wire stand-in for one :class:`RequirementSequence`.

    ``blob`` is the step-order row of table indices, serialized with
    the narrowest unsigned dtype the table size allows (1 byte per
    step for ≤256 distinct masks — the common periodic-trace case);
    the universe object rides along as-is (requests of one batch
    overwhelmingly share a universe *instance*, which pickle memoizes
    once per payload).
    """

    universe: object
    dtype: str  # "<u1" | "<u2" | "<u4"
    blob: bytes

    def restore(self, masks: tuple[int, ...] | None) -> RequirementSequence:
        """Rebuild the sequence from its id row.

        ``masks`` is the chunk's shipped table — or ``None`` for
        arena-interned chunks, whose ids resolve against the global
        arena of the sequence's universe width (rows the worker
        inherited on fork, or extended to over a shard pipe).
        """
        ids = np.frombuffer(self.blob, dtype=self.dtype)
        if masks is None:
            return RequirementSequence(
                self.universe,
                arena_for(self.universe.size).masks_for(ids),
            )
        return RequirementSequence(
            self.universe, tuple(masks[i] for i in ids.tolist())
        )


@dataclass(frozen=True)
class InternStats:
    """Serialization accounting of one interned chunk."""

    masks_total: int
    masks_unique: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after


def _id_dtype(table_size: int) -> str:
    if table_size <= 1 << 8:
        return "<u1"
    if table_size <= 1 << 16:
        return "<u2"
    return "<u4"


def intern_chunk(items, *, size_cache: dict | None = None,
                 arena: bool = False):
    """Rewrite one worker chunk's ``(index, request, packed)`` triples.

    Returns ``(interned_items, table_masks, stats)``: the items with
    every requirement sequence replaced by an :class:`InternedSeq`,
    the table to ship alongside them, and the byte accounting.
    Requests without sequences pass through untouched.

    Two passes: the first interns every sequence into id lists while
    the table grows; the second serializes the id rows with the
    narrowest dtype the *final* table size allows.

    ``arena=True`` interns against the per-universe **global** arenas
    (:func:`arena_for`) instead of a fresh per-chunk table and returns
    ``table_masks=None``: nothing to ship, the worker resolves ids from
    the arena it inherited on fork.  Masks already interned by an
    earlier batch (or the serve path) cost a dict hit, not a new row —
    the cross-batch dedup the per-chunk table could never do.

    ``size_cache`` memoizes the ``bytes_before`` measurement (one
    ``pickle.dumps`` of each distinct masks tuple) under ``id(seq)``.
    The caller must keep the sequences alive for the cache's lifetime
    — :class:`~repro.engine.batch.BatchEngine` passes one dict per
    ``solve_batch`` call, whose request list pins every id — so a
    sequence is measured at most once per batch, not once per chunk.
    """
    table = None if arena else MaskTable()
    staged = []  # (index, request, packed, seqs or None)
    seq_ids: dict[int, list[int]] = {}  # id(seq) -> table/arena-id row
    if size_cache is None:
        size_cache = {}
    masks_total = 0
    bytes_before = 0
    arena_unique: set[tuple[int, int]] = set()  # (width, id) across seqs
    for index, request, packed in items:
        if request.kind == "single" and request.seq is not None:
            seqs = (request.seq,)
        elif request.kind == "multi" and request.seqs:
            seqs = request.seqs
        else:  # pragma: no cover - malformed request; ship untouched
            staged.append((index, request, packed, None))
            continue
        for seq in seqs:
            if id(seq) not in seq_ids:
                if arena:
                    width = seq.universe.size
                    ids = arena_for(width).intern_masks(seq.masks)
                    seq_ids[id(seq)] = ids
                    arena_unique.update(
                        (width, i) for i in np.unique(ids).tolist()
                    )
                else:
                    seq_ids[id(seq)] = [table.intern(m) for m in seq.masks]
                if id(seq) not in size_cache:
                    size_cache[id(seq)] = len(pickle.dumps(
                        seq.masks, protocol=pickle.HIGHEST_PROTOCOL
                    ))
                bytes_before += size_cache[id(seq)]
            masks_total += len(seq.masks)
        staged.append((index, request, packed, seqs))
    chunk_dtype = None if arena else _id_dtype(len(table))
    interned_cache: dict[int, InternedSeq] = {}

    def _interned(seq) -> InternedSeq:
        cached = interned_cache.get(id(seq))
        if cached is None:
            ids = seq_ids[id(seq)]
            if arena:
                # Narrowest dtype the row's own ids allow — stable under
                # concurrent arena growth (depends on content, not the
                # arena's current size).
                top = int(np.max(ids)) + 1 if len(ids) else 1
                dtype = _id_dtype(top)
            else:
                dtype = chunk_dtype
            blob = np.asarray(ids, dtype=dtype).tobytes()
            cached = InternedSeq(
                universe=seq.universe, dtype=dtype, blob=blob
            )
            interned_cache[id(seq)] = cached
        return cached

    out = []
    for index, request, packed, seqs in staged:
        if seqs is None:  # pragma: no cover - malformed request
            out.append((index, request, packed))
        elif request.kind == "single":
            lean = replace(request, seq=None)
            out.append((index, lean, packed, (_interned(seqs[0]), None)))
        else:
            lean = replace(request, seqs=None)
            out.append((
                index,
                lean,
                packed,
                (None, tuple(_interned(s) for s in seqs)),
            ))
    if arena:
        table_masks = None
        table_bytes = 0
        unique = len(arena_unique)
    else:
        table_masks = tuple(table.masks)
        table_bytes = len(
            pickle.dumps(table_masks, protocol=pickle.HIGHEST_PROTOCOL)
        )
        unique = len(table)
    bytes_after = table_bytes + sum(
        len(s.blob) + 32  # bytes-object pickle overhead
        for s in interned_cache.values()
    )
    stats = InternStats(
        masks_total=masks_total,
        masks_unique=unique,
        bytes_before=bytes_before,
        bytes_after=bytes_after,
    )
    return out, table_masks, stats


def restore_chunk(items, table_masks: tuple[int, ...] | None):
    """Worker side: rebuild the original ``(index, request, packed)``
    triples, bit-identical to what :func:`intern_chunk` consumed.
    ``table_masks=None`` marks an arena-interned chunk (ids resolve
    against the worker's inherited global arenas)."""
    out = []
    restored: dict[int, RequirementSequence] = {}  # id(InternedSeq)

    def _restore(interned: InternedSeq) -> RequirementSequence:
        seq = restored.get(id(interned))
        if seq is None:
            seq = interned.restore(table_masks)
            restored[id(interned)] = seq
        return seq

    for item in items:
        if len(item) == 3:  # passed through untouched
            out.append(item)
            continue
        index, lean, packed, (single, multi) = item
        if single is not None:
            request = replace(lean, seq=_restore(single))
        else:
            request = replace(lean, seqs=tuple(_restore(s) for s in multi))
        out.append((index, request, packed))
    return out
