"""Throughput, latency and cache counters for the serving engine.

One :class:`EngineMetrics` instance rides along with a
:class:`~repro.engine.batch.BatchEngine` (and optionally a stream
session) and accumulates everything an operator wants on one screen:
request counts, error/timeout counts, solve-time totals, wall time of
the batches, cache hit rate, and derived requests/second.  Counters are
plain and lock-protected — cheap enough to leave on permanently.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping
from contextlib import contextmanager

from repro.engine.cache import CacheStats
from repro.util.texttable import format_table

__all__ = ["EngineMetrics", "LatencyStats"]


class LatencyStats:
    """Streaming min/max/mean/total of per-request solve latencies."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }


class EngineMetrics:
    """Aggregated engine counters; all mutators are thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.solved = 0
        self.cache_hits = 0
        self.errors = 0
        self.timeouts = 0
        self.batches = 0
        self.wall_time = 0.0
        self.latency = LatencyStats()
        self.delta_applies = 0
        self.delta_full_evals = 0
        self.packed_compiles = 0
        self.packed_reuses = 0
        self.packed_bytes_shipped = 0
        self.packed_bytes_shared = 0
        self.intern_masks_total = 0
        self.intern_masks_unique = 0
        self.intern_bytes_before = 0
        self.intern_bytes_after = 0
        self.stream_sessions = 0
        self.stream_steps = 0
        self.stream_hypers = 0
        self.stream_time = 0.0

    # -- recording ---------------------------------------------------------

    def record_request(self, *, cached: bool) -> None:
        with self._lock:
            self.requests += 1
            if cached:
                self.cache_hits += 1

    def record_solve(self, seconds: float) -> None:
        with self._lock:
            self.solved += 1
            self.latency.observe(seconds)

    def record_error(self, *, timeout: bool = False) -> None:
        with self._lock:
            self.errors += 1
            if timeout:
                self.timeouts += 1

    def record_evaluator_stats(self, stats: Mapping) -> None:
        """Aggregate a solver result's evaluator counters.

        Solvers backed by :mod:`repro.core.delta` report
        ``delta_applies`` (incremental/batched evaluations) and
        ``delta_full_evals`` (full-evaluation fallbacks) in their
        ``stats``; the engine folds them in here so the operator report
        shows how much of the fleet's evaluation work was incremental.
        """
        applies = int(stats.get("delta_applies", 0) or 0)
        full = int(stats.get("delta_full_evals", 0) or 0)
        if applies or full:
            with self._lock:
                self.delta_applies += applies
                self.delta_full_evals += full

    def record_packed(self, *, reused: bool) -> None:
        """Count one PackedProblem request by the batch engine.

        ``reused=False`` is a fresh compile, ``reused=True`` a hit in
        the engine's per-problem compile cache — together they show how
        often the lane-packed representation was shared across
        structurally-deduped requests.
        """
        with self._lock:
            if reused:
                self.packed_reuses += 1
            else:
                self.packed_compiles += 1

    def record_shipment(self, *, shipped: int = 0, shared: int = 0) -> None:
        """Count fan-out payload bytes of the batch engine.

        ``shipped`` are bytes serialized into worker chunk payloads
        (pickled problems or shared-memory handles); ``shared`` are
        lane-matrix bytes placed in :mod:`multiprocessing.shared_memory`
        segments instead of being pickled per chunk — together they
        show what the zero-copy fan-out saves.
        """
        if shipped or shared:
            with self._lock:
                self.packed_bytes_shipped += int(shipped)
                self.packed_bytes_shared += int(shared)

    def record_interning(self, stats) -> None:
        """Count one mask-interned worker chunk payload.

        ``stats`` is an :class:`~repro.engine.intern.InternStats`:
        total vs distinct masks in the chunk, and the pickled bytes the
        sequences would have shipped vs what the table + index rows
        did — the ``mask interning`` report row derives the savings.
        """
        with self._lock:
            self.intern_masks_total += stats.masks_total
            self.intern_masks_unique += stats.masks_unique
            self.intern_bytes_before += stats.bytes_before
            self.intern_bytes_after += stats.bytes_after

    def record_stream_open(self) -> None:
        """Count one streaming session opened on a hub."""
        with self._lock:
            self.stream_sessions += 1

    def record_stream(
        self, *, steps: int, hypers: int = 0, seconds: float = 0.0
    ) -> None:
        """Aggregate one streaming feed call (single step or chunk)."""
        with self._lock:
            self.stream_steps += int(steps)
            self.stream_hypers += int(hypers)
            self.stream_time += float(seconds)

    @contextmanager
    def batch_timer(self):
        """Time one batch; adds to ``wall_time`` and ``batches``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.batches += 1
                self.wall_time += elapsed

    # -- derived -----------------------------------------------------------

    @property
    def throughput(self) -> float:
        """Requests per second of batch wall time (0.0 when idle)."""
        return self.requests / self.wall_time if self.wall_time else 0.0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def delta_hit_rate(self) -> float:
        """Fraction of cost evaluations served incrementally/batched."""
        total = self.delta_applies + self.delta_full_evals
        return self.delta_applies / total if total else 0.0

    @property
    def stream_steps_per_s(self) -> float:
        """Streaming steps per second of feed wall time (0.0 when idle)."""
        return self.stream_steps / self.stream_time if self.stream_time else 0.0

    @property
    def stream_hyper_rate(self) -> float:
        """Hyperreconfigurations per streamed step (0.0 when idle)."""
        return (
            self.stream_hypers / self.stream_steps if self.stream_steps else 0.0
        )

    def snapshot(self, cache: CacheStats | None = None) -> dict:
        with self._lock:
            out = {
                "requests": self.requests,
                "solved": self.solved,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": self.cache_hit_rate,
                "errors": self.errors,
                "timeouts": self.timeouts,
                "batches": self.batches,
                "wall_time_s": self.wall_time,
                "throughput_rps": self.throughput,
                "latency": self.latency.snapshot(),
                "delta": {
                    "applies": self.delta_applies,
                    "full_evals": self.delta_full_evals,
                    "hit_rate": self.delta_hit_rate,
                },
                "packed": {
                    "compiles": self.packed_compiles,
                    "reuses": self.packed_reuses,
                    "bytes_shipped": self.packed_bytes_shipped,
                    "bytes_shared": self.packed_bytes_shared,
                },
                "intern": {
                    "masks": self.intern_masks_total,
                    "unique_masks": self.intern_masks_unique,
                    "bytes_before": self.intern_bytes_before,
                    "bytes_after": self.intern_bytes_after,
                    "bytes_saved": (
                        self.intern_bytes_before - self.intern_bytes_after
                    ),
                },
                "stream": {
                    "sessions": self.stream_sessions,
                    "steps": self.stream_steps,
                    "hypers": self.stream_hypers,
                    "wall_time_s": self.stream_time,
                    "steps_per_s": self.stream_steps_per_s,
                    "hyper_rate": self.stream_hyper_rate,
                },
            }
        if cache is not None:
            out["cache"] = {
                "enabled": cache.enabled,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": cache.size,
                # A capacity-0 cache cannot hit by construction; report
                # "no rate" instead of a misleading 0% (ROADMAP item).
                "hit_rate": cache.hit_rate if cache.enabled else None,
            }
        return out

    def format_report(self, cache: CacheStats | None = None) -> str:
        """Operator-facing text table of the snapshot."""
        snap = self.snapshot(cache)
        lat = snap["latency"]
        rows = [
            ["requests", snap["requests"]],
            ["solved (cache misses)", snap["solved"]],
            ["cache hits", snap["cache_hits"]],
            ["cache hit rate", f"{snap['cache_hit_rate']:.1%}"],
            ["errors", snap["errors"]],
            ["timeouts", snap["timeouts"]],
            ["batches", snap["batches"]],
            ["wall time", f"{snap['wall_time_s']:.3f} s"],
            ["throughput", f"{snap['throughput_rps']:.1f} req/s"],
            ["mean solve latency", f"{lat['mean_s'] * 1e3:.2f} ms"],
            ["max solve latency", f"{lat['max_s'] * 1e3:.2f} ms"],
        ]
        delta = snap["delta"]
        if delta["applies"] or delta["full_evals"]:
            rows.append(
                ["incremental evals",
                 f"{delta['applies']} delta / {delta['full_evals']} full "
                 f"({delta['hit_rate']:.1%} delta)"]
            )
        packed = snap["packed"]
        if packed["compiles"] or packed["reuses"]:
            rows.append(
                ["packed problems",
                 f"{packed['compiles']} compiled / {packed['reuses']} reused"]
            )
        if packed["bytes_shipped"] or packed["bytes_shared"]:
            rows.append(
                ["fan-out payload",
                 f"{packed['bytes_shipped']} B pickled / "
                 f"{packed['bytes_shared']} B shared"]
            )
        intern = snap["intern"]
        if intern["masks"]:
            rows.append(
                ["mask interning",
                 f"{intern['masks']} masks → {intern['unique_masks']} "
                 f"unique, {intern['bytes_saved']} B saved"]
            )
        stream = snap["stream"]
        if stream["steps"]:
            rows.append(["stream sessions", stream["sessions"]])
            rows.append(
                ["stream steps",
                 f"{stream['steps']} ({stream['hypers']} hyper, "
                 f"{stream['hyper_rate']:.1%} rate)"]
            )
            rows.append(
                ["stream throughput",
                 f"{stream['steps_per_s']:.0f} steps/s"]
            )
        if cache is not None:
            if cache.enabled:
                rows.append(
                    ["result cache",
                     f"{cache.size}/{cache.capacity} entries, "
                     f"{cache.hit_rate:.1%} hit rate"]
                )
            else:
                rows.append(["result cache", "off (hit rate n/a)"])
        return format_table(["metric", "value"], rows, title="engine metrics")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EngineMetrics(requests={self.requests}, solved={self.solved}, "
            f"hits={self.cache_hits}, errors={self.errors})"
        )
