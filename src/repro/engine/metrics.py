"""Throughput, latency and cache counters for the serving engine.

One :class:`EngineMetrics` instance rides along with a
:class:`~repro.engine.batch.BatchEngine` (and optionally a stream
session) and accumulates everything an operator wants on one screen:
request counts, error/timeout counts, solve-time totals, wall time of
the batches, cache hit rate, and derived requests/second.  Counters are
plain and lock-protected — cheap enough to leave on permanently.

Distributions are log-bucketed :class:`~repro.obs.histogram.Histogram`
families (p50/p95/p99, labeled by solver and shard).  The fixed bucket
boundaries make snapshots mergeable: process shards ship
:meth:`hist_wire` over their pipes and the pool folds them into one
labeled view (see :meth:`~repro.serve.shard.ShardPool.merged_histograms`).
The families over *deterministic* quantities — ``stream_chunk_steps``,
``session_cost``, ``session_steps``, named in
:data:`DETERMINISTIC_FAMILIES` — aggregate bit-identically across every
pool shape; the wall-clock families (latencies, cycle durations) merge
exactly too, but their observations are timing-dependent by nature.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Mapping
from contextlib import contextmanager

from repro.engine.cache import CacheStats
from repro.obs.histogram import TIME_SCHEME, Histogram, HistogramFamily
from repro.util.texttable import format_table

__all__ = [
    "DETERMINISTIC_FAMILIES",
    "EngineMetrics",
    "HISTOGRAM_FAMILIES",
    "LatencyStats",
]

#: Well-known histogram families: name -> (scheme, help, label names).
HISTOGRAM_FAMILIES: dict[str, tuple[str, str, tuple[str, ...]]] = {
    "solve_latency_seconds": (
        "time", "Per-request one-shot solve latency", ("solver",)),
    "feed_latency_seconds": (
        "time", "Streaming feed call latency (per chunk batch)", ()),
    "drain_cycle_seconds": (
        "time", "Per-shard drain cycle duration", ("shard",)),
    "stream_chunk_steps": (
        "value", "Steps per per-session feed chunk", ()),
    "session_cost": (
        "value", "Final cost per closed streaming session", ("solver",)),
    "session_steps": (
        "value", "Total steps per closed streaming session", ("solver",)),
    # Deliberately NOT in DETERMINISTIC_FAMILIES: sharding splits a
    # fleet, so group sizes depend on placement even though every
    # per-session answer is placement-independent.
    "fused_group_sessions": (
        "value", "Sessions per fused multi-session sweep group", ()),
    "portfolio_decision_seconds": (
        "time", "Portfolio decide+solve+verify latency", ("solver",)),
}

#: Families over deterministic quantities (no wall clock): a shard
#: pool's aggregate of these must be bit-identical to a single hub's.
DETERMINISTIC_FAMILIES: tuple[str, ...] = (
    "stream_chunk_steps",
    "session_cost",
    "session_steps",
)

#: Scalar counters serialized by :meth:`EngineMetrics.snapshot_json`
#: (everything a restarted process needs to resume its totals).
_SCALAR_COUNTERS: tuple[str, ...] = (
    "requests", "solved", "cache_hits", "errors", "timeouts", "batches",
    "wall_time", "delta_applies", "delta_full_evals",
    "packed_compiles", "packed_reuses",
    "packed_bytes_shipped", "packed_bytes_shared",
    "intern_masks_total", "intern_masks_unique",
    "intern_bytes_before", "intern_bytes_after",
    "stream_sessions", "stream_closed", "stream_steps", "stream_hypers",
    "stream_time", "stream_fused", "stream_fused_fallback",
    "stream_replay_epochs", "stream_replay_triggers",
    "portfolio_races", "portfolio_explores", "portfolio_records",
)


class LatencyStats(Histogram):
    """Solve-latency distribution: a time-scheme histogram with the
    legacy seconds-suffixed snapshot keys.

    The empty representation is canonical everywhere: ``min``/``max``
    (and their snapshot keys) are ``0.0`` when ``count == 0`` — no more
    ``inf`` leaking from ``snapshot()`` into ``format_table`` rows.
    """

    __slots__ = ()

    def __init__(self):
        super().__init__(TIME_SCHEME)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min,
            "max_s": self.max,
            "p50_s": self.p50,
            "p95_s": self.p95,
            "p99_s": self.p99,
        }


class EngineMetrics:
    """Aggregated engine counters; all mutators are thread-safe.

    ``histograms=False`` keeps every scalar counter but skips the
    histogram observes — the measured-overhead baseline for
    ``bench_e18_obs`` (the families still exist, empty, so snapshot
    shape is stable).
    """

    def __init__(self, *, histograms: bool = True):
        self._lock = threading.Lock()
        self.histograms_enabled = bool(histograms)
        self.hist: dict[str, HistogramFamily] = {
            name: HistogramFamily(name, scheme, help=help_text)
            for name, (scheme, help_text, _labels) in
            HISTOGRAM_FAMILIES.items()
        }
        self.requests = 0
        self.solved = 0
        self.cache_hits = 0
        self.errors = 0
        self.timeouts = 0
        self.batches = 0
        self.wall_time = 0.0
        self.latency = LatencyStats()
        self.delta_applies = 0
        self.delta_full_evals = 0
        self.packed_compiles = 0
        self.packed_reuses = 0
        self.packed_bytes_shipped = 0
        self.packed_bytes_shared = 0
        self.intern_masks_total = 0
        self.intern_masks_unique = 0
        self.intern_bytes_before = 0
        self.intern_bytes_after = 0
        self.stream_sessions = 0
        self.stream_closed = 0
        self.stream_steps = 0
        self.stream_hypers = 0
        self.stream_time = 0.0
        # Fused multi-session sweep accounting: session-chunks that
        # completed inside the epoch-synchronous fused kernel vs
        # ineligible ones (mask iterables, foreign-universe interned
        # chunks, non-batched cursors) served on the per-session path.
        self.stream_fused = 0
        self.stream_fused_fallback = 0
        # Batched trigger replay: epochs the fused kernel iterated and
        # triggers it resolved in batched install passes — the hectic
        # half of the workload that used to eject to per-session
        # Python.
        self.stream_replay_epochs = 0
        self.stream_replay_triggers = 0
        # Wire accounting per protocol, pre-seeded so the exposition
        # renders the v1/v2 series (at zero) on an idle server.
        # proto -> [frames_in, bytes_in, bytes_out, decode_seconds]
        self.wire: dict[str, list] = {
            "json": [0, 0, 0, 0.0],
            "bin": [0, 0, 0, 0.0],
        }
        # Portfolio accounting: decisions per chosen solver, race /
        # exploration counts, and ledger rows fed to the learned state.
        self.portfolio_decisions: dict[str, int] = {}
        self.portfolio_races = 0
        self.portfolio_explores = 0
        self.portfolio_records = 0

    # -- recording ---------------------------------------------------------

    def record_request(self, *, cached: bool) -> None:
        with self._lock:
            self.requests += 1
            if cached:
                self.cache_hits += 1

    def record_solve(self, seconds: float, *, solver: str | None = None) -> None:
        with self._lock:
            self.solved += 1
            self.latency.observe(seconds)
            if self.histograms_enabled:
                self.hist["solve_latency_seconds"].observe(
                    seconds, **({"solver": solver} if solver else {})
                )

    def record_error(self, *, timeout: bool = False) -> None:
        with self._lock:
            self.errors += 1
            if timeout:
                self.timeouts += 1

    def record_evaluator_stats(self, stats: Mapping) -> None:
        """Aggregate a solver result's evaluator counters.

        Solvers backed by :mod:`repro.core.delta` report
        ``delta_applies`` (incremental/batched evaluations) and
        ``delta_full_evals`` (full-evaluation fallbacks) in their
        ``stats``; the engine folds them in here so the operator report
        shows how much of the fleet's evaluation work was incremental.
        """
        applies = int(stats.get("delta_applies", 0) or 0)
        full = int(stats.get("delta_full_evals", 0) or 0)
        if applies or full:
            with self._lock:
                self.delta_applies += applies
                self.delta_full_evals += full

    def record_portfolio(
        self,
        *,
        solver: str,
        seconds: float,
        raced: bool = False,
        explored: bool = False,
        records: int = 0,
    ) -> None:
        """Count one portfolio decision.

        ``solver`` is the concrete solver the portfolio handed the
        request to (the label of the ``portfolio_decisions`` counter
        and the ``portfolio_decision_seconds`` histogram); ``records``
        is how many run-ledger rows the decision contributed.
        """
        with self._lock:
            self.portfolio_decisions[solver] = (
                self.portfolio_decisions.get(solver, 0) + 1
            )
            if raced:
                self.portfolio_races += 1
            if explored:
                self.portfolio_explores += 1
            self.portfolio_records += int(records)
            if self.histograms_enabled:
                self.hist["portfolio_decision_seconds"].observe(
                    seconds, solver=solver
                )

    def record_portfolio_rows(self, count: int = 1) -> None:
        """Count run-ledger rows fed outside a portfolio decision
        (warmup learning from concrete solver runs)."""
        with self._lock:
            self.portfolio_records += int(count)

    def record_packed(self, *, reused: bool) -> None:
        """Count one PackedProblem request by the batch engine.

        ``reused=False`` is a fresh compile, ``reused=True`` a hit in
        the engine's per-problem compile cache — together they show how
        often the lane-packed representation was shared across
        structurally-deduped requests.
        """
        with self._lock:
            if reused:
                self.packed_reuses += 1
            else:
                self.packed_compiles += 1

    def record_shipment(self, *, shipped: int = 0, shared: int = 0) -> None:
        """Count fan-out payload bytes of the batch engine.

        ``shipped`` are bytes serialized into worker chunk payloads
        (pickled problems or shared-memory handles); ``shared`` are
        lane-matrix bytes placed in :mod:`multiprocessing.shared_memory`
        segments instead of being pickled per chunk — together they
        show what the zero-copy fan-out saves.
        """
        if shipped or shared:
            with self._lock:
                self.packed_bytes_shipped += int(shipped)
                self.packed_bytes_shared += int(shared)

    def record_interning(self, stats) -> None:
        """Count one mask-interned worker chunk payload.

        ``stats`` is an :class:`~repro.engine.intern.InternStats`:
        total vs distinct masks in the chunk, and the pickled bytes the
        sequences would have shipped vs what the table + index rows
        did — the ``mask interning`` report row derives the savings.
        """
        with self._lock:
            self.intern_masks_total += stats.masks_total
            self.intern_masks_unique += stats.masks_unique
            self.intern_bytes_before += stats.bytes_before
            self.intern_bytes_after += stats.bytes_after

    def record_stream_open(self) -> None:
        """Count one streaming session opened on a hub."""
        with self._lock:
            self.stream_sessions += 1

    def record_wire(
        self,
        proto: str,
        *,
        frames_in: int = 0,
        bytes_in: int = 0,
        bytes_out: int = 0,
        decode_seconds: float = 0.0,
    ) -> None:
        """Count serve-layer wire traffic under one protocol label.

        ``proto`` is ``"json"`` (v1 newline-JSON frames) or ``"bin"``
        (v2 binary feed frames).  ``decode_seconds`` is CPU spent
        decoding/validating frame payloads — off the event loop, in
        the drain executor — so the v1-vs-v2 decode cost is a first-
        class series next to the byte counters.
        """
        with self._lock:
            row = self.wire.get(proto)
            if row is None:
                row = self.wire[proto] = [0, 0, 0, 0.0]
            row[0] += int(frames_in)
            row[1] += int(bytes_in)
            row[2] += int(bytes_out)
            row[3] += float(decode_seconds)

    def record_stream(
        self,
        *,
        steps: int,
        hypers: int = 0,
        seconds: float = 0.0,
        chunk_steps=(),
        drain_shard: int | None = None,
    ) -> None:
        """Aggregate one streaming feed call (single step or chunk).

        ``chunk_steps`` are the per-session step counts of the call —
        a deterministic quantity, recorded where the work ran (the hub)
        so shard-pool aggregates stay bit-identical to a single hub.
        ``drain_shard`` marks the call as one shard drain cycle: the
        latency lands in ``drain_cycle_seconds{shard=}`` instead of the
        plain ``feed_latency_seconds``.
        """
        with self._lock:
            self.stream_steps += int(steps)
            self.stream_hypers += int(hypers)
            self.stream_time += float(seconds)
            if self.histograms_enabled:
                if seconds:
                    if drain_shard is None:
                        self.hist["feed_latency_seconds"].observe(seconds)
                    else:
                        self.hist["drain_cycle_seconds"].observe(
                            seconds, shard=str(drain_shard)
                        )
                if chunk_steps:
                    # One bucket-count pass over the whole batch; step
                    # counts are small ints, so the float total stays
                    # exact and the family remains deterministic.
                    self.hist["stream_chunk_steps"].labels().observe_many(
                        chunk_steps
                    )

    def record_fused(
        self,
        *,
        sessions: int = 0,
        fallback: int = 0,
        group_sizes=(),
        epochs: int = 0,
        triggers: int = 0,
    ) -> None:
        """Count one fused multi-session sweep dispatch.

        ``sessions`` completed inside the epoch-synchronous fused
        kernel (triggering chunks included — batched trigger replay
        keeps them stacked); ``fallback`` were ineligible and served on
        the per-session path.  ``epochs``/``triggers`` are the
        dispatch's trigger-epoch iterations and batched-install trigger
        resolutions.  ``group_sizes`` are the per-group session counts
        of the dispatch (histogram ``fused_group_sessions`` —
        placement-dependent by nature, so not a deterministic family).
        """
        with self._lock:
            self.stream_fused += int(sessions)
            self.stream_fused_fallback += int(fallback)
            self.stream_replay_epochs += int(epochs)
            self.stream_replay_triggers += int(triggers)
            if self.histograms_enabled and group_sizes:
                self.hist["fused_group_sessions"].labels().observe_many(
                    group_sizes
                )

    def _stream_fused_fraction(self) -> float:
        total = self.stream_fused + self.stream_fused_fallback
        return self.stream_fused / total if total else 0.0

    @property
    def stream_fused_fraction(self) -> float:
        """Fraction of fused-eligible session-chunks that completed in
        the fused sweep (0.0 when the fused path never ran)."""
        with self._lock:
            return self._stream_fused_fraction()

    def record_session_close(
        self,
        *,
        solver: str | None = None,
        cost: float | None = None,
        steps: int | None = None,
    ) -> None:
        """Count one closed streaming session.

        The worker that actually ran the session passes ``cost`` and
        ``steps`` (deterministic, histogram-recorded); an aggregating
        parent passes neither — it only bumps the counter, so the
        merged deterministic families count every close exactly once.
        """
        with self._lock:
            self.stream_closed += 1
            if self.histograms_enabled and cost is not None:
                label = {"solver": solver} if solver else {}
                self.hist["session_cost"].observe(cost, **label)
                if steps is not None:
                    self.hist["session_steps"].observe(steps, **label)

    # -- persistence -------------------------------------------------------

    def snapshot_json(self) -> str:
        """Lossless JSON form of the full metrics state.

        Everything exact round-trips bit-for-bit through
        :meth:`from_json` (ints stay ints, histogram bucket counts are
        integers, and Python's JSON float round-trip is exact), so
        ``from_json(snapshot_json())`` rebuilds metrics whose
        ``snapshot_json()`` is byte-identical — the persistence
        contract the portfolio run-ledger tests lean on too.
        """
        with self._lock:
            payload = {
                "version": 1,
                "counters": {
                    name: getattr(self, name) for name in _SCALAR_COUNTERS
                },
                "wire": {
                    proto: list(row) for proto, row in self.wire.items()
                },
                "portfolio_decisions": dict(self.portfolio_decisions),
                "latency": self.latency.to_wire(),
                "histograms": {
                    name: fam.to_wire() for name, fam in self.hist.items()
                },
            }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EngineMetrics":
        """Rebuild an :class:`EngineMetrics` from :meth:`snapshot_json`."""
        data = json.loads(text)
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported metrics snapshot version {data.get('version')!r}"
            )
        metrics = cls()
        for name in _SCALAR_COUNTERS:
            if name in data["counters"]:
                setattr(metrics, name, data["counters"][name])
        metrics.wire = {
            str(proto): [row[0], row[1], row[2], float(row[3])]
            for proto, row in data["wire"].items()
        }
        metrics.portfolio_decisions = {
            str(name): int(count)
            for name, count in data["portfolio_decisions"].items()
        }
        restored = Histogram.from_wire(data["latency"])
        metrics.latency.counts = list(restored.counts)
        metrics.latency.count = restored.count
        metrics.latency.total = restored.total
        metrics.latency._min = restored._min
        metrics.latency._max = restored._max
        for name, wire in data["histograms"].items():
            metrics.hist[name] = HistogramFamily.from_wire(wire)
        return metrics

    def hist_wire(self, names=None) -> dict:
        """Mergeable wire snapshots of the named histogram families
        (all of them by default) — what process shards ship over their
        pipes and :meth:`ShardPool.merged_histograms` folds together."""
        with self._lock:
            selected = tuple(names) if names is not None else tuple(self.hist)
            return {name: self.hist[name].to_wire() for name in selected}

    @contextmanager
    def batch_timer(self):
        """Time one batch; adds to ``wall_time`` and ``batches``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.batches += 1
                self.wall_time += elapsed

    # -- derived -----------------------------------------------------------
    #
    # Public properties take the lock so a ratio never mixes counters
    # from two different instants (a shard report racing a drain could
    # otherwise pair a new numerator with an old denominator); the
    # ``_``-prefixed forms are the lock-free bodies ``snapshot()``
    # composes while already holding the lock.

    def _throughput(self) -> float:
        return self.requests / self.wall_time if self.wall_time else 0.0

    def _cache_hit_rate(self) -> float:
        return self.cache_hits / self.requests if self.requests else 0.0

    def _delta_hit_rate(self) -> float:
        total = self.delta_applies + self.delta_full_evals
        return self.delta_applies / total if total else 0.0

    def _stream_steps_per_s(self) -> float:
        return self.stream_steps / self.stream_time if self.stream_time else 0.0

    def _stream_hyper_rate(self) -> float:
        return (
            self.stream_hypers / self.stream_steps if self.stream_steps else 0.0
        )

    @property
    def throughput(self) -> float:
        """Requests per second of batch wall time (0.0 when idle)."""
        with self._lock:
            return self._throughput()

    @property
    def cache_hit_rate(self) -> float:
        with self._lock:
            return self._cache_hit_rate()

    @property
    def delta_hit_rate(self) -> float:
        """Fraction of cost evaluations served incrementally/batched."""
        with self._lock:
            return self._delta_hit_rate()

    @property
    def stream_steps_per_s(self) -> float:
        """Streaming steps per second of feed wall time (0.0 when idle)."""
        with self._lock:
            return self._stream_steps_per_s()

    @property
    def stream_hyper_rate(self) -> float:
        """Hyperreconfigurations per streamed step (0.0 when idle)."""
        with self._lock:
            return self._stream_hyper_rate()

    def snapshot(self, cache: CacheStats | None = None) -> dict:
        with self._lock:
            out = {
                "requests": self.requests,
                "solved": self.solved,
                "cache_hits": self.cache_hits,
                "cache_hit_rate": self._cache_hit_rate(),
                "errors": self.errors,
                "timeouts": self.timeouts,
                "batches": self.batches,
                "wall_time_s": self.wall_time,
                "throughput_rps": self._throughput(),
                "latency": self.latency.snapshot(),
                "delta": {
                    "applies": self.delta_applies,
                    "full_evals": self.delta_full_evals,
                    "hit_rate": self._delta_hit_rate(),
                },
                "packed": {
                    "compiles": self.packed_compiles,
                    "reuses": self.packed_reuses,
                    "bytes_shipped": self.packed_bytes_shipped,
                    "bytes_shared": self.packed_bytes_shared,
                },
                "intern": {
                    "masks": self.intern_masks_total,
                    "unique_masks": self.intern_masks_unique,
                    "bytes_before": self.intern_bytes_before,
                    "bytes_after": self.intern_bytes_after,
                    "bytes_saved": (
                        self.intern_bytes_before - self.intern_bytes_after
                    ),
                },
                "stream": {
                    "sessions": self.stream_sessions,
                    "closed": self.stream_closed,
                    "steps": self.stream_steps,
                    "hypers": self.stream_hypers,
                    "wall_time_s": self.stream_time,
                    "steps_per_s": self._stream_steps_per_s(),
                    "hyper_rate": self._stream_hyper_rate(),
                    "fused_sessions": self.stream_fused,
                    "fused_fallback": self.stream_fused_fallback,
                    "fused_fraction": self._stream_fused_fraction(),
                    "replay_epochs": self.stream_replay_epochs,
                    "replay_triggers": self.stream_replay_triggers,
                },
                "wire": {
                    proto: {
                        "frames_in": row[0],
                        "bytes_in": row[1],
                        "bytes_out": row[2],
                        "decode_s": row[3],
                    }
                    for proto, row in sorted(self.wire.items())
                },
                "portfolio": {
                    "decisions": dict(sorted(
                        self.portfolio_decisions.items()
                    )),
                    "races": self.portfolio_races,
                    "explores": self.portfolio_explores,
                    "records": self.portfolio_records,
                },
                "histograms": {
                    name: fam.snapshot() for name, fam in self.hist.items()
                },
            }
        if cache is not None:
            out["cache"] = {
                "enabled": cache.enabled,
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "size": cache.size,
                # A capacity-0 cache cannot hit by construction; report
                # "no rate" instead of a misleading 0% (ROADMAP item).
                "hit_rate": cache.hit_rate if cache.enabled else None,
            }
        return out

    def format_report(self, cache: CacheStats | None = None) -> str:
        """Operator-facing text table of the snapshot."""
        snap = self.snapshot(cache)
        lat = snap["latency"]
        rows = [
            ["requests", snap["requests"]],
            ["solved (cache misses)", snap["solved"]],
            ["cache hits", snap["cache_hits"]],
            ["cache hit rate", f"{snap['cache_hit_rate']:.1%}"],
            ["errors", snap["errors"]],
            ["timeouts", snap["timeouts"]],
            ["batches", snap["batches"]],
            ["wall time", f"{snap['wall_time_s']:.3f} s"],
            ["throughput", f"{snap['throughput_rps']:.1f} req/s"],
            ["mean solve latency", f"{lat['mean_s'] * 1e3:.2f} ms"],
            ["solve latency p50/p95/p99",
             f"{lat['p50_s'] * 1e3:.2f} / {lat['p95_s'] * 1e3:.2f} / "
             f"{lat['p99_s'] * 1e3:.2f} ms"],
            ["max solve latency", f"{lat['max_s'] * 1e3:.2f} ms"],
        ]
        delta = snap["delta"]
        if delta["applies"] or delta["full_evals"]:
            rows.append(
                ["incremental evals",
                 f"{delta['applies']} delta / {delta['full_evals']} full "
                 f"({delta['hit_rate']:.1%} delta)"]
            )
        packed = snap["packed"]
        if packed["compiles"] or packed["reuses"]:
            rows.append(
                ["packed problems",
                 f"{packed['compiles']} compiled / {packed['reuses']} reused"]
            )
        if packed["bytes_shipped"] or packed["bytes_shared"]:
            rows.append(
                ["fan-out payload",
                 f"{packed['bytes_shipped']} B pickled / "
                 f"{packed['bytes_shared']} B shared"]
            )
        intern = snap["intern"]
        if intern["masks"]:
            rows.append(
                ["mask interning",
                 f"{intern['masks']} masks → {intern['unique_masks']} "
                 f"unique, {intern['bytes_saved']} B saved"]
            )
        stream = snap["stream"]
        if stream["steps"]:
            rows.append(["stream sessions", stream["sessions"]])
            rows.append(
                ["stream steps",
                 f"{stream['steps']} ({stream['hypers']} hyper, "
                 f"{stream['hyper_rate']:.1%} rate)"]
            )
            rows.append(
                ["stream throughput",
                 f"{stream['steps_per_s']:.0f} steps/s"]
            )
            if stream["fused_sessions"] or stream["fused_fallback"]:
                rows.append(
                    ["fused sweep",
                     f"{stream['fused_sessions']} fused / "
                     f"{stream['fused_fallback']} fallback "
                     f"({stream['fused_fraction']:.1%} fused)"]
                )
            if stream["replay_epochs"]:
                rows.append(
                    ["trigger replay",
                     f"{stream['replay_triggers']} triggers / "
                     f"{stream['replay_epochs']} epochs"]
                )
            feed = snap["histograms"]["feed_latency_seconds"]
            if feed["count"]:
                rows.append(
                    ["feed latency p50/p95/p99",
                     f"{feed['p50'] * 1e3:.2f} / {feed['p95'] * 1e3:.2f} / "
                     f"{feed['p99'] * 1e3:.2f} ms"]
                )
        portfolio = snap["portfolio"]
        if portfolio["decisions"]:
            picks = ", ".join(
                f"{name}×{count}"
                for name, count in portfolio["decisions"].items()
            )
            rows.append(
                ["portfolio decisions",
                 f"{picks} ({portfolio['races']} raced, "
                 f"{portfolio['explores']} explored, "
                 f"{portfolio['records']} ledger rows)"]
            )
        for proto, wire in snap["wire"].items():
            if wire["frames_in"]:
                rows.append(
                    [f"wire [{proto}]",
                     f"{wire['frames_in']} frames, {wire['bytes_in']} B in "
                     f"/ {wire['bytes_out']} B out, "
                     f"decode {wire['decode_s'] * 1e3:.1f} ms"]
                )
        if cache is not None:
            if cache.enabled:
                rows.append(
                    ["result cache",
                     f"{cache.size}/{cache.capacity} entries, "
                     f"{cache.hit_rate:.1%} hit rate"]
                )
            else:
                rows.append(["result cache", "off (hit rate n/a)"])
        return format_table(["metric", "value"], rows, title="engine metrics")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EngineMetrics(requests={self.requests}, solved={self.solved}, "
            f"hits={self.cache_hits}, errors={self.errors})"
        )
