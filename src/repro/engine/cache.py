"""LRU result cache keyed on canonical request forms.

Identical work is the common case in a serving engine — the same app
trace solved with the same solver and parameters, often thousands of
times.  :class:`ResultCache` memoizes solver results under the
structural keys of :mod:`repro.engine.requests`; because schedules are
name-free (pure index/mask data), a cached value is correct for every
request in the key's equivalence class.

The cache is deliberately simple: an ``OrderedDict`` in LRU order, a
lock for thread safety, and hit/miss/eviction counters surfaced through
:class:`CacheStats` for the metrics layer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

__all__ = ["MISS", "CacheStats", "ResultCache"]


class _Miss:
    """Sentinel distinguishing 'not cached' from a cached ``None``."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<MISS>"


MISS = _Miss()


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def enabled(self) -> bool:
        """False for a capacity-0 (cache-off) cache.

        A disabled cache still counts lookups but can never hit, so
        operator surfaces should report its hit rate as "n/a" rather
        than a misleading 0%.
        """
        return self.capacity > 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class ResultCache:
    """Bounded LRU mapping from canonical keys to solver results.

    Parameters
    ----------
    capacity:
        Maximum number of retained results; the least recently *used*
        entry is evicted first.  ``capacity=0`` disables retention
        while keeping the counters alive (useful for measuring the
        cache-off baseline with identical code paths).
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable) -> Any:
        """Return the cached value or :data:`MISS`; counts the lookup."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return MISS

    def peek(self, key: Hashable) -> Any:
        """Like :meth:`get` but without touching counters or LRU order."""
        with self._lock:
            return self._data.get(key, MISS)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting LRU entries beyond capacity."""
        if self._capacity == 0:
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters survive; use :meth:`reset_stats`)."""
        with self._lock:
            self._data.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                capacity=self._capacity,
            )

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"ResultCache(size={s.size}/{s.capacity}, hits={s.hits}, "
            f"misses={s.misses}, hit_rate={s.hit_rate:.2f})"
        )
