"""The ``portfolio`` meta-solver: decide, run, verify, learn.

:func:`solve_mt_portfolio` is the registry entry point behind the
``portfolio`` solver name.  One call

1. extracts :class:`~repro.portfolio.features.WorkloadFeatures`;
2. asks the configured strategy for a :class:`Decision` over the
   candidate solvers (every stochastic draw comes from a generator
   seeded by ``(seed, decision index)``, so decision sequences are
   bit-reproducible);
3. executes the decision — ``pick`` walks the ranking front to back,
   ``race`` runs the top-k under a wall-clock budget (parallel via a
   throwaway :class:`~repro.engine.batch.BatchEngine` where the
   platform allows, sequential with early exit inside daemonic
   multiprocessing workers) with capped budget-doubling restarts;
4. re-verifies the winning schedule against the scalar
   :func:`~repro.core.sync_cost.sync_switch_cost` oracle — an answer
   that does not verify is treated as a *failure* of that solver and
   the ranking moves on, so the portfolio never returns an unverified
   answer;
5. appends one :class:`~repro.portfolio.records.RunRecord` per attempt
   (winners, losers, timeouts, oracle mismatches) to the process-local
   :class:`PortfolioState` *and* ships the same rows in the result's
   ``stats["portfolio"]["records"]`` — the batch engine folds them
   into the parent state when the solve ran in a worker process.

The learned state is process-wide (:func:`default_state`), mirroring
:func:`~repro.engine.registry.default_registry`; tests swap it with
:func:`set_default_state` / :func:`reset_default_state`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.sync_cost import sync_switch_cost
from repro.portfolio.features import FEATURE_PREFIX_STEPS, multi_features
from repro.portfolio.model import PortfolioModel
from repro.portfolio.records import RunLedger, RunRecord
from repro.portfolio.strategy import Decision, Strategy, make_strategy
from repro.solvers.base import MTSolveResult

__all__ = [
    "PortfolioState",
    "default_state",
    "portfolio_candidates",
    "reset_default_state",
    "set_default_state",
    "solve_mt_portfolio",
]

#: Relative tolerance of the oracle check (costs are computed by the
#: same float formulas on both sides, so real answers match exactly;
#: the epsilon only absorbs benign summation-order noise).
ORACLE_RTOL = 1e-6


class PortfolioState:
    """Ledger + model + decision counter, shared across requests.

    The model is always exactly ``PortfolioModel.from_ledger(ledger)``;
    persistence therefore only stores the ledger
    (:meth:`save`/:meth:`load`), and a restarted process resumes with
    identical predictions.
    """

    def __init__(self, ledger: RunLedger | None = None):
        self.ledger = ledger if ledger is not None else RunLedger()
        self.model = PortfolioModel.from_ledger(self.ledger)
        self._lock = threading.Lock()
        self._decisions = 0

    def next_decision_index(self) -> int:
        with self._lock:
            index = self._decisions
            self._decisions += 1
            return index

    @property
    def decisions(self) -> int:
        with self._lock:
            return self._decisions

    def record(self, record: RunRecord) -> None:
        """Append one observed run to the ledger and the live model."""
        self.ledger.append(record)
        self.model.observe(record)

    def absorb(self, rows) -> int:
        """Fold record dicts (from a worker result's stats) in; returns
        how many rows were added."""
        count = 0
        for row in rows:
            self.record(RunRecord.from_dict(row))
            count += 1
        return count

    def save(self, path) -> Path:
        return self.ledger.save(path)

    @classmethod
    def load(cls, path) -> "PortfolioState":
        return cls(RunLedger.load(path))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PortfolioState({len(self.ledger)} records, "
            f"{self._decisions} decisions)"
        )


_default: PortfolioState | None = None
_default_lock = threading.Lock()


def default_state() -> PortfolioState:
    """The process-wide learned state (lazily created, shared)."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = PortfolioState()
    return _default


def set_default_state(state: PortfolioState) -> PortfolioState:
    """Swap the process-wide state (e.g. after loading a ledger)."""
    global _default
    with _default_lock:
        _default = state
    return state


def reset_default_state() -> PortfolioState:
    """Fresh empty process-wide state (test isolation)."""
    return set_default_state(PortfolioState())


def portfolio_candidates(registry) -> tuple[str, ...]:
    """Concrete multi-task solvers the portfolio may dispatch to.

    Meta solvers (including the portfolio itself), tiny-only
    enumerators and foreign cost models are excluded; the order is the
    registry's sorted-by-name guarantee.
    """
    from repro.engine.registry import TAG_META, TAG_TINY_ONLY

    specs = registry.select(
        kind="multi", without_tags=(TAG_META, TAG_TINY_ONLY)
    )
    return tuple(s.name for s in specs if s.cost_model == "switch")


def _is_stochastic(registry, name: str) -> bool:
    from repro.engine.registry import TAG_STOCHASTIC

    try:
        return TAG_STOCHASTIC in registry.get(name).tags
    except KeyError:
        return False


def _verify(system, seqs, model, result) -> tuple[bool, float]:
    """Scalar-oracle check of a solver answer; (verified, oracle cost)."""
    oracle = sync_switch_cost(system, seqs, result.schedule, model)
    ok = abs(oracle - result.cost) <= ORACLE_RTOL * max(1.0, abs(oracle))
    return ok, oracle


def _attempt(registry, name, system, seqs, model, *, timeout, solver_seed):
    """Run one candidate under an optional budget; never raises.

    Returns ``(value, error, timed_out, elapsed)`` like the batch
    engine's executor (which this reuses, SIGALRM budget included).
    """
    from repro.engine.batch import _execute
    from repro.engine.requests import SolveRequest

    params = {}
    if _is_stochastic(registry, name):
        params["seed"] = solver_seed
    request = SolveRequest.multi(
        system, seqs, model, solver=name, **params
    )
    return _execute(registry, request, timeout)


def _race_round(
    registry, chosen, system, seqs, model, *, budget, solver_seed, workers
):
    """One race round; returns name → (value, error, timed_out, elapsed).

    Parallel when asked for and allowed (daemonic multiprocessing
    workers cannot spawn a pool); the sequential path walks the rank
    order and stops at the first finisher, which selects the same
    winner the parallel race would (rank order decides, not wall-clock
    order).
    """
    outcomes = {}
    parallel = (
        workers > 1
        and len(chosen) > 1
        and not multiprocessing.current_process().daemon
    )
    if parallel:
        from repro.engine.batch import BatchEngine
        from repro.engine.requests import SolveRequest

        engine = BatchEngine(
            registry,
            cache_size=0,
            workers=min(workers, len(chosen)),
            timeout=budget,
            portfolio_learn=False,
        )
        requests = []
        for name in chosen:
            params = {}
            if _is_stochastic(registry, name):
                params["seed"] = solver_seed
            requests.append(
                SolveRequest.multi(system, seqs, model, solver=name, **params)
            )
        for name, res in zip(chosen, engine.solve_batch(requests)):
            if res.ok:
                outcomes[name] = (res.value, None, False, res.elapsed)
            else:
                outcomes[name] = (
                    None,
                    res.error,
                    bool(res.stats.get("timeout")),
                    res.elapsed,
                )
        return outcomes
    for name in chosen:
        outcome = _attempt(
            registry, name, system, seqs, model,
            timeout=budget, solver_seed=solver_seed,
        )
        outcomes[name] = outcome
        if outcome[1] is None:  # first finisher in rank order wins
            break
    return outcomes


def solve_mt_portfolio(
    system,
    seqs,
    model=None,
    *,
    seed=0,
    strategy="best",
    candidates=None,
    state: PortfolioState | None = None,
    registry=None,
    race_workers: int = 0,
    prefix: int = FEATURE_PREFIX_STEPS,
) -> MTSolveResult:
    """Adaptively pick (or race) a solver for one MT-Switch instance.

    ``strategy`` is a spec string (see
    :func:`~repro.portfolio.strategy.make_strategy`) or a
    :class:`~repro.portfolio.strategy.Strategy` instance.
    ``candidates`` restricts the solver pool (default: every concrete
    multi-task switch-cost solver in the registry).  ``race_workers``
    caps the process count of a :class:`DeadlineRace` round (0 = one
    process per raced solver).

    Raises ``RuntimeError`` only when every candidate failed; the
    returned answer is always oracle-verified.
    """
    if registry is None:
        from repro.engine.registry import default_registry

        registry = default_registry()
    if state is None:
        state = default_state()
    strat = strategy if isinstance(strategy, Strategy) else make_strategy(strategy)
    pool = tuple(candidates) if candidates else portfolio_candidates(registry)
    if not pool:
        raise ValueError("portfolio has no candidate solvers")

    start = time.perf_counter()
    features = multi_features(system, seqs, prefix=prefix)
    index = state.next_decision_index()
    rng = np.random.default_rng([int(seed) & 0x7FFFFFFF, index])
    solver_seed = int(rng.integers(2**31))
    decision: Decision = strat.decide(state.model, features, pool, rng)

    records: list[RunRecord] = []

    def note(name, *, runtime, cost=0.0, ok, error=None):
        record = RunRecord(
            features=features,
            solver=name,
            runtime=runtime,
            cost=cost,
            ok=ok,
            error=error,
        )
        state.record(record)
        records.append(record)

    winner_name = None
    winner = None
    oracle_cost = 0.0
    attempts = 0
    failures: list[str] = []

    def consider(name, outcome) -> bool:
        """Verify one outcome; records it either way."""
        nonlocal winner_name, winner, oracle_cost, attempts
        attempts += 1
        value, error, timed_out, elapsed = outcome
        if error is not None:
            note(name, runtime=elapsed, ok=False,
                 error="timeout" if timed_out else error)
            failures.append(f"{name}: {error}")
            return False
        verified, oracle = _verify(system, seqs, model, value)
        if not verified:
            note(name, runtime=elapsed, ok=False,
                 error=f"oracle mismatch: {value.cost!r} != {oracle!r}")
            failures.append(f"{name}: oracle mismatch")
            return False
        note(name, runtime=elapsed, cost=oracle, ok=True)
        winner_name, winner, oracle_cost = name, value, oracle
        return True

    if decision.mode == "race":
        budget = decision.budget or 1.0
        workers = race_workers if race_workers > 0 else len(decision.chosen)
        for round_no in range(decision.restarts + 1):
            outcomes = _race_round(
                registry, decision.chosen, system, seqs, model,
                budget=budget * (2**round_no),
                solver_seed=solver_seed,
                workers=workers,
            )
            for name in decision.chosen:  # rank order decides
                if name in outcomes and consider(name, outcomes[name]):
                    break
            if winner is not None:
                break
        if winner is None:
            # Last resort: unbounded sequential walk over the full pool.
            for name in (*decision.chosen,
                         *(s for s in sorted(pool)
                           if s not in decision.chosen)):
                outcome = _attempt(
                    registry, name, system, seqs, model,
                    timeout=None, solver_seed=solver_seed,
                )
                if consider(name, outcome):
                    break
    else:
        for name in decision.chosen:
            outcome = _attempt(
                registry, name, system, seqs, model,
                timeout=None, solver_seed=solver_seed,
            )
            if consider(name, outcome):
                break

    if winner is None:
        raise RuntimeError(
            "portfolio: every candidate failed: " + "; ".join(failures)
        )

    elapsed = time.perf_counter() - start
    stats = dict(winner.stats)
    stats["portfolio"] = {
        "strategy": decision.strategy,
        "mode": decision.mode,
        "bucket": features.bucket(),
        "chosen": winner_name,
        "ranking": list(decision.chosen),
        "explore": decision.explore,
        "attempts": attempts,
        "verified": True,
        "decision_s": elapsed,
        "decision_index": index,
        "records": [r.to_dict() for r in records],
        "recorded_pid": os.getpid(),
    }
    return MTSolveResult(
        schedule=winner.schedule,
        cost=oracle_cost,
        optimal=winner.optimal,
        solver=f"portfolio[{winner_name}]",
        stats=stats,
    )
