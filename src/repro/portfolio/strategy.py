"""Selection policies over the learned portfolio model.

Every strategy answers one question deterministically: given the model,
a feature vector and the candidate solver names, in which order should
solvers be tried?  The returned :class:`Decision` carries the full
ranking — execution (``repro.portfolio.engine``) walks it front to
back, so a failing or unverifiable front-runner falls back to the next
candidate instead of failing the request.

Determinism is a contract: candidates are always considered in sorted
name order, ties break by name, and the only randomness
(:class:`EpsilonGreedy` exploration) comes from the caller-provided
seeded generator.  Two calls with equal model state, features,
candidates and generator state return identical decisions —
bit-reproducible under a seed, replayable offline via
``repro portfolio replay``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.portfolio.features import WorkloadFeatures
from repro.portfolio.model import PortfolioModel

__all__ = [
    "BestPredicted",
    "DeadlineRace",
    "Decision",
    "EpsilonGreedy",
    "Strategy",
    "UCB1",
    "make_strategy",
    "rank_candidates",
]


@dataclass(frozen=True)
class Decision:
    """One strategy verdict.

    ``chosen`` is the full candidate ranking (front runner first);
    ``mode`` is ``"pick"`` (run front to back, first verified answer
    wins) or ``"race"`` (run the whole ``chosen`` tuple under
    ``budget`` seconds, best-ranked verified finisher wins, up to
    ``restarts`` extra rounds with a doubled budget).
    """

    strategy: str
    chosen: tuple[str, ...]
    mode: str = "pick"
    explore: bool = False
    reason: str = ""
    budget: float | None = None
    restarts: int = 0


def rank_candidates(
    model: PortfolioModel,
    features: WorkloadFeatures,
    candidates,
    *,
    cost_tolerance: float = 0.05,
    max_failure_rate: float = 0.5,
) -> tuple[str, ...]:
    """Deterministic candidate ranking, best bet first.

    Solvers with a known cost and an acceptable failure rate come
    first — those within ``cost_tolerance`` of the best predicted cost
    ordered by predicted runtime (the latency win the portfolio is
    after), costlier ones after by predicted cost.  Cold solvers (no
    observations at any bucket resolution) follow in name order, and
    known-flaky solvers (failure rate above ``max_failure_rate``) go
    last.  Ties always break by name.
    """
    names = sorted(candidates)
    if not names:
        raise ValueError("no candidate solvers to rank")
    known: list[tuple[str, float, float]] = []  # (name, cost, runtime)
    cold: list[str] = []
    flaky: list[tuple[float, str]] = []
    for name in names:
        failure = model.failure_rate(name, features)
        cost = model.predict_cost(name, features)
        runtime = model.predict_runtime(name, features)
        if runtime.support == 0 and cost.support == 0:
            cold.append(name)
        elif failure > max_failure_rate or cost.support == 0:
            flaky.append((failure, name))
        else:
            known.append((name, cost.value, runtime.value))
    ordered: list[str] = []
    if known:
        best_cost = min(cost for _n, cost, _r in known)
        bar = best_cost * (1.0 + cost_tolerance) + 1e-9
        acceptable = [row for row in known if row[1] <= bar]
        rest = [row for row in known if row[1] > bar]
        acceptable.sort(key=lambda row: (row[2], row[0]))
        rest.sort(key=lambda row: (row[1], row[2], row[0]))
        ordered.extend(name for name, _c, _r in acceptable + rest)
    ordered.extend(cold)
    ordered.extend(name for _f, name in sorted(flaky))
    return tuple(ordered)


class Strategy:
    """Base: subclasses implement :meth:`decide`."""

    name = "strategy"

    def decide(
        self,
        model: PortfolioModel,
        features: WorkloadFeatures,
        candidates,
        rng,
    ) -> Decision:
        raise NotImplementedError


@dataclass(frozen=True)
class BestPredicted(Strategy):
    """Pure exploitation: run the ranking front to back."""

    cost_tolerance: float = 0.05
    max_failure_rate: float = 0.5
    name: str = field(default="best", init=False)

    def decide(self, model, features, candidates, rng) -> Decision:
        ranking = rank_candidates(
            model,
            features,
            candidates,
            cost_tolerance=self.cost_tolerance,
            max_failure_rate=self.max_failure_rate,
        )
        return Decision(
            strategy=self.name,
            chosen=ranking,
            reason=f"best predicted in {features.bucket()}",
        )


@dataclass(frozen=True)
class EpsilonGreedy(Strategy):
    """Exploit the ranking, but explore the least-tried arm with
    probability ``epsilon`` (drawn from the caller's seeded rng)."""

    epsilon: float = 0.1
    cost_tolerance: float = 0.05
    max_failure_rate: float = 0.5
    name: str = field(default="egreedy", init=False)

    def __post_init__(self):
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be within [0, 1]")

    def decide(self, model, features, candidates, rng) -> Decision:
        ranking = rank_candidates(
            model,
            features,
            candidates,
            cost_tolerance=self.cost_tolerance,
            max_failure_rate=self.max_failure_rate,
        )
        if len(ranking) > 1 and float(rng.random()) < self.epsilon:
            least = min(ranking, key=lambda s: (model.runs(s, features), s))
            if least != ranking[0]:
                rest = tuple(s for s in ranking if s != least)
                return Decision(
                    strategy=self.name,
                    chosen=(least, *rest),
                    explore=True,
                    reason=f"explore least-tried {least!r}",
                )
        return Decision(
            strategy=self.name,
            chosen=ranking,
            reason=f"exploit ranking in {features.bucket()}",
        )


@dataclass(frozen=True)
class UCB1(Strategy):
    """UCB1 bandit on cost quality with a visit-count bonus.

    The exploitation term is ``best_cost / predicted_cost`` (1.0 for
    the cheapest arm), the exploration bonus the classic
    ``c·sqrt(ln N / n)`` over finest-bucket visit counts.  Unvisited
    arms are tried first, in name order — no randomness at all.
    """

    c: float = 1.0
    max_failure_rate: float = 0.5
    name: str = field(default="ucb", init=False)

    def decide(self, model, features, candidates, rng) -> Decision:
        names = sorted(candidates)
        if not names:
            raise ValueError("no candidate solvers to rank")
        visits = {s: model.runs(s, features) for s in names}
        unvisited = [s for s in names if visits[s] == 0]
        fallback = rank_candidates(
            model, features, names, max_failure_rate=self.max_failure_rate
        )
        if unvisited:
            first = unvisited[0]
            rest = tuple(s for s in fallback if s != first)
            return Decision(
                strategy=self.name,
                chosen=(first, *rest),
                explore=True,
                reason=f"ucb init {first!r}",
            )
        total = sum(visits.values())
        costs = {s: model.predict_cost(s, features) for s in names}
        finite = [p.value for p in costs.values() if math.isfinite(p.value)]
        best_cost = min(finite) if finite else 1.0

        def score(s: str) -> float:
            pred = costs[s]
            quality = (
                (best_cost / pred.value)
                if math.isfinite(pred.value) and pred.value > 0
                else (1.0 if pred.value == 0 else 0.0)
            )
            bonus = self.c * math.sqrt(math.log(max(2, total)) / visits[s])
            return quality + bonus

        ranked = sorted(
            names,
            key=lambda s: (
                -score(s),
                model.predict_runtime(s, features).value,
                s,
            ),
        )
        return Decision(
            strategy=self.name,
            chosen=tuple(ranked),
            reason=f"ucb scores over {total} visits",
        )


@dataclass(frozen=True)
class DeadlineRace(Strategy):
    """Race the top-k ranked solvers under a wall-clock budget.

    Execution runs all ``top_k`` front-runners with a per-solver
    ``budget``-second timeout (in parallel via
    :class:`~repro.engine.batch.BatchEngine` workers where the platform
    allows, sequentially with early exit otherwise); the best-*ranked*
    verified finisher wins — rank order, not wall-clock order, decides,
    so the outcome is reproducible.  If nobody finishes, the budget
    doubles for up to ``restarts`` extra rounds, and a final unbounded
    run of the full ranking guarantees an answer.
    """

    budget: float = 1.0
    top_k: int = 2
    restarts: int = 1
    cost_tolerance: float = 0.05
    max_failure_rate: float = 0.5
    name: str = field(default="race", init=False)

    def __post_init__(self):
        if self.budget <= 0:
            raise ValueError("budget must be positive")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")
        if self.restarts < 0:
            raise ValueError("restarts must be non-negative")

    def decide(self, model, features, candidates, rng) -> Decision:
        ranking = rank_candidates(
            model,
            features,
            candidates,
            cost_tolerance=self.cost_tolerance,
            max_failure_rate=self.max_failure_rate,
        )
        return Decision(
            strategy=self.name,
            chosen=ranking[: self.top_k],
            mode="race",
            budget=self.budget,
            restarts=self.restarts,
            reason=f"race top-{min(self.top_k, len(ranking))} "
                   f"under {self.budget:g}s",
        )


def make_strategy(spec: str) -> Strategy:
    """Parse a strategy spec string.

    Formats (the bare value names the strategy's primary parameter)::

        best            best:tol=0.1
        egreedy         egreedy:0.2        egreedy:epsilon=0.2
        ucb             ucb:2.0            ucb:c=2.0
        race            race:0.5           race:budget=0.5,k=3,restarts=2
    """
    name, _, argtext = str(spec).partition(":")
    name = name.strip().lower()
    args: dict[str, str] = {}
    primary: str | None = None
    if argtext.strip():
        for part in argtext.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" in part:
                key, _, value = part.partition("=")
                args[key.strip()] = value.strip()
            elif primary is None:
                primary = part
            else:
                raise ValueError(f"bad strategy spec {spec!r}")
    try:
        if name == "best":
            tol = float(primary if primary is not None else args.pop("tol", 0.05))
            strategy: Strategy = BestPredicted(cost_tolerance=tol)
        elif name == "egreedy":
            eps = float(
                primary if primary is not None else args.pop("epsilon", 0.1)
            )
            strategy = EpsilonGreedy(epsilon=eps)
        elif name == "ucb":
            c = float(primary if primary is not None else args.pop("c", 1.0))
            strategy = UCB1(c=c)
        elif name == "race":
            budget = float(
                primary if primary is not None else args.pop("budget", 1.0)
            )
            strategy = DeadlineRace(
                budget=budget,
                top_k=int(args.pop("k", args.pop("top_k", 2))),
                restarts=int(args.pop("restarts", 1)),
            )
        else:
            raise ValueError(
                f"unknown strategy {name!r}; "
                "choose from best, egreedy, ucb, race"
            )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad strategy spec {spec!r}: {exc}") from None
    if args:
        raise ValueError(
            f"bad strategy spec {spec!r}: unknown options {sorted(args)}"
        )
    return strategy
