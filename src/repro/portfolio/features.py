"""Workload features: the portfolio's view of a solve request.

The portfolio learns a mapping *workload shape → solver performance*,
so every request is first reduced to a small numeric vector — instance
dimensions plus the structural statistics of
:mod:`repro.analysis.trace_stats` (demand sparsity, periodicity, phase
segmentation) that the paper identifies as what makes a workload
hyperreconfiguration-friendly.

Extraction runs on the dispatch hot path, so all trace analysis is
bounded: only the first :data:`FEATURE_PREFIX_STEPS` steps feed
``detect_period``/``segment_phases`` (``detect_period`` is O(k²) in
the analyzed length).  Learned statistics are keyed by a coarse
*bucket* of the feature vector — log₂ size bins plus a sparsity decile
— with a fixed fallback chain toward coarser buckets so predictions
degrade gracefully on shapes the ledger has not seen at full
resolution.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import reduce

from repro.analysis.trace_stats import (
    demand_profile,
    detect_period,
    segment_phases,
)
from repro.core.context import RequirementSequence

__all__ = [
    "FEATURE_PREFIX_STEPS",
    "WorkloadFeatures",
    "features_of",
    "multi_features",
    "single_features",
]

#: Trace-analysis window: period/phase detection (and the demand
#: profile) look at this many leading steps at most, keeping feature
#: extraction O(prefix²) worst-case regardless of trace length.
FEATURE_PREFIX_STEPS = 256


def _ilog2(x: int) -> int:
    """Coarse log₂ bin of a non-negative count (0 → 0, 1 → 1, ...)."""
    return int(x).bit_length()


@dataclass(frozen=True)
class WorkloadFeatures:
    """Feature vector of one solve request.

    ``period == 0`` means no period was detected within the analyzed
    prefix; ``phases``/``mean_phase_len`` come from the greedy
    working-set segmentation of the combined demand trace.
    """

    kind: str
    m: int
    n: int
    universe_size: int
    lane_width: int
    mean_demand: float
    max_demand: int
    union_size: int
    sparsity: float
    period: int
    phases: int
    mean_phase_len: float

    def bucket(self) -> str:
        """Finest learned-statistics key: coarse bins, stable string."""
        return (
            f"{self.kind}/m{self.m}/n{_ilog2(self.n)}"
            f"/u{_ilog2(self.universe_size)}"
            f"/s{min(9, int(self.sparsity * 10))}"
            f"/p{1 if self.period else 0}"
            f"/f{_ilog2(self.phases)}"
        )

    def fallback_buckets(self) -> tuple[str, ...]:
        """Bucket keys from finest to coarsest.

        The model records every observation under all of these, and
        predictions walk the same chain: exact shape first, then shape
        without the structural bins, then (kind, m), then kind alone —
        so a cold fine bucket still inherits a usable prior.
        """
        return (
            self.bucket(),
            f"{self.kind}/m{self.m}/n{_ilog2(self.n)}"
            f"/u{_ilog2(self.universe_size)}",
            f"{self.kind}/m{self.m}",
            self.kind,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadFeatures":
        fields = {
            "kind": str(data["kind"]),
            "m": int(data["m"]),
            "n": int(data["n"]),
            "universe_size": int(data["universe_size"]),
            "lane_width": int(data["lane_width"]),
            "mean_demand": float(data["mean_demand"]),
            "max_demand": int(data["max_demand"]),
            "union_size": int(data["union_size"]),
            "sparsity": float(data["sparsity"]),
            "period": int(data["period"]),
            "phases": int(data["phases"]),
            "mean_phase_len": float(data["mean_phase_len"]),
        }
        return cls(**fields)


def _trace_features(
    seq: RequirementSequence, *, prefix: int
) -> tuple[float, int, int, float, int, int, float]:
    """(mean_demand, max_demand, union, sparsity, period, phases, len)."""
    bounded = (
        seq
        if len(seq) <= prefix
        else RequirementSequence(seq.universe, seq.masks[:prefix])
    )
    profile = demand_profile(bounded)
    period = detect_period(bounded) or 0
    segments = segment_phases(bounded)
    phases = len(segments)
    mean_phase = (len(bounded) / phases) if phases else 0.0
    return (
        profile.mean_demand,
        profile.max_demand,
        profile.total_union_size,
        profile.sparsity,
        period,
        phases,
        mean_phase,
    )


def single_features(
    seq: RequirementSequence, *, prefix: int = FEATURE_PREFIX_STEPS
) -> WorkloadFeatures:
    """Features of a single-task requirement sequence."""
    mean_d, max_d, union, sparsity, period, phases, mean_phase = (
        _trace_features(seq, prefix=prefix)
    )
    size = seq.universe.size
    return WorkloadFeatures(
        kind="single",
        m=1,
        n=len(seq),
        universe_size=size,
        lane_width=(size + 63) // 64,
        mean_demand=mean_d,
        max_demand=max_d,
        union_size=union,
        sparsity=sparsity,
        period=period,
        phases=phases,
        mean_phase_len=mean_phase,
    )


def multi_features(
    system, seqs, *, prefix: int = FEATURE_PREFIX_STEPS
) -> WorkloadFeatures:
    """Features of a multi-task instance.

    The structural statistics are computed on the *combined* demand
    trace (per-step OR over tasks): that is the load the machine
    actually reconfigures for, and it keeps extraction O(n) in the
    task count.
    """
    seqs = tuple(seqs)
    universe = system.universe
    if seqs:
        n = len(seqs[0])
        steps = min(n, prefix)
        combined_masks = [
            reduce(lambda a, b: a | b, (seq.masks[i] for seq in seqs), 0)
            for i in range(steps)
        ]
    else:
        n = 0
        combined_masks = []
    combined = RequirementSequence(universe, combined_masks)
    mean_d, max_d, union, sparsity, period, phases, mean_phase = (
        _trace_features(combined, prefix=prefix)
    )
    return WorkloadFeatures(
        kind="multi",
        m=system.m,
        n=n,
        universe_size=universe.size,
        lane_width=(universe.size + 63) // 64,
        mean_demand=mean_d,
        max_demand=max_d,
        union_size=union,
        sparsity=sparsity,
        period=period,
        phases=phases,
        mean_phase_len=mean_phase,
    )


def features_of(request, *, prefix: int = FEATURE_PREFIX_STEPS):
    """Features of a :class:`~repro.engine.requests.SolveRequest`."""
    if request.kind == "single":
        return single_features(request.seq, prefix=prefix)
    if request.kind == "multi":
        return multi_features(request.system, request.seqs, prefix=prefix)
    raise ValueError(f"unknown request kind {request.kind!r}")
