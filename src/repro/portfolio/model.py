"""Per-solver runtime/quality predictors over feature buckets.

No learning framework: every (bucket, solver) arm keeps two mergeable
log-bucketed histograms from :mod:`repro.obs.histogram` — runtime on
the time scheme, verified cost on the value scheme — plus run/failure
counts.  Predictions are median (p50) quantile estimates, which is all
the selection strategies need: they compare solvers *within one
bucket*, where costs refer to structurally similar instances.

Observations are recorded under the full fallback-bucket chain of
their features (see
:meth:`~repro.portfolio.features.WorkloadFeatures.fallback_buckets`),
and predictions walk the same chain finest-first, so an unseen fine
bucket inherits the coarser prior instead of returning nothing.  The
model is a pure function of the :class:`~repro.portfolio.records.RunLedger`
— rebuilding from a persisted ledger reproduces it exactly.
"""

from __future__ import annotations

import threading
from typing import NamedTuple

from repro.obs.histogram import TIME_SCHEME, VALUE_SCHEME, Histogram
from repro.portfolio.features import WorkloadFeatures
from repro.portfolio.records import RunLedger, RunRecord

__all__ = ["PortfolioModel", "Prediction"]


class Prediction(NamedTuple):
    """A point estimate plus how many observations back it.

    ``support == 0`` means the model has never seen this (bucket,
    solver) pair at any fallback resolution; ``value`` is then
    ``inf`` so unknown arms never win a comparison by accident.
    """

    value: float
    support: int


class _Arm:
    """Statistics of one (bucket, solver) pair."""

    __slots__ = ("runtime", "cost", "runs", "failures")

    def __init__(self):
        self.runtime = Histogram(TIME_SCHEME)
        self.cost = Histogram(VALUE_SCHEME)
        self.runs = 0
        self.failures = 0

    def observe(self, record: RunRecord) -> None:
        self.runs += 1
        self.runtime.observe(max(0.0, record.runtime))
        if record.ok:
            self.cost.observe(record.cost)
        else:
            self.failures += 1

    @property
    def successes(self) -> int:
        return self.runs - self.failures


class PortfolioModel:
    """Learned per-solver performance statistics; all methods thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self._arms: dict[tuple[str, str], _Arm] = {}

    @classmethod
    def from_ledger(cls, ledger: RunLedger) -> "PortfolioModel":
        model = cls()
        for record in ledger.rows():
            model.observe(record)
        return model

    def observe(self, record: RunRecord) -> None:
        with self._lock:
            for bucket in record.features.fallback_buckets():
                key = (bucket, record.solver)
                arm = self._arms.get(key)
                if arm is None:
                    arm = self._arms[key] = _Arm()
                arm.observe(record)

    # -- queries -----------------------------------------------------------

    def _walk(self, solver: str, features: WorkloadFeatures):
        """Arms along the fallback chain, finest-first."""
        for bucket in features.fallback_buckets():
            arm = self._arms.get((bucket, solver))
            if arm is not None:
                yield arm

    def predict_runtime(
        self, solver: str, features: WorkloadFeatures
    ) -> Prediction:
        """Median observed runtime (seconds) at the finest known bucket."""
        with self._lock:
            for arm in self._walk(solver, features):
                if arm.runs:
                    return Prediction(arm.runtime.p50, arm.runs)
        return Prediction(float("inf"), 0)

    def predict_cost(
        self, solver: str, features: WorkloadFeatures
    ) -> Prediction:
        """Median verified cost at the finest bucket with a success."""
        with self._lock:
            for arm in self._walk(solver, features):
                if arm.successes:
                    return Prediction(arm.cost.p50, arm.successes)
        return Prediction(float("inf"), 0)

    def failure_rate(self, solver: str, features: WorkloadFeatures) -> float:
        """Failure fraction at the finest bucket with any runs (0.0 cold)."""
        with self._lock:
            for arm in self._walk(solver, features):
                if arm.runs:
                    return arm.failures / arm.runs
        return 0.0

    def runs(self, solver: str, features: WorkloadFeatures) -> int:
        """Runs recorded at the *finest* bucket of these features."""
        with self._lock:
            arm = self._arms.get((features.bucket(), solver))
            return arm.runs if arm is not None else 0

    def solvers(self) -> tuple[str, ...]:
        """All solver names the model has observations for, sorted."""
        with self._lock:
            return tuple(sorted({solver for _b, solver in self._arms}))

    def snapshot(self) -> dict:
        """JSON-safe dump: bucket → solver → summary row.

        The ``repro portfolio model`` CLI renders this; buckets include
        the fallback levels (they are separate arms by design).
        """
        out: dict[str, dict[str, dict]] = {}
        with self._lock:
            for (bucket, solver), arm in sorted(self._arms.items()):
                out.setdefault(bucket, {})[solver] = {
                    "runs": arm.runs,
                    "failures": arm.failures,
                    "runtime_p50_s": arm.runtime.p50 if arm.runs else 0.0,
                    "cost_p50": arm.cost.p50 if arm.successes else None,
                }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return f"PortfolioModel({len(self._arms)} arms)"
