"""The run ledger: every observed solver run, append-only.

One :class:`RunRecord` per solver invocation the engine witnessed —
successes with their measured runtime and verified cost, failures
(errors, timeouts, oracle mismatches) with the time they wasted.  The
ledger is the portfolio's ground truth: the model is a pure function
of it, so persisting the ledger alone is enough for a restarted server
to resume with everything it had learned.

The JSON form is versioned and append-friendly; floats round-trip
exactly through :mod:`json`, so save → load reproduces the records
bit-for-bit.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.portfolio.features import WorkloadFeatures

__all__ = ["LEDGER_VERSION", "RunLedger", "RunRecord"]

LEDGER_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """One observed solver run.

    ``params`` is a stable string form of the solver's parameters
    (empty for defaults) — enough to tell tuned presets apart without
    making the ledger schema depend on arbitrary parameter objects.
    ``cost`` is meaningful only when ``ok`` is true.
    """

    features: WorkloadFeatures
    solver: str
    params: str = ""
    runtime: float = 0.0
    cost: float = 0.0
    ok: bool = True
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "features": self.features.to_dict(),
            "solver": self.solver,
            "params": self.params,
            "runtime": self.runtime,
            "cost": self.cost,
            "ok": self.ok,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(
            features=WorkloadFeatures.from_dict(data["features"]),
            solver=str(data["solver"]),
            params=str(data.get("params", "")),
            runtime=float(data.get("runtime", 0.0)),
            cost=float(data.get("cost", 0.0)),
            ok=bool(data.get("ok", True)),
            error=data.get("error"),
        )


class RunLedger:
    """Append-only, thread-safe collection of :class:`RunRecord` rows."""

    def __init__(self, records=()):
        self._lock = threading.Lock()
        self._records: list[RunRecord] = list(records)

    def append(self, record: RunRecord) -> None:
        with self._lock:
            self._records.append(record)

    def extend(self, records) -> int:
        """Append many records; returns how many were added."""
        records = list(records)
        with self._lock:
            self._records.extend(records)
        return len(records)

    def rows(self, *, solver: str | None = None) -> list[RunRecord]:
        """Snapshot of the records (optionally one solver's)."""
        with self._lock:
            records = list(self._records)
        if solver is None:
            return records
        return [r for r in records if r.solver == solver]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self):
        return iter(self.rows())

    # -- persistence -------------------------------------------------------

    def to_json(self) -> str:
        with self._lock:
            rows = [r.to_dict() for r in self._records]
        return json.dumps(
            {"version": LEDGER_VERSION, "records": rows}, sort_keys=True
        )

    @classmethod
    def from_json(cls, text: str) -> "RunLedger":
        data = json.loads(text)
        version = data.get("version")
        if version != LEDGER_VERSION:
            raise ValueError(
                f"unsupported ledger version {version!r} "
                f"(expected {LEDGER_VERSION})"
            )
        return cls(RunRecord.from_dict(row) for row in data["records"])

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path) -> "RunLedger":
        return cls.from_json(Path(path).read_text())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger({len(self)} records)"
