"""Adaptive algorithm-portfolio engine (Borg-style solver selection).

The solver registry knows what each solver *can* do; this package
learns what each solver actually *does* on the traffic a deployment
sees, and uses that to pick (or race) solvers per request:

* :mod:`repro.portfolio.features` — a cheap :class:`WorkloadFeatures`
  vector per request (shape, demand sparsity, periodicity, phase
  structure via :mod:`repro.analysis.trace_stats`);
* :mod:`repro.portfolio.records` — the append-only, JSON-persistable
  :class:`RunLedger` of observed (features, solver, runtime, cost)
  rows;
* :mod:`repro.portfolio.model` — per-(bucket, solver) runtime/quality
  predictors built on :mod:`repro.obs.histogram` quantiles;
* :mod:`repro.portfolio.strategy` — selection policies
  (:class:`BestPredicted`, epsilon-greedy, UCB1, :class:`DeadlineRace`);
* :mod:`repro.portfolio.engine` — the ``portfolio`` meta-solver entry
  point plus the process-wide learned state.

Every decision is reproducible under a seed, and every answer the
portfolio returns is re-verified against the scalar cost oracle before
it is surfaced — the portfolio can only change *which* verified answer
a request pays for, never hand back an unverified one.
"""

from repro.portfolio.engine import (
    PortfolioState,
    default_state,
    portfolio_candidates,
    reset_default_state,
    set_default_state,
    solve_mt_portfolio,
)
from repro.portfolio.features import WorkloadFeatures, features_of, multi_features
from repro.portfolio.model import PortfolioModel, Prediction
from repro.portfolio.records import RunLedger, RunRecord
from repro.portfolio.strategy import (
    BestPredicted,
    DeadlineRace,
    Decision,
    EpsilonGreedy,
    UCB1,
    make_strategy,
    rank_candidates,
)

__all__ = [
    "BestPredicted",
    "DeadlineRace",
    "Decision",
    "EpsilonGreedy",
    "PortfolioModel",
    "PortfolioState",
    "Prediction",
    "RunLedger",
    "RunRecord",
    "UCB1",
    "WorkloadFeatures",
    "default_state",
    "features_of",
    "make_strategy",
    "multi_features",
    "portfolio_candidates",
    "rank_candidates",
    "reset_default_state",
    "set_default_state",
    "solve_mt_portfolio",
]
