"""Microprograms for SHyRA.

A microprogram is a sequence of configuration words with (optional)
data-dependent control flow — exactly the structure needed by the 4-bit
counter with *variable* upper bound, whose iteration count depends on
register contents.

Control model: after a step's cycle executes, its (optional) branch is
evaluated against the *new* register state.  A branch either jumps to a
label or halts; without a branch (or when its condition fails) control
falls through to the next step, and falling off the end halts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.shyra.config import ConfigWord, N_REGISTERS

__all__ = ["Branch", "ProgramStep", "Microprogram", "HALT"]

#: Sentinel branch target meaning "stop execution".
HALT = "__halt__"


@dataclass(frozen=True)
class Branch:
    """Conditional transfer of control evaluated after a cycle.

    Jump to ``target`` (a label or :data:`HALT`) when register
    ``register`` equals ``value``; fall through otherwise.
    """

    register: int
    value: int
    target: str

    def __post_init__(self):
        if not 0 <= self.register < N_REGISTERS:
            raise ValueError(f"branch register out of range: {self.register}")
        if self.value not in (0, 1):
            raise ValueError("branch value must be 0 or 1")
        if not self.target:
            raise ValueError("branch target must be non-empty")


@dataclass(frozen=True)
class ProgramStep:
    """One microinstruction: a configuration plus control metadata.

    Attributes
    ----------
    config:
        The full configuration word driving the cycle.
    label:
        Optional branch target name (unique within the program).
    branch:
        Optional conditional branch evaluated after the cycle.
    written_mask:
        Configuration bits the programmer explicitly set in this step
        (the assembler records it; held fields are excluded).  Used by
        the WRITTEN requirement semantics.
    comment:
        Free-form documentation shown by disassemblies.
    """

    config: ConfigWord
    label: str | None = None
    branch: Branch | None = None
    written_mask: int = 0
    comment: str = ""


class Microprogram:
    """A validated sequence of :class:`ProgramStep`."""

    def __init__(self, steps: Sequence[ProgramStep]):
        steps = tuple(steps)
        if not steps:
            raise ValueError("a microprogram needs at least one step")
        labels: dict[str, int] = {}
        for idx, step in enumerate(steps):
            if step.label is not None:
                if step.label in labels:
                    raise ValueError(f"duplicate label {step.label!r}")
                if step.label == HALT:
                    raise ValueError(f"{HALT!r} is reserved")
                labels[step.label] = idx
        for step in steps:
            if step.branch and step.branch.target != HALT:
                if step.branch.target not in labels:
                    raise ValueError(
                        f"branch target {step.branch.target!r} undefined"
                    )
        self._steps = steps
        self._labels = labels

    @property
    def steps(self) -> tuple[ProgramStep, ...]:
        return self._steps

    @property
    def labels(self) -> Mapping[str, int]:
        return dict(self._labels)

    def __len__(self) -> int:
        return len(self._steps)

    def __getitem__(self, idx: int) -> ProgramStep:
        return self._steps[idx]

    def target_index(self, label: str) -> int:
        return self._labels[label]

    def disassemble(self) -> str:
        """Human-readable listing (used in docs and debugging)."""
        lines = []
        for idx, step in enumerate(self._steps):
            head = f"{idx:3d}"
            if step.label:
                head += f" {step.label}:"
            cfg = step.config
            body = (
                f" lut1=0x{cfg.lut1_tt:02x}->r{cfg.demux1}"
                f" lut2=0x{cfg.lut2_tt:02x}->r{cfg.demux2}"
                f" mux={','.join(f'r{s}' for s in cfg.mux)}"
            )
            if step.branch:
                body += (
                    f" ; if r{step.branch.register}=={step.branch.value}"
                    f" goto {step.branch.target}"
                )
            if step.comment:
                body += f"   # {step.comment}"
            lines.append(head + body)
        return "\n".join(lines)
