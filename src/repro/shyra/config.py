"""SHyRA configuration words.

One configuration word fully determines one execution cycle.  Layout
(48 bits, LSB first)::

    bits  0– 7   LUT1 truth table  (bit k = output for input index k)
    bits  8–15   LUT2 truth table
    bits 16–19   DeMUX target register of LUT1's output (0–9)
    bits 20–23   DeMUX target register of LUT2's output (0–9)
    bits 24–47   MUX selectors: six 4-bit register indices (0–9),
                 selectors 0–2 feed LUT1 inputs (a, b, c),
                 selectors 3–5 feed LUT2 inputs (a, b, c)

The truth-table input index of a LUT is ``a + 2·b + 4·c``.

The per-component bit counts give the task sizes of the paper's
multi-task split: LUT1 = 8, LUT2 = 8, DeMUX = 8, MUX = 24 local
switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "N_REGISTERS",
    "N_CONFIG_BITS",
    "FIELD_LAYOUT",
    "COMPONENT_BIT_RANGES",
    "ConfigWord",
]

N_REGISTERS = 10
N_CONFIG_BITS = 48

#: name -> (lsb offset, width) for every configuration field.
FIELD_LAYOUT: dict[str, tuple[int, int]] = {
    "lut1_tt": (0, 8),
    "lut2_tt": (8, 8),
    "demux1": (16, 4),
    "demux2": (20, 4),
    "mux0": (24, 4),
    "mux1": (28, 4),
    "mux2": (32, 4),
    "mux3": (36, 4),
    "mux4": (40, 4),
    "mux5": (44, 4),
}

#: component -> (lsb, width); the paper's four tasks.
COMPONENT_BIT_RANGES: dict[str, tuple[int, int]] = {
    "LUT1": (0, 8),
    "LUT2": (8, 8),
    "DEMUX": (16, 8),
    "MUX": (24, 24),
}


def _check_reg(value: int, what: str) -> None:
    if not 0 <= value < N_REGISTERS:
        raise ValueError(f"{what} must be a register index 0–{N_REGISTERS - 1}, got {value}")


def _check_tt(value: int, what: str) -> None:
    if not 0 <= value <= 0xFF:
        raise ValueError(f"{what} must be an 8-bit truth table, got {value}")


@dataclass(frozen=True)
class ConfigWord:
    """A decoded 48-bit SHyRA configuration.

    Attributes
    ----------
    lut1_tt, lut2_tt:
        8-bit truth tables.
    demux1, demux2:
        Target register (0–9) of each LUT's output.
    mux:
        Six register indices: ``mux[0:3]`` feed LUT1's inputs a, b, c;
        ``mux[3:6]`` feed LUT2's.
    """

    lut1_tt: int = 0
    lut2_tt: int = 0
    demux1: int = 0
    demux2: int = 1
    mux: tuple[int, int, int, int, int, int] = (0, 0, 0, 0, 0, 0)

    def __post_init__(self):
        _check_tt(self.lut1_tt, "lut1_tt")
        _check_tt(self.lut2_tt, "lut2_tt")
        _check_reg(self.demux1, "demux1")
        _check_reg(self.demux2, "demux2")
        mux = tuple(self.mux)
        if len(mux) != 6:
            raise ValueError("mux must contain exactly six selectors")
        for k, sel in enumerate(mux):
            _check_reg(sel, f"mux{k}")
        object.__setattr__(self, "mux", mux)
        if self.demux1 == self.demux2:
            raise ValueError(
                "demux1 and demux2 must target different registers "
                "(simultaneous write conflict)"
            )

    # -- codec ---------------------------------------------------------------

    def encode(self) -> int:
        """Pack into the canonical 48-bit integer."""
        word = self.lut1_tt
        word |= self.lut2_tt << 8
        word |= self.demux1 << 16
        word |= self.demux2 << 20
        for k, sel in enumerate(self.mux):
            word |= sel << (24 + 4 * k)
        return word

    @classmethod
    def decode(cls, word: int) -> "ConfigWord":
        """Inverse of :meth:`encode`; validates every field."""
        if word < 0 or word >= 1 << N_CONFIG_BITS:
            raise ValueError(f"configuration word out of range: {word:#x}")
        return cls(
            lut1_tt=word & 0xFF,
            lut2_tt=(word >> 8) & 0xFF,
            demux1=(word >> 16) & 0xF,
            demux2=(word >> 20) & 0xF,
            mux=tuple((word >> (24 + 4 * k)) & 0xF for k in range(6)),
        )

    # -- queries ---------------------------------------------------------------

    def delta_mask(self, previous: "ConfigWord | int") -> int:
        """Bits that must change when reconfiguring from ``previous``."""
        prev = previous if isinstance(previous, int) else previous.encode()
        return self.encode() ^ prev

    def lut1_inputs(self) -> tuple[int, int, int]:
        return self.mux[0:3]

    def lut2_inputs(self) -> tuple[int, int, int]:
        return self.mux[3:6]

    @staticmethod
    def field_mask(name: str) -> int:
        """Bitmask occupied by a named field (see :data:`FIELD_LAYOUT`)."""
        lsb, width = FIELD_LAYOUT[name]
        return ((1 << width) - 1) << lsb

    @staticmethod
    def component_mask(component: str) -> int:
        """Bitmask of a component's switches (see
        :data:`COMPONENT_BIT_RANGES`)."""
        lsb, width = COMPONENT_BIT_RANGES[component]
        return ((1 << width) - 1) << lsb
