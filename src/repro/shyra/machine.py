"""Cycle-accurate SHyRA execution.

Per cycle the machine (Figure 1):

1. routes six register values through the 10:6 MUX to the LUT inputs,
2. evaluates both 3-input LUTs,
3. routes both outputs through the 2:10 DeMUX into the register file
   (simultaneous read-then-write: all reads see the cycle-start state).

A full configuration word is applied before every cycle — SHyRA's tiny
datapath forces time-partitioned designs into *extensive* runtime
reconfiguration, which is exactly why it profits from (partial)
hyperreconfiguration (Section 6).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.shyra.components import Demux, Lut, Mux, RegisterFile
from repro.shyra.config import ConfigWord
from repro.shyra.program import HALT, Microprogram

__all__ = ["MachineError", "ExecutionRecord", "ShyraMachine"]


class MachineError(RuntimeError):
    """Raised on invalid executions (e.g. cycle-budget exhaustion)."""


@dataclass(frozen=True)
class ExecutionRecord:
    """What happened in one executed cycle."""

    cycle: int
    step_index: int
    config_word: int
    written_mask: int
    registers_after: tuple[int, ...]


class ShyraMachine:
    """The simulator: a register file plus per-cycle configured datapath."""

    def __init__(self, initial_registers: Sequence[int] | None = None):
        self.registers = RegisterFile(initial_registers)
        self._cycles = 0

    @property
    def cycles(self) -> int:
        """Number of cycles executed so far."""
        return self._cycles

    # -- single cycle ---------------------------------------------------------

    def step(self, config: ConfigWord) -> tuple[int, int]:
        """Execute one cycle under ``config``; returns both LUT outputs."""
        inputs = Mux.select(self.registers, config.mux)
        lut1_out = Lut(config.lut1_tt).evaluate(*inputs[0:3])
        lut2_out = Lut(config.lut2_tt).evaluate(*inputs[3:6])
        Demux.route(
            self.registers,
            [(config.demux1, lut1_out), (config.demux2, lut2_out)],
        )
        self._cycles += 1
        return lut1_out, lut2_out

    # -- program execution -------------------------------------------------------

    def run(
        self,
        program: Microprogram,
        *,
        max_cycles: int = 100_000,
        record: bool = True,
    ) -> list[ExecutionRecord]:
        """Run ``program`` until it halts; returns the execution trace.

        Raises :class:`MachineError` when ``max_cycles`` is exceeded —
        the guard that catches diverging data-dependent loops.
        """
        records: list[ExecutionRecord] = []
        pc = 0
        executed = 0
        while 0 <= pc < len(program):
            step = program[pc]
            self.step(step.config)
            executed += 1
            if record:
                records.append(
                    ExecutionRecord(
                        cycle=executed,
                        step_index=pc,
                        config_word=step.config.encode(),
                        written_mask=step.written_mask,
                        registers_after=self.registers.snapshot(),
                    )
                )
            if executed > max_cycles:
                raise MachineError(
                    f"program exceeded {max_cycles} cycles without halting"
                )
            branch = step.branch
            if branch is not None and self.registers.read(branch.register) == branch.value:
                if branch.target == HALT:
                    break
                pc = program.target_index(branch.target)
            else:
                pc += 1
        return records
