"""The SHyRA switch universe and the paper's task splits.

Every configuration bit is one local switch.  The multi-task split of
Section 6 assigns each datapath component to one task::

    T1 = LUT1   (l1 =  8 switches)
    T2 = LUT2   (l2 =  8 switches)
    T3 = DeMUX  (l3 =  8 switches)
    T4 = MUX    (l4 = 24 switches)

with local hyperreconfiguration costs ``v_j = l_j`` (switch-model
default).  The single-task comparison merges all components into one
task of 48 switches with ``w = 48``.
"""

from __future__ import annotations

from repro.core.switches import SwitchSet, SwitchUniverse
from repro.core.task import Task, TaskSystem
from repro.shyra.config import COMPONENT_BIT_RANGES, FIELD_LAYOUT, N_CONFIG_BITS

__all__ = [
    "shyra_switch_names",
    "shyra_universe",
    "shyra_task_system",
    "shyra_single_task_system",
    "component_masks",
]


def shyra_switch_names() -> list[str]:
    """Names for all 48 configuration bits, LSB-first per the layout."""
    names: list[str] = [""] * N_CONFIG_BITS
    for field, (lsb, width) in FIELD_LAYOUT.items():
        for k in range(width):
            names[lsb + k] = f"{field}_b{k}"
    assert all(names)
    return names


def shyra_universe() -> SwitchUniverse:
    """The 48-switch universe of SHyRA configuration bits."""
    return SwitchUniverse(shyra_switch_names())


def component_masks() -> dict[str, int]:
    """Component name -> switch bitmask (LUT1/LUT2/DEMUX/MUX)."""
    out = {}
    for comp, (lsb, width) in COMPONENT_BIT_RANGES.items():
        out[comp] = ((1 << width) - 1) << lsb
    return out


def shyra_task_system(universe: SwitchUniverse | None = None) -> TaskSystem:
    """The m = 4 task system of the paper (T1=LUT1 … T4=MUX)."""
    universe = universe or shyra_universe()
    masks = component_masks()
    tasks = [
        Task("LUT1", SwitchSet(universe, masks["LUT1"])),
        Task("LUT2", SwitchSet(universe, masks["LUT2"])),
        Task("DEMUX", SwitchSet(universe, masks["DEMUX"])),
        Task("MUX", SwitchSet(universe, masks["MUX"])),
    ]
    return TaskSystem(universe, tasks)


def shyra_single_task_system(
    universe: SwitchUniverse | None = None,
) -> TaskSystem:
    """The m = 1 comparison: all components combined into one task."""
    return shyra_task_system(universe).merged_single_task("SHYRA")
