"""4-bit ripple-carry adder on SHyRA.

Computes ``A + B`` for operands in r0–r3 and r4–r7; the sum overwrites
A (r0–r3), the carry ripples through r8, and the final carry-out lands
in r9.  Sum and carry of one bit are both 3-input functions of
``(a_k, b_k, carry)`` (``XOR3`` and ``MAJ3``), so each bit costs one
cycle: 1 seed + 4 bit cycles + 1 carry-out copy = 6 reconfigurations.
"""

from __future__ import annotations

from repro.shyra.assembler import LUT_OPS, ProgramBuilder
from repro.shyra.program import Microprogram

__all__ = [
    "A_REGS",
    "B_REGS",
    "CARRY_REG",
    "COUT_REG",
    "build_adder_program",
    "adder_registers",
    "reference_add",
]

A_REGS = (0, 1, 2, 3)
B_REGS = (4, 5, 6, 7)
CARRY_REG = 8
COUT_REG = 9


def adder_registers(a: int, b: int) -> list[int]:
    if not 0 <= a < 16 or not 0 <= b < 16:
        raise ValueError("operands must be 4-bit values")
    regs = [0] * 10
    for k in range(4):
        regs[A_REGS[k]] = (a >> k) & 1
        regs[B_REGS[k]] = (b >> k) & 1
    return regs


def reference_add(a: int, b: int) -> tuple[int, int]:
    """Reference model: ``(sum mod 16, carry_out)``."""
    total = a + b
    return total & 0xF, total >> 4


def build_adder_program(hold_unused: bool = True) -> Microprogram:
    """Clear the carry, ripple through the bits, publish carry-out."""
    CONST0, ID = LUT_OPS["CONST0"], LUT_OPS["ID"]
    XOR3, MAJ3 = LUT_OPS["XOR3"], LUT_OPS["MAJ3"]
    b = ProgramBuilder(hold_unused=hold_unused)
    b.step(
        lut1=(CONST0, [0], CARRY_REG),
        lut2=(CONST0, [0], COUT_REG),
        comment="seed: carry=0, cout=0",
    )
    for k in range(4):
        b.step(
            lut1=(XOR3, [A_REGS[k], B_REGS[k], CARRY_REG], A_REGS[k]),
            lut2=(MAJ3, [A_REGS[k], B_REGS[k], CARRY_REG], CARRY_REG),
            comment=f"bit{k}: sum/carry",
        )
    b.step(
        lut1=(ID, [CARRY_REG], COUT_REG),
        lut2=(ID, [CARRY_REG], CARRY_REG),
        comment="publish carry-out",
    )
    return b.build()
