"""4-bit magnitude comparator on SHyRA.

Computes ``A > B`` and ``A == B`` for the 4-bit operands in r0–r3 and
r4–r7.  Scanning LSB → MSB with the recurrence

    gt' = a_k·¬b_k  ∨  (a_k ≡ b_k)·gt
    eq' = eq · (a_k ≡ b_k)

both updates are 3-input functions (``GTSTEP`` and ``ANDXNOR`` cells),
so each bit costs a single cycle: 1 seed cycle + 4 bit cycles = 5
reconfigurations for the whole comparison.
"""

from __future__ import annotations

from repro.shyra.assembler import LUT_OPS, ProgramBuilder
from repro.shyra.program import Microprogram

__all__ = [
    "A_REGS",
    "B_REGS",
    "EQ_REG",
    "GT_REG",
    "build_comparator_program",
    "comparator_registers",
    "reference_compare",
]

A_REGS = (0, 1, 2, 3)
B_REGS = (4, 5, 6, 7)
EQ_REG = 8
GT_REG = 9


def comparator_registers(a: int, b: int) -> list[int]:
    """Initial register contents for comparing ``a`` and ``b``."""
    if not 0 <= a < 16 or not 0 <= b < 16:
        raise ValueError("operands must be 4-bit values")
    regs = [0] * 10
    for k in range(4):
        regs[A_REGS[k]] = (a >> k) & 1
        regs[B_REGS[k]] = (b >> k) & 1
    return regs


def reference_compare(a: int, b: int) -> tuple[int, int]:
    """Reference model: ``(A > B, A == B)`` flags."""
    return int(a > b), int(a == b)


def build_comparator_program(hold_unused: bool = True) -> Microprogram:
    """Seed gt=0 / eq=1, then one GTSTEP+ANDXNOR cycle per bit."""
    CONST0, CONST1 = LUT_OPS["CONST0"], LUT_OPS["CONST1"]
    GTSTEP, ANDXNOR = LUT_OPS["GTSTEP"], LUT_OPS["ANDXNOR"]
    b = ProgramBuilder(hold_unused=hold_unused)
    b.step(
        lut1=(CONST0, [0], GT_REG),
        lut2=(CONST1, [0], EQ_REG),
        comment="seed: gt=0, eq=1",
    )
    for k in range(4):  # LSB first
        b.step(
            lut1=(GTSTEP, [GT_REG, A_REGS[k], B_REGS[k]], GT_REG),
            lut2=(ANDXNOR, [EQ_REG, A_REGS[k], B_REGS[k]], EQ_REG),
            comment=f"bit{k}: gt/eq recurrence",
        )
    return b.build()
