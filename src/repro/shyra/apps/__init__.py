"""Example applications mapped onto SHyRA.

* :mod:`repro.shyra.apps.counter` — the paper's evaluation workload:
  a time-partitioned 4-bit counter with a variable upper bound
  (11-cycle loop body, 110 reconfigurations for 0000 → 1010);
* :mod:`repro.shyra.apps.comparator` — 4-bit equality/greater-than
  comparator;
* :mod:`repro.shyra.apps.adder` — 4-bit ripple-carry adder;
* :mod:`repro.shyra.apps.gray` — Gray-code sequence generator;
* :mod:`repro.shyra.apps.parity` — serial parity / LFSR-style stream.

Each module exposes a ``build_*_program`` function plus a pure-Python
reference model that the tests compare the simulated run against.
"""

from repro.shyra.apps.counter import (
    build_counter_program,
    counter_registers,
    expected_counter_cycles,
)
from repro.shyra.apps.comparator import build_comparator_program
from repro.shyra.apps.adder import build_adder_program
from repro.shyra.apps.gray import build_gray_program
from repro.shyra.apps.parity import build_parity_program
from repro.shyra.apps.lfsr import build_lfsr_program

__all__ = [
    "build_counter_program",
    "counter_registers",
    "expected_counter_cycles",
    "build_comparator_program",
    "build_adder_program",
    "build_gray_program",
    "build_parity_program",
    "build_lfsr_program",
]
