"""Gray-code sequence generator on SHyRA.

Maintains a 4-bit binary counter in r0–r3 (incremented exactly like
the paper's counter app) and keeps the corresponding reflected Gray
code ``g = v XOR (v >> 1)`` in r4–r7, refreshed after every increment.
One iteration = 4 increment cycles + 4 Gray cycles; the program runs a
fixed number of iterations controlled by a countdown on the binary
value (it halts when the counter wraps to zero), exercising a second
loop-structured workload with a different task-activity mix than the
counter (the DeMUX retargets on every cycle).
"""

from __future__ import annotations

from repro.shyra.assembler import LUT_OPS, ProgramBuilder
from repro.shyra.program import Microprogram

__all__ = [
    "VALUE_REGS",
    "GRAY_REGS",
    "CARRY_REG",
    "ZERO_REG",
    "build_gray_program",
    "gray_registers",
    "reference_gray",
    "CYCLES_PER_ITERATION",
]

VALUE_REGS = (0, 1, 2, 3)
GRAY_REGS = (4, 5, 6, 7)
CARRY_REG = 8
ZERO_REG = 9

CYCLES_PER_ITERATION = 9


def gray_registers(start: int) -> list[int]:
    if not 0 <= start < 16:
        raise ValueError("start must be a 4-bit value")
    regs = [0] * 10
    g = start ^ (start >> 1)
    for k in range(4):
        regs[VALUE_REGS[k]] = (start >> k) & 1
        regs[GRAY_REGS[k]] = (g >> k) & 1
    return regs


def reference_gray(value: int) -> int:
    """Reflected Gray code of a 4-bit value."""
    return (value ^ (value >> 1)) & 0xF


def build_gray_program(hold_unused: bool = True) -> Microprogram:
    """Increment, recompute the Gray bits, loop until wrap to 0.

    The wrap test reuses the carry chain: after the increment the
    counter is zero iff every sum bit is 0, tracked by NOR-folding into
    r9 during the Gray phase (g3 = v3 needs no XOR partner, freeing
    LUT2 for the fold).
    """
    NOT, ID = LUT_OPS["NOT"], LUT_OPS["ID"]
    XOR, AND = LUT_OPS["XOR"], LUT_OPS["AND"]
    NOR, ANDN = LUT_OPS["NOR"], LUT_OPS["ANDN"]
    b = ProgramBuilder(hold_unused=hold_unused)
    # --- increment (as in the counter app) -----------------------------
    b.step(
        lut1=(NOT, [VALUE_REGS[0]], VALUE_REGS[0]),
        lut2=(ID, [VALUE_REGS[0]], CARRY_REG),
        label="loop",
        comment="inc bit0",
    )
    for k in (1, 2, 3):
        b.step(
            lut1=(XOR, [VALUE_REGS[k], CARRY_REG], VALUE_REGS[k]),
            lut2=(AND, [VALUE_REGS[k], CARRY_REG], CARRY_REG),
            comment=f"inc bit{k}",
        )
    # --- Gray refresh + zero fold --------------------------------------
    b.step(
        lut1=(XOR, [VALUE_REGS[0], VALUE_REGS[1]], GRAY_REGS[0]),
        lut2=(NOR, [VALUE_REGS[0], VALUE_REGS[1]], ZERO_REG),
        comment="g0 = v0^v1; zero = ¬(v0∨v1)",
    )
    b.step(
        lut1=(XOR, [VALUE_REGS[1], VALUE_REGS[2]], GRAY_REGS[1]),
        lut2=(ANDN, [ZERO_REG, VALUE_REGS[2]], ZERO_REG),
        comment="g1 = v1^v2; zero &= ¬v2",
    )
    b.step(
        lut1=(XOR, [VALUE_REGS[2], VALUE_REGS[3]], GRAY_REGS[2]),
        lut2=(ANDN, [ZERO_REG, VALUE_REGS[3]], ZERO_REG),
        comment="g2 = v2^v3; zero &= ¬v3",
    )
    b.step(
        lut1=(ID, [VALUE_REGS[3]], GRAY_REGS[3]),
        lut2=(ID, [ZERO_REG], ZERO_REG),
        comment="g3 = v3",
    )
    b.step(
        lut1=(ID, [ZERO_REG], ZERO_REG),
        lut2=(ID, [CARRY_REG], CARRY_REG),
        comment="zero-flag commit",
    )
    b.branch_if(ZERO_REG, 0, "loop")
    return b.build()
