"""Serial parity accumulator on SHyRA.

Folds the eight data bits r0–r7 into their XOR parity (r9) one bit per
cycle.  A deliberately LUT-stable workload: the truth tables are
configured once and only the MUX selectors advance, so its context
requirements concentrate in the MUX task — the opposite activity mix
of the counter.  Used by the trace-semantics and workload ablations.
"""

from __future__ import annotations

from repro.shyra.assembler import LUT_OPS, ProgramBuilder
from repro.shyra.program import Microprogram

__all__ = [
    "DATA_REGS",
    "SCRATCH_REG",
    "PARITY_REG",
    "build_parity_program",
    "parity_registers",
    "reference_parity",
]

DATA_REGS = (0, 1, 2, 3, 4, 5, 6, 7)
SCRATCH_REG = 8
PARITY_REG = 9


def parity_registers(data: int) -> list[int]:
    if not 0 <= data < 256:
        raise ValueError("data must be an 8-bit value")
    regs = [0] * 10
    for k in range(8):
        regs[DATA_REGS[k]] = (data >> k) & 1
    return regs


def reference_parity(data: int) -> int:
    return bin(data & 0xFF).count("1") & 1


def build_parity_program(hold_unused: bool = True) -> Microprogram:
    """Seed parity=0 then XOR-fold r0…r7, one bit per cycle."""
    CONST0, ID, XOR = LUT_OPS["CONST0"], LUT_OPS["ID"], LUT_OPS["XOR"]
    b = ProgramBuilder(hold_unused=hold_unused)
    b.step(
        lut1=(CONST0, [0], PARITY_REG),
        lut2=(CONST0, [0], SCRATCH_REG),
        comment="seed: parity=0",
    )
    for k, reg in enumerate(DATA_REGS):
        b.step(
            lut1=(XOR, [PARITY_REG, reg], PARITY_REG),
            lut2=(ID, [reg], SCRATCH_REG),
            comment=f"fold bit{k}",
        )
    return b.build()
