"""The paper's test application: a 4-bit counter with variable upper
bound (Section 6).

    "The counter increments its value that is stored in the first four
    registers until it has reached the value stored in registers five
    to eight.  As all operations can only be performed through the use
    of the LUTs it is impossible to implement the counter in one clock
    cycle.  The design is thus time partitioned."

Register map (LSB first)::

    r0–r3   counter value
    r4–r7   upper bound
    r8      ripple carry / equality scratch
    r9      equality accumulator (1 after the compare phase iff
            counter == bound; the loop branch tests it)

The loop body takes **11 cycles** — 4 increment cycles (sum via LUT1,
carry via LUT2) and 7 compare cycles (bit 0 fused into the
accumulator init, bits 1–3 as XNOR + AND pairs).  Counting 0000 → 1010
therefore executes 10 iterations = **110 reconfigurations**, matching
the trace length reported in the paper.
"""

from __future__ import annotations

from repro.shyra.assembler import LUT_OPS, ProgramBuilder
from repro.shyra.program import HALT, Microprogram

__all__ = [
    "COUNTER_REGS",
    "BOUND_REGS",
    "CARRY_REG",
    "ACC_REG",
    "counter_registers",
    "build_counter_program",
    "expected_counter_cycles",
    "CYCLES_PER_ITERATION",
]

COUNTER_REGS = (0, 1, 2, 3)
BOUND_REGS = (4, 5, 6, 7)
CARRY_REG = 8
ACC_REG = 9

#: Length of the loop body (4 increment + 7 compare cycles).
CYCLES_PER_ITERATION = 11


def counter_registers(start: int, bound: int) -> list[int]:
    """Initial register-file contents for a counter run."""
    if not 0 <= start < 16 or not 0 <= bound < 16:
        raise ValueError("start and bound must be 4-bit values")
    regs = [0] * 10
    for k in range(4):
        regs[COUNTER_REGS[k]] = (start >> k) & 1
        regs[BOUND_REGS[k]] = (bound >> k) & 1
    return regs


def build_counter_program(hold_unused: bool = True) -> Microprogram:
    """Build the 11-cycle counter loop.

    Increment phase (ripple, LSB first): LUT1 computes the sum bit,
    LUT2 the carry — both read the same operands, so the MUX selectors
    are shared-shape and the per-cycle configuration deltas stay small.

    Compare phase: cycle ``cmp0`` seeds the accumulator with
    ``r0 XNOR r4``; each further bit takes an XNOR cycle (into the
    scratch register) and an AND-accumulate cycle.  The idle LUT copies
    a live register onto itself, which holds its configuration fields
    nearly constant.
    """
    NOT, ID = LUT_OPS["NOT"], LUT_OPS["ID"]
    XOR, AND, XNOR = LUT_OPS["XOR"], LUT_OPS["AND"], LUT_OPS["XNOR"]
    b = ProgramBuilder(hold_unused=hold_unused)
    # --- increment: counter += 1 (mod 16) ---------------------------------
    b.step(
        lut1=(NOT, [COUNTER_REGS[0]], COUNTER_REGS[0]),
        lut2=(ID, [COUNTER_REGS[0]], CARRY_REG),
        label="inc0",
        comment="bit0: sum = NOT c0, carry = c0",
    )
    for k in (1, 2, 3):
        b.step(
            lut1=(XOR, [COUNTER_REGS[k], CARRY_REG], COUNTER_REGS[k]),
            lut2=(AND, [COUNTER_REGS[k], CARRY_REG], CARRY_REG),
            comment=f"bit{k}: sum = c{k} XOR carry, carry = c{k} AND carry",
        )
    # --- compare: acc = (counter == bound) --------------------------------
    b.step(
        lut1=(XNOR, [COUNTER_REGS[0], BOUND_REGS[0]], ACC_REG),
        lut2=(ID, [CARRY_REG], CARRY_REG),
        comment="cmp0: acc = c0 XNOR b0",
    )
    for k in (1, 2, 3):
        b.step(
            lut1=(XNOR, [COUNTER_REGS[k], BOUND_REGS[k]], CARRY_REG),
            lut2=(ID, [ACC_REG], ACC_REG),
            comment=f"cmp{k}a: e = c{k} XNOR b{k}",
        )
        b.step(
            lut1=(AND, [ACC_REG, CARRY_REG], ACC_REG),
            lut2=(ID, [CARRY_REG], CARRY_REG),
            comment=f"cmp{k}b: acc = acc AND e",
        )
    # Loop while acc == 0; halt by falling through when acc == 1.
    b.branch_if(ACC_REG, 0, "inc0")
    return b.build()


def expected_counter_cycles(start: int, bound: int) -> int:
    """Reference model: cycles until the counter halts.

    The body increments first and compares afterwards, so the run
    executes ``(bound - start) mod 16`` iterations — except that equal
    start and bound require a full wrap-around of 16 increments.
    """
    if not 0 <= start < 16 or not 0 <= bound < 16:
        raise ValueError("start and bound must be 4-bit values")
    iterations = (bound - start) % 16
    if iterations == 0:
        iterations = 16
    return iterations * CYCLES_PER_ITERATION
