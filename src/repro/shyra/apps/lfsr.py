"""4-bit Fibonacci LFSR on SHyRA (taps x⁴ + x³ + 1).

Cycles the register through the maximal-length 15-state sequence until
it returns to the seed, giving a third *loop-structured* workload with
a different shape from the counter: the shift phase retargets the
DeMUX every cycle while both truth tables stay almost constant, so its
requirement mass sits in the DeMUX/MUX tasks.

Register map: state in r0–r3 (r3 = newest bit), seed copy in r4–r7,
feedback scratch r8, equality accumulator r9.  One iteration =
5 shift/feedback cycles + 4 fused compare cycles = 9 cycles; a
maximal-length run from a non-zero seed is 15 iterations = 135 cycles.
"""

from __future__ import annotations

from repro.shyra.assembler import LUT_OPS, ProgramBuilder
from repro.shyra.program import Microprogram

__all__ = [
    "STATE_REGS",
    "SEED_REGS",
    "FEEDBACK_REG",
    "ACC_REG",
    "CYCLES_PER_ITERATION",
    "lfsr_registers",
    "reference_lfsr_step",
    "reference_lfsr_period",
    "build_lfsr_program",
]

STATE_REGS = (0, 1, 2, 3)
SEED_REGS = (4, 5, 6, 7)
FEEDBACK_REG = 8
ACC_REG = 9

CYCLES_PER_ITERATION = 9


def lfsr_registers(seed: int) -> list[int]:
    """Initial registers; the seed must be non-zero (0 is a fixpoint)."""
    if not 1 <= seed < 16:
        raise ValueError("seed must be a non-zero 4-bit value")
    regs = [0] * 10
    for k in range(4):
        regs[STATE_REGS[k]] = (seed >> k) & 1
        regs[SEED_REGS[k]] = (seed >> k) & 1
    return regs


def reference_lfsr_step(state: int) -> int:
    """One Fibonacci step: feedback = s3 XOR s2, shift left into bit 0.

    Bit numbering: bit k of ``state`` is register r``k``; the newest
    bit enters at r0 and bits shift toward r3.
    """
    feedback = ((state >> 3) ^ (state >> 2)) & 1
    return ((state << 1) & 0xF) | feedback


def reference_lfsr_period(seed: int) -> int:
    """Iterations until the state returns to ``seed`` (15 for non-zero
    seeds of the maximal-length polynomial)."""
    state = reference_lfsr_step(seed)
    steps = 1
    while state != seed:
        state = reference_lfsr_step(state)
        steps += 1
        if steps > 16:  # pragma: no cover - safety net
            raise AssertionError("LFSR failed to cycle")
    return steps


def build_lfsr_program(hold_unused: bool = True) -> Microprogram:
    """Shift/feedback phase then fused compare-to-seed phase.

    The shift must respect simultaneous read/write semantics: each
    cycle moves one bit (r2→r3, r1→r2, r0→r1, feedback→r0), reading the
    old values before any overwrite in that cycle.
    """
    ID, XOR = LUT_OPS["ID"], LUT_OPS["XOR"]
    XNOR, ANDXNOR = LUT_OPS["XNOR"], LUT_OPS["ANDXNOR"]
    b = ProgramBuilder(hold_unused=hold_unused)
    # feedback = s3 XOR s2 into r8; r3 takes old r2 in the same cycle.
    b.step(
        lut1=(XOR, [STATE_REGS[3], STATE_REGS[2]], FEEDBACK_REG),
        lut2=(ID, [STATE_REGS[2]], STATE_REGS[3]),
        label="loop",
        comment="feedback = s3^s2 ; s3 <- s2",
    )
    b.step(
        lut1=(ID, [STATE_REGS[1]], STATE_REGS[2]),
        lut2=(ID, [FEEDBACK_REG], FEEDBACK_REG),
        comment="s2 <- s1",
    )
    b.step(
        lut1=(ID, [STATE_REGS[0]], STATE_REGS[1]),
        lut2=(ID, [FEEDBACK_REG], FEEDBACK_REG),
        comment="s1 <- s0",
    )
    b.step(
        lut1=(ID, [FEEDBACK_REG], STATE_REGS[0]),
        lut2=(ID, [STATE_REGS[3]], FEEDBACK_REG),
        comment="s0 <- feedback",
    )
    b.step(
        lut1=(ID, [ACC_REG], ACC_REG),
        lut2=(ID, [FEEDBACK_REG], FEEDBACK_REG),
        comment="pipeline settle",
    )
    # Fused compare: acc = Π (s_k ≡ seed_k), seeded by bit 0.
    b.step(
        lut1=(XNOR, [STATE_REGS[0], SEED_REGS[0]], ACC_REG),
        lut2=(ID, [FEEDBACK_REG], FEEDBACK_REG),
        comment="acc = s0 XNOR seed0",
    )
    for k in (1, 2, 3):
        b.step(
            lut1=(ANDXNOR, [ACC_REG, STATE_REGS[k], SEED_REGS[k]], ACC_REG),
            lut2=(ID, [FEEDBACK_REG], FEEDBACK_REG),
            comment=f"acc &= s{k} XNOR seed{k}",
        )
    b.branch_if(ACC_REG, 0, "loop")
    return b.build()
