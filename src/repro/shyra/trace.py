"""Reconfiguration-trace capture.

Executing a microprogram yields one configuration word per cycle; the
cost models consume the corresponding **context-requirement sequence**.
Two extraction semantics are supported:

* ``DELTA`` (paper-faithful default) — the requirement of cycle ``t``
  is the set of configuration bits that *differ* from cycle ``t-1``
  (for ``t = 0``: from the machine's reset configuration).  Bits
  outside the current hypercontext keep their previous values, so a
  reconfiguration is realizable iff the delta lies inside the
  hypercontext — the minimal correct requirement.
* ``WRITTEN`` — the bits of all fields the programmer explicitly wrote
  in the step (hold fields excluded), a conservative superset of DELTA
  on every executed cycle.

The choice is ablated in experiment E10.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.switches import SwitchUniverse
from repro.shyra.machine import ExecutionRecord, ShyraMachine
from repro.shyra.program import Microprogram
from repro.shyra.tasks import shyra_universe

__all__ = ["RequirementSemantics", "TraceResult", "run_and_trace"]


class RequirementSemantics(enum.Enum):
    """How context requirements are derived from an execution."""

    DELTA = "delta"
    WRITTEN = "written"


@dataclass(frozen=True)
class TraceResult:
    """Everything the experiments need from one simulated run.

    Attributes
    ----------
    config_words:
        The 48-bit configuration of every executed cycle.
    requirements:
        The extracted context-requirement sequence (length = #cycles).
    records:
        Full per-cycle execution records (step index, registers, …).
    final_registers:
        Register file contents after the run halted.
    """

    config_words: tuple[int, ...]
    requirements: RequirementSequence
    records: tuple[ExecutionRecord, ...]
    final_registers: tuple[int, ...]

    @property
    def n(self) -> int:
        """Number of reconfiguration steps (one per executed cycle)."""
        return len(self.config_words)


def run_and_trace(
    program: Microprogram,
    *,
    initial_registers: list[int] | None = None,
    semantics: RequirementSemantics = RequirementSemantics.DELTA,
    reset_config: int = 0,
    universe: SwitchUniverse | None = None,
    max_cycles: int = 100_000,
) -> TraceResult:
    """Execute ``program`` on a fresh machine and extract requirements.

    ``reset_config`` is the configuration the machine powers up with
    (all zeros by default); the first cycle's DELTA requirement is
    measured against it.
    """
    universe = universe or shyra_universe()
    machine = ShyraMachine(initial_registers)
    records = machine.run(program, max_cycles=max_cycles)
    words = tuple(r.config_word for r in records)

    masks: list[int] = []
    if semantics is RequirementSemantics.DELTA:
        prev = reset_config
        for word in words:
            masks.append(word ^ prev)
            prev = word
    elif semantics is RequirementSemantics.WRITTEN:
        for r in records:
            masks.append(r.written_mask)
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown semantics {semantics!r}")

    return TraceResult(
        config_words=words,
        requirements=RequirementSequence(universe, masks),
        records=tuple(records),
        final_registers=machine.registers.snapshot(),
    )
