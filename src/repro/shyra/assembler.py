"""Micro-assembler for SHyRA with *hold* field semantics.

Writing raw 48-bit words is error-prone; the builder accepts symbolic
LUT operations and takes care of truth-table expansion, multiplexer
selector allocation and demultiplexer routing.

**Hold semantics** — configuration fields not touched by a step keep
their previous value.  A real compiler for a hyperreconfigurable
machine would do the same, because unchanged configuration bits are
exactly what makes context requirements (deltas) sparse, and sparse
periodic requirements are what hyperreconfiguration monetizes.  The
builder records, per step, the mask of explicitly *written* fields for
the alternative WRITTEN requirement semantics.

Logic functions are arity-1/2/3 boolean functions expanded to 8-bit
truth tables that ignore unused inputs (so a held third selector can
never change behaviour).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.shyra.config import ConfigWord, FIELD_LAYOUT
from repro.shyra.program import Branch, Microprogram, ProgramStep

__all__ = ["LogicFn", "LUT_OPS", "ProgramBuilder"]


@dataclass(frozen=True)
class LogicFn:
    """A boolean function of 1–3 inputs, expandable to a LUT table."""

    name: str
    arity: int
    fn: Callable[..., int]

    def __post_init__(self):
        if self.arity not in (1, 2, 3):
            raise ValueError("LUT functions take 1–3 inputs")

    def truth_table(self) -> int:
        """8-bit table indexed by ``a + 2b + 4c``; ignores unused inputs."""
        tt = 0
        for idx in range(8):
            bits = (idx & 1, (idx >> 1) & 1, (idx >> 2) & 1)
            out = self.fn(*bits[: self.arity])
            if out not in (0, 1):
                raise ValueError(f"{self.name} returned non-boolean {out!r}")
            tt |= out << idx
        return tt

    def __call__(self, *args: int) -> int:
        return self.fn(*args)


#: The standard cell library used by the example applications.
LUT_OPS: dict[str, LogicFn] = {
    op.name: op
    for op in [
        LogicFn("CONST0", 1, lambda a: 0),
        LogicFn("CONST1", 1, lambda a: 1),
        LogicFn("ID", 1, lambda a: a),
        LogicFn("NOT", 1, lambda a: 1 - a),
        LogicFn("AND", 2, lambda a, b: a & b),
        LogicFn("OR", 2, lambda a, b: a | b),
        LogicFn("XOR", 2, lambda a, b: a ^ b),
        LogicFn("XNOR", 2, lambda a, b: 1 - (a ^ b)),
        LogicFn("NAND", 2, lambda a, b: 1 - (a & b)),
        LogicFn("NOR", 2, lambda a, b: 1 - (a | b)),
        LogicFn("ANDN", 2, lambda a, b: a & (1 - b)),
        LogicFn("AND3", 3, lambda a, b, c: a & b & c),
        LogicFn("OR3", 3, lambda a, b, c: a | b | c),
        LogicFn("XOR3", 3, lambda a, b, c: a ^ b ^ c),
        LogicFn("MAJ3", 3, lambda a, b, c: (a + b + c) >> 1),
        LogicFn("ANDXNOR", 3, lambda a, b, c: a & (1 - (b ^ c))),
        LogicFn("SEL", 3, lambda a, b, c: b if c else a),
        # gt-recurrence cell: new_gt = a·¬b ∨ (a ≡ b)·g  (see comparator app)
        LogicFn("GTSTEP", 3, lambda g, a, b: (a & (1 - b)) | (g & (1 - (a ^ b)))),
    ]
}

LutSpec = tuple[LogicFn, Sequence[int], int]  # (function, input regs, target reg)


_CANONICAL_FIELDS: dict[str, int] = {
    "lut1_tt": 0,
    "lut2_tt": 0,
    "demux1": 0,
    "demux2": 1,
    "mux0": 0,
    "mux1": 0,
    "mux2": 0,
    "mux3": 0,
    "mux4": 0,
    "mux5": 0,
}


class ProgramBuilder:
    """Accumulates :class:`ProgramStep` objects.

    Parameters
    ----------
    hold_unused:
        Field policy for configuration bits a step does not need.
        ``True`` (default) holds the previous value — a delta-minimizing
        compiler.  ``False`` resets untouched fields to canonical
        defaults every step — a naive compiler that re-emits don't-care
        values, producing denser configuration deltas.  The policy is
        ablated in experiment E10; the paper does not publish its
        mapping tool, so both ends of the spectrum are provided.
    """

    def __init__(self, hold_unused: bool = True):
        self._hold_unused = hold_unused
        self._fields: dict[str, int] = dict(_CANONICAL_FIELDS)
        self._steps: list[ProgramStep] = []

    # -- internal ----------------------------------------------------------

    def _apply_lut(
        self,
        which: int,
        spec: LutSpec | None,
        written: list[str],
    ) -> None:
        if spec is None:
            return
        fn, inputs, target = spec
        if not isinstance(fn, LogicFn):
            raise TypeError("LUT spec must start with a LogicFn")
        inputs = list(inputs)
        if len(inputs) != fn.arity:
            raise ValueError(
                f"{fn.name} takes {fn.arity} inputs, got {len(inputs)}"
            )
        tt_field = f"lut{which}_tt"
        demux_field = f"demux{which}"
        sel_base = 0 if which == 1 else 3
        self._fields[tt_field] = fn.truth_table()
        written.append(tt_field)
        self._fields[demux_field] = target
        written.append(demux_field)
        for k, reg in enumerate(inputs):
            field = f"mux{sel_base + k}"
            self._fields[field] = reg
            written.append(field)
        if self._hold_unused:
            # Unused selectors of this LUT hold their previous value; the
            # expanded truth table ignores them by construction.
            return
        # Naive-compiler mode: re-emit unused selectors too, pointed at
        # the step's first operand (don't-care values a real mapping tool
        # would produce), which densifies the configuration deltas.
        for k in range(len(inputs), 3):
            field = f"mux{sel_base + k}"
            self._fields[field] = inputs[0]
            written.append(field)

    def _current_config(self) -> ConfigWord:
        f = self._fields
        return ConfigWord(
            lut1_tt=f["lut1_tt"],
            lut2_tt=f["lut2_tt"],
            demux1=f["demux1"],
            demux2=f["demux2"],
            mux=(f["mux0"], f["mux1"], f["mux2"], f["mux3"], f["mux4"], f["mux5"]),
        )

    # -- public API ----------------------------------------------------------

    def step(
        self,
        lut1: LutSpec | None = None,
        lut2: LutSpec | None = None,
        *,
        label: str | None = None,
        comment: str = "",
    ) -> "ProgramBuilder":
        """Append one cycle; unspecified fields hold their values.

        Raises ``ValueError`` if the resulting configuration routes
        both LUT outputs to the same register — specify both targets
        explicitly in that case.
        """
        if not self._hold_unused:
            self._fields = dict(_CANONICAL_FIELDS)
        written: list[str] = []
        self._apply_lut(1, lut1, written)
        self._apply_lut(2, lut2, written)
        try:
            config = self._current_config()
        except ValueError as exc:
            raise ValueError(
                f"step {len(self._steps)} ({comment or label or 'unnamed'}): {exc}"
            ) from exc
        mask = 0
        for name in written:
            mask |= ConfigWord.field_mask(name)
        self._steps.append(
            ProgramStep(
                config=config,
                label=label,
                branch=None,
                written_mask=mask,
                comment=comment,
            )
        )
        return self

    def branch_if(self, register: int, value: int, target: str) -> "ProgramBuilder":
        """Attach a conditional branch to the most recent step."""
        if not self._steps:
            raise ValueError("no step to attach a branch to")
        last = self._steps[-1]
        if last.branch is not None:
            raise ValueError("step already has a branch")
        self._steps[-1] = ProgramStep(
            config=last.config,
            label=last.label,
            branch=Branch(register, value, target),
            written_mask=last.written_mask,
            comment=last.comment,
        )
        return self

    def raw_step(
        self,
        config: ConfigWord,
        *,
        written_mask: int | None = None,
        label: str | None = None,
        comment: str = "",
    ) -> "ProgramBuilder":
        """Escape hatch: append an explicit configuration word.

        ``written_mask`` defaults to "everything" — a raw word claims
        all 48 bits unless stated otherwise.  Builder hold-state is
        synchronized to the raw word.
        """
        for name in FIELD_LAYOUT:
            if name.startswith("mux"):
                self._fields[name] = config.mux[int(name[3:])]
            else:
                self._fields[name] = getattr(config, name)
        self._steps.append(
            ProgramStep(
                config=config,
                label=label,
                branch=None,
                written_mask=(
                    (1 << 48) - 1 if written_mask is None else written_mask
                ),
                comment=comment,
            )
        )
        return self

    def build(self) -> Microprogram:
        return Microprogram(self._steps)
