"""Structural components of the SHyRA datapath.

Each component mirrors one box of the paper's Figure 1.  They are
deliberately tiny, pure classes — the machine wires them together once
per cycle — so each can be unit-tested exhaustively against its truth
semantics.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.shyra.config import N_REGISTERS

__all__ = ["Lut", "RegisterFile", "Mux", "Demux"]


class Lut:
    """A 3-input, 1-output look-up table.

    The 8-bit truth table is indexed by ``a + 2·b + 4·c``.
    """

    __slots__ = ("truth_table",)

    def __init__(self, truth_table: int):
        if not 0 <= truth_table <= 0xFF:
            raise ValueError("truth table must be an 8-bit value")
        self.truth_table = truth_table

    def evaluate(self, a: int, b: int, c: int) -> int:
        for name, v in (("a", a), ("b", b), ("c", c)):
            if v not in (0, 1):
                raise ValueError(f"LUT input {name} must be 0 or 1, got {v}")
        index = a + 2 * b + 4 * c
        return (self.truth_table >> index) & 1


class RegisterFile:
    """Ten 1-bit registers with simultaneous read-then-write semantics."""

    __slots__ = ("_bits",)

    def __init__(self, initial: Sequence[int] | None = None):
        bits = list(initial) if initial is not None else [0] * N_REGISTERS
        if len(bits) != N_REGISTERS:
            raise ValueError(f"register file holds exactly {N_REGISTERS} bits")
        for i, b in enumerate(bits):
            if b not in (0, 1):
                raise ValueError(f"register r{i} must be 0 or 1, got {b}")
        self._bits = bits

    def read(self, index: int) -> int:
        return self._bits[index]

    def write_many(self, writes: Sequence[tuple[int, int]]) -> None:
        """Commit several writes atomically; duplicate targets are a bug."""
        targets = [t for t, _ in writes]
        if len(set(targets)) != len(targets):
            raise ValueError(f"write conflict on registers {targets}")
        for target, value in writes:
            if value not in (0, 1):
                raise ValueError("register values must be 0 or 1")
            self._bits[target] = value

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._bits)

    def load(self, values: Sequence[int]) -> None:
        if len(values) != N_REGISTERS:
            raise ValueError(f"register file holds exactly {N_REGISTERS} bits")
        for i, v in enumerate(values):
            if v not in (0, 1):
                raise ValueError(f"register r{i} must be 0 or 1, got {v}")
        self._bits = list(values)

    def as_int(self, lsb_first: Sequence[int]) -> int:
        """Interpret the listed registers as an unsigned int, LSB first."""
        value = 0
        for k, reg in enumerate(lsb_first):
            value |= self._bits[reg] << k
        return value

    def set_int(self, lsb_first: Sequence[int], value: int) -> None:
        """Store an unsigned int into the listed registers, LSB first."""
        if value < 0 or value >= 1 << len(lsb_first):
            raise ValueError(
                f"value {value} does not fit into {len(lsb_first)} registers"
            )
        for k, reg in enumerate(lsb_first):
            self._bits[reg] = (value >> k) & 1


class Mux:
    """The 10:6 multiplexer: routes register values to the LUT inputs."""

    __slots__ = ()

    @staticmethod
    def select(registers: RegisterFile, selectors: Sequence[int]) -> list[int]:
        return [registers.read(sel) for sel in selectors]


class Demux:
    """The 2:10 demultiplexer: routes both LUT outputs to registers."""

    __slots__ = ()

    @staticmethod
    def route(
        registers: RegisterFile,
        writes: Sequence[tuple[int, int]],
    ) -> None:
        registers.write_many(writes)
