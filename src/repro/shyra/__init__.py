"""SHyRA — the Simple HYperReconfigurable Architecture of Section 6.

A minimalistic rapidly-reconfiguring machine: two 3-input/1-output
look-up tables, a file of ten 1-bit registers, a 10:6 multiplexer
feeding the LUT inputs and a 2:10 demultiplexer routing the LUT outputs
back into the register file.  One configuration word has **48 bits**
(2×8 LUT truth-table bits, 2×4 demultiplexer target bits, 6×4
multiplexer selector bits), each of which is one *switch* of the
MT-Switch cost model.

The subpackage provides a cycle-accurate simulator
(:mod:`repro.shyra.machine`), a configuration-word codec
(:mod:`repro.shyra.config`), a micro-assembler with hold semantics
(:mod:`repro.shyra.assembler`), trace capture that turns executions
into context-requirement sequences (:mod:`repro.shyra.trace`), the
standard task split (:mod:`repro.shyra.tasks`) and the example
applications of the evaluation (:mod:`repro.shyra.apps`).
"""

from repro.shyra.config import ConfigWord, FIELD_LAYOUT, N_CONFIG_BITS
from repro.shyra.machine import ShyraMachine, MachineError
from repro.shyra.program import Microprogram, ProgramStep
from repro.shyra.assembler import ProgramBuilder, LogicFn
from repro.shyra.trace import (
    RequirementSemantics,
    TraceResult,
    run_and_trace,
)
from repro.shyra.tasks import (
    shyra_universe,
    shyra_task_system,
    shyra_single_task_system,
)

__all__ = [
    "ConfigWord",
    "FIELD_LAYOUT",
    "N_CONFIG_BITS",
    "ShyraMachine",
    "MachineError",
    "Microprogram",
    "ProgramStep",
    "ProgramBuilder",
    "LogicFn",
    "RequirementSemantics",
    "TraceResult",
    "run_and_trace",
    "shyra_universe",
    "shyra_task_system",
    "shyra_single_task_system",
]
