"""Drivers for the paper's Section 6 experiments.

The single evaluation workload is the 4-bit counter (start 0000, bound
1010) on SHyRA under the fully synchronized MT-Switch model with
task-parallel uploads.  One call to :func:`run_counter_experiment`
computes everything the paper reports:

* the trace (110 reconfigurations),
* the disabled-hyperreconfiguration baseline (110·48 = 5280),
* the single-task optimum (paper: 3761 = 71.2%, 30 hyper steps),
* the multi-task GA schedule (paper: 2813 = 53.3%, 50 partial
  hyperreconfiguration steps),

plus the series behind Figures 2 and 3.  ``PAPER_NUMBERS`` pins the
published values for the comparison tables in
:mod:`repro.analysis.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import RequirementSequence
from repro.core.cost_single import no_hyper_cost, switch_cost
from repro.core.machine import MachineModel
from repro.core.schedule import MultiTaskSchedule, SingleTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.shyra.apps.counter import build_counter_program, counter_registers
from repro.shyra.tasks import shyra_task_system
from repro.shyra.trace import RequirementSemantics, TraceResult, run_and_trace
from repro.engine.registry import default_registry
from repro.solvers.base import MTSolveResult, SolveResult
from repro.solvers.mt_genetic import GAParams
from repro.solvers.mt_greedy import local_search
from repro.util.rng import SeedLike

__all__ = ["PAPER_NUMBERS", "CounterExperiment", "run_counter_experiment"]

#: Values published in the paper (Section 6) for the counter run.
PAPER_NUMBERS = {
    "n_reconfigurations": 110,
    "cost_disabled": 5280,
    "cost_single": 3761,
    "cost_multi": 2813,
    "pct_single": 71.2,
    "pct_multi": 53.3,
    "hyper_steps_single": 30,
    "hyper_ops_multi": 50,
    "n_switches": 48,
    "task_sizes": {"LUT1": 8, "LUT2": 8, "DEMUX": 8, "MUX": 24},
}


@dataclass(frozen=True)
class CounterExperiment:
    """All measured artifacts of the counter reproduction.

    Attributes mirror the paper's reported quantities; the figure
    renderers in :mod:`repro.analysis.figures` consume the schedule and
    hypercontext series directly.
    """

    trace: TraceResult
    system: TaskSystem
    task_seqs: list[RequirementSequence]
    cost_disabled: float
    single: SolveResult
    multi: MTSolveResult
    single_step_hypercontexts: list[int]
    multi_step_hypercontexts: list[list[int]]

    @property
    def pct_single(self) -> float:
        """Single-task optimum as % of the disabled baseline."""
        return 100.0 * self.single.cost / self.cost_disabled

    @property
    def pct_multi(self) -> float:
        """Multi-task schedule as % of the disabled baseline."""
        return 100.0 * self.multi.cost / self.cost_disabled

    @property
    def hyper_steps_single(self) -> int:
        return self.single.schedule.r

    @property
    def hyper_columns_multi(self) -> tuple[int, ...]:
        """Steps with ≥1 partial hyperreconfiguration (Figure 3 x-axis)."""
        return self.multi.schedule.hyper_columns()


def run_counter_experiment(
    *,
    start: int = 0,
    bound: int = 10,
    semantics: RequirementSemantics = RequirementSemantics.DELTA,
    ga_params: GAParams | None = None,
    seed: SeedLike = 0,
    refine_with_local_search: bool = True,
    hold_unused: bool = False,
) -> CounterExperiment:
    """Reproduce the paper's counter evaluation end to end.

    Defaults reproduce the paper's setup (start 0000, bound 1010,
    fully synchronized, task-parallel).  The GA result is optionally
    polished by bit-flip local search — the paper's GA details are
    unpublished, and the polish removes seed-dependent noise from the
    headline number.

    ``hold_unused`` selects the compiler mapping (see
    :class:`repro.shyra.assembler.ProgramBuilder`).  The default is the
    *naive* mapping (``False``): its denser configuration deltas put the
    trace in the same regime as the paper's unpublished mapping tool
    (tens of hyperreconfiguration steps, cost ratios in the 40–80%
    band); the delta-optimized mapping is the E10 ablation.
    """
    program = build_counter_program(hold_unused=hold_unused)
    trace = run_and_trace(
        program,
        initial_registers=counter_registers(start, bound),
        semantics=semantics,
    )
    seq = trace.requirements
    model = MachineModel.paper_experimental()

    system = shyra_task_system(seq.universe)
    task_seqs = system.split_requirements(seq)

    registry = default_registry()
    cost_disabled = no_hyper_cost(seq)
    single = registry.solve_single(
        "single_dp", seq, w=float(seq.universe.size)
    )
    multi = registry.solve_multi(
        "mt_genetic", system, task_seqs, model, params=ga_params, seed=seed
    )
    if refine_with_local_search:
        refined = local_search(system, task_seqs, multi.schedule, model)
        if refined.cost < multi.cost:
            multi = MTSolveResult(
                schedule=refined.schedule,
                cost=refined.cost,
                optimal=False,
                solver=f"{multi.solver}+local_search",
                stats={**multi.stats, **refined.stats},
            )

    single_steps = single.schedule.step_hypercontexts(seq)
    multi_steps = multi.schedule.block_union_masks(task_seqs)
    return CounterExperiment(
        trace=trace,
        system=system,
        task_seqs=task_seqs,
        cost_disabled=cost_disabled,
        single=single,
        multi=multi,
        single_step_hypercontexts=single_steps,
        multi_step_hypercontexts=multi_steps,
    )
