"""JSON export of experiment artifacts.

Reproducibility plumbing: schedules, costs and traces serialize to
plain JSON so runs can be archived, diffed, and re-validated without
re-running solvers.  ``import_and_validate`` re-evaluates an archived
schedule against a freshly computed trace — the strongest check that an
archive still describes reality.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path

from repro.analysis.experiments import CounterExperiment
from repro.core.schedule import MultiTaskSchedule, SingleTaskSchedule
from repro.core.sync_cost import sync_switch_cost
from repro.core.cost_single import switch_cost

__all__ = ["experiment_to_dict", "dump_experiment", "import_and_validate"]


def experiment_to_dict(exp: CounterExperiment) -> dict:
    """Everything needed to re-check a counter experiment, as JSON types."""
    return {
        "format": "repro.counter_experiment/1",
        "n": exp.trace.n,
        "requirement_masks": [hex(m) for m in exp.trace.requirements.masks],
        "cost_disabled": exp.cost_disabled,
        "single": {
            "schedule": exp.single.schedule.to_dict(),
            "cost": exp.single.cost,
            "solver": exp.single.solver,
        },
        "multi": {
            "schedule": exp.multi.schedule.to_dict(),
            "cost": exp.multi.cost,
            "solver": exp.multi.solver,
        },
        "task_sizes": list(exp.system.sizes),
    }


def dump_experiment(exp: CounterExperiment, path: str | Path) -> Path:
    """Write the archive; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(experiment_to_dict(exp), indent=2))
    return path


def import_and_validate(
    payload: Mapping | str | Path,
    exp: CounterExperiment,
) -> dict:
    """Validate an archived run against a live experiment's trace.

    Re-evaluates the archived schedules on the live requirement
    sequences and compares costs.  Returns a report dict; raises
    ``ValueError`` on any mismatch (wrong trace, drifted cost).
    """
    if isinstance(payload, (str, Path)):
        payload = json.loads(Path(payload).read_text())
    if payload.get("format") != "repro.counter_experiment/1":
        raise ValueError("unknown archive format")
    live_masks = [hex(m) for m in exp.trace.requirements.masks]
    if payload["requirement_masks"] != live_masks:
        raise ValueError("archived trace differs from the live trace")

    single_schedule = SingleTaskSchedule.from_dict(payload["single"]["schedule"])
    single_cost = switch_cost(
        exp.trace.requirements, single_schedule, w=float(
            exp.trace.requirements.universe.size
        )
    )
    if abs(single_cost - payload["single"]["cost"]) > 1e-9:
        raise ValueError(
            f"archived single-task cost {payload['single']['cost']} does not "
            f"re-evaluate ({single_cost})"
        )

    multi_schedule = MultiTaskSchedule.from_dict(payload["multi"]["schedule"])
    multi_cost = sync_switch_cost(exp.system, exp.task_seqs, multi_schedule)
    if abs(multi_cost - payload["multi"]["cost"]) > 1e-9:
        raise ValueError(
            f"archived multi-task cost {payload['multi']['cost']} does not "
            f"re-evaluate ({multi_cost})"
        )
    return {
        "trace_match": True,
        "single_cost": single_cost,
        "multi_cost": multi_cost,
    }
