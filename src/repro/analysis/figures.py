"""Plain-text renderings of the paper's result figures.

* **Figure 2** — per-step hypercontext contents for the counter run,
  single-task (upper panel) and multi-task (lower panel), with the
  time steps of (partial) hyperreconfigurations marked.
* **Figure 3** — for the multi-task run, which tasks perform a partial
  hyperreconfiguration at each hyperreconfiguration step (black = yes,
  white = no-hyperreconfiguration in the paper; here ``#`` / ``.``).

The renderers draw one character per reconfiguration step, wrapping
long runs; characters encode how much of a component's configuration
is inside the current hypercontext (`` `` none, ``░▒▓█`` quarters).
"""

from __future__ import annotations

from repro.analysis.experiments import CounterExperiment
from repro.shyra.config import COMPONENT_BIT_RANGES
from repro.util.bitset import bit_count

__all__ = ["render_fig2", "render_fig3"]

_SHADES = " ░▒▓█"


def _shade(avail: int, width: int) -> str:
    """Map availability fraction to a shade character."""
    if width == 0:
        return " "
    level = round(4 * avail / width)
    return _SHADES[max(0, min(4, level))]


def _component_rows(
    step_masks: list[int],
    hyper_flags: list[bool],
) -> list[str]:
    rows = []
    for comp, (lsb, width) in COMPONENT_BIT_RANGES.items():
        comp_mask = ((1 << width) - 1) << lsb
        chars = []
        for mask in step_masks:
            chars.append(_shade(bit_count(mask & comp_mask), width))
        rows.append(f"{comp:>5} |{''.join(chars)}|")
    marks = "".join("^" if f else " " for f in hyper_flags)
    rows.append(f"{'hyper':>5}  {marks}")
    return rows


def _wrap(lines: list[str], width: int) -> str:
    """Wrap the fixed-prefix rows into chunks of ``width`` columns."""
    prefix_len = 7  # '  MUX |' / 'hyper  ' style prefix
    heads = [ln[:prefix_len] for ln in lines]
    bodies = [ln[prefix_len:] for ln in lines]
    total = max(len(b) for b in bodies)
    out = []
    for off in range(0, total, width):
        for head, body in zip(heads, bodies):
            out.append(head + body[off : off + width])
        out.append("")
    return "\n".join(out).rstrip()


def render_fig2(exp: CounterExperiment, *, wrap: int = 110) -> str:
    """Figure 2: hypercontext timelines, single task above multi task."""
    n = exp.trace.n
    single_flags = [False] * n
    for s in exp.single.schedule.hyper_steps:
        single_flags[s] = True
    upper = _component_rows(exp.single_step_hypercontexts, single_flags)

    # Multi panel: per step, the union of all tasks' hypercontexts
    # (component shading is per owning task by construction).
    multi_masks = []
    for i in range(n):
        mask = 0
        for j in range(exp.system.m):
            mask |= exp.multi_step_hypercontexts[j][i]
        multi_masks.append(mask)
    multi_flags = [
        any(exp.multi.schedule.indicators[j][i] for j in range(exp.system.m))
        for i in range(n)
    ]
    lower = _component_rows(multi_masks, multi_flags)

    parts = [
        "Figure 2 (reproduction): hypercontexts for the 4-bit counter",
        "shade = fraction of the component's switches in the hypercontext",
        "",
        f"single task (m=1): {exp.single.schedule.r} hyperreconfigurations, "
        f"cost {exp.single.cost:.0f}",
        _wrap(upper, wrap),
        "",
        f"multiple tasks (m=4): {len(exp.hyper_columns_multi)} partial "
        f"hyperreconfiguration steps, cost {exp.multi.cost:.0f}",
        _wrap(lower, wrap),
    ]
    return "\n".join(parts)


def render_fig3(exp: CounterExperiment) -> str:
    """Figure 3: which tasks hyperreconfigure at each hyper step.

    One column per step at which at least one task performs a partial
    hyperreconfiguration; ``#`` = partial hyperreconfiguration,
    ``.`` = no-hyperreconfiguration operation.
    """
    columns = exp.hyper_columns_multi
    names = [t.name for t in exp.system.tasks]
    width = max(len(nm) for nm in names)
    lines = [
        "Figure 3 (reproduction): partial hyperreconfiguration operations",
        f"{len(columns)} hyperreconfiguration steps "
        f"(# = hyper, . = no-hyper)",
        "",
    ]
    for j, nm in enumerate(names):
        row = "".join(
            "#" if exp.multi.schedule.indicators[j][i] else "." for i in columns
        )
        lines.append(f"{nm:>{width}} |{row}|")
    steps = " ".join(str(c) for c in columns)
    lines.append("")
    lines.append(f"step indices: {steps}")
    return "\n".join(lines)
