"""Parameter sweeps for the ablation experiments E4–E9.

Each sweep is a plain function returning rows (lists) ready for
:func:`repro.util.texttable.format_table`; the benchmark harness both
times them and prints the regenerated series.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.workloads import random_task_workloads
from repro.core.context import RequirementSequence
from repro.core.machine import MachineClass, MachineModel, SyncMode, UploadMode
from repro.core.switches import SwitchUniverse
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem
from repro.solvers.exhaustive import solve_mt_exhaustive
from repro.solvers.mt_annealing import AnnealParams, solve_mt_annealing
from repro.solvers.mt_exact import solve_mt_exact
from repro.solvers.mt_genetic import GAParams, solve_mt_genetic
from repro.solvers.mt_greedy import solve_mt_greedy_merge
from repro.util.rng import SeedLike, make_rng

__all__ = [
    "make_instance",
    "solver_quality_sweep",
    "scaling_sweep",
    "sync_mode_sweep",
    "ga_hyperparameter_sweep",
]


def make_instance(
    m: int,
    n: int,
    switches_per_task: int,
    *,
    kind: str = "phased",
    seed: SeedLike = 0,
) -> tuple[TaskSystem, list[RequirementSequence]]:
    """A random fully synchronized MT-Switch instance."""
    universe = SwitchUniverse.of_size(m * switches_per_task)
    system = TaskSystem.from_contiguous(universe, [switches_per_task] * m)
    seqs = random_task_workloads(
        universe, list(system.local_masks), n, kind=kind, seed=seed
    )
    return system, seqs


def solver_quality_sweep(
    *,
    sizes: Sequence[tuple[int, int]] = ((2, 6), (2, 8), (3, 5)),
    switches_per_task: int = 6,
    instances: int = 3,
    seed: SeedLike = 0,
) -> list[list]:
    """Optimality gaps of GA and greedy against the exact optimum.

    For each (m, n) size, ``instances`` random instances are solved by
    the exhaustive/exact solver, the GA and the greedy pipeline; rows
    report mean relative gaps.
    """
    rng = make_rng(seed)
    rows = []
    ga_params = GAParams(population_size=32, generations=150, stall_generations=60)
    sa_params = AnnealParams(iterations=4000)
    for m, n in sizes:
        gaps: dict[str, list[float]] = {"ga": [], "greedy": [], "sa": []}
        for k in range(instances):
            system, seqs = make_instance(
                m, n, switches_per_task, seed=int(rng.integers(2**31))
            )
            if m * (n - 1) <= 18:
                opt = solve_mt_exhaustive(system, seqs)
            else:
                opt = solve_mt_exact(system, seqs)
            ga = solve_mt_genetic(system, seqs, params=ga_params, seed=k)
            greedy = solve_mt_greedy_merge(system, seqs)
            sa = solve_mt_annealing(system, seqs, params=sa_params, seed=k)
            if opt.cost > 0:
                gaps["ga"].append(ga.cost / opt.cost - 1.0)
                gaps["greedy"].append(greedy.cost / opt.cost - 1.0)
                gaps["sa"].append(sa.cost / opt.cost - 1.0)
        rows.append(
            [
                f"m={m}, n={n}",
                round(100 * sum(gaps["ga"]) / len(gaps["ga"]), 2),
                round(100 * sum(gaps["greedy"]) / len(gaps["greedy"]), 2),
                round(100 * sum(gaps["sa"]) / len(gaps["sa"]), 2),
            ]
        )
    return rows


def scaling_sweep(
    *,
    ns: Sequence[int] = (20, 40, 80),
    m: int = 4,
    switches_per_task: int = 8,
    seed: SeedLike = 0,
) -> list[list]:
    """Cost of greedy vs GA as the trace length grows."""
    rows = []
    ga_params = GAParams(population_size=32, generations=150, stall_generations=60)
    for n in ns:
        system, seqs = make_instance(m, n, switches_per_task, seed=seed)
        greedy = solve_mt_greedy_merge(system, seqs)
        ga = solve_mt_genetic(system, seqs, params=ga_params, seed=0)
        rows.append([n, greedy.cost, ga.cost])
    return rows


def ga_hyperparameter_sweep(
    system: TaskSystem,
    seqs: list[RequirementSequence],
    *,
    populations: Sequence[int] = (16, 48, 96),
    mutation_factors: Sequence[float] = (0.5, 1.5, 4.0),
    generations: int = 150,
    seed: SeedLike = 0,
) -> list[list]:
    """GA sensitivity to population size and mutation rate (E12).

    The paper gives no GA hyper-parameters; this sweep documents how
    much they matter on the actual paper instance.  Rows:
    ``[population, mutation factor, best cost, generations run]``.
    """
    m = system.m
    n = len(seqs[0])
    rows = []
    for pop in populations:
        for factor in mutation_factors:
            params = GAParams(
                population_size=pop,
                generations=generations,
                mutation_rate=factor / (m * n),
                stall_generations=max(40, generations // 3),
            )
            result = solve_mt_genetic(system, seqs, params=params, seed=seed)
            rows.append(
                [pop, factor, result.cost, result.stats["generations"]]
            )
    return rows


def sync_mode_sweep(
    system: TaskSystem,
    seqs: list[RequirementSequence],
    schedule,
) -> list[list]:
    """Cost of one schedule under the four upload-mode combinations.

    Demonstrates the Section 4.2 formulas: replacing a parallel ``max``
    by a sequential ``Σ`` can only increase the per-step terms.
    """
    rows = []
    for hyper_upload in UploadMode:
        for reconf_upload in UploadMode:
            model = MachineModel(
                machine_class=MachineClass.PARTIALLY_HYPERRECONFIGURABLE,
                sync_mode=SyncMode.FULLY_SYNCHRONIZED,
                hyper_upload=hyper_upload,
                reconfig_upload=reconf_upload,
            )
            cost = sync_switch_cost(system, seqs, schedule, model)
            rows.append([hyper_upload.value, reconf_upload.value, cost])
    return rows
