"""Synthetic context-requirement workloads.

The paper motivates hyperreconfiguration with computations "that
typically consist of different phases that use only small parts of the
whole reconfiguration potential".  These generators produce exactly
such structures, parameterized enough for the scaling/ablation
experiments (E4–E9):

* :func:`phased_workload` — consecutive phases, each touching a random
  small working set;
* :func:`periodic_workload` — a loop body repeated with jitter (the
  shape of the SHyRA counter trace);
* :func:`bursty_workload` — mostly tiny requirements with occasional
  dense bursts (worst-ish case for a single hypercontext);
* :func:`markov_workload` — Markov-modulated phase switching: a hidden
  state chain selects the active working set, so phase lengths are
  geometric rather than fixed (online policies cannot rely on a
  cadence);
* :func:`adversarial_workload` — alternating disjoint working sets,
  the classic worst case for history-based online policies (every
  phase change invalidates the learned hypercontext).
"""

from __future__ import annotations

from repro.core.context import RequirementSequence
from repro.core.switches import SwitchUniverse
from repro.util.bitset import mask_of, random_mask
from repro.util.rng import SeedLike, make_rng

__all__ = [
    "phased_workload",
    "periodic_workload",
    "bursty_workload",
    "markov_workload",
    "adversarial_workload",
    "random_task_workloads",
]


def phased_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    phases: int = 4,
    working_set: float = 0.3,
    step_density: float = 0.5,
    seed: SeedLike = None,
) -> RequirementSequence:
    """Phases with small working sets.

    The run is split into ``phases`` roughly equal windows; each phase
    draws a working-set mask covering about ``working_set`` of the
    universe, and every step requires a ``step_density`` subset of it.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if phases < 1:
        raise ValueError("need at least one phase")
    rng = make_rng(seed)
    masks: list[int] = []
    bounds = [round(k * n / phases) for k in range(phases + 1)]
    for k in range(phases):
        ws = random_mask(rng, universe.size, working_set)
        for _ in range(bounds[k], bounds[k + 1]):
            step = ws & random_mask(rng, universe.size, step_density)
            masks.append(step)
    return RequirementSequence(universe, masks)


def periodic_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    period: int = 8,
    body_density: float = 0.2,
    jitter: float = 0.02,
    seed: SeedLike = None,
) -> RequirementSequence:
    """A repeated loop body with per-iteration jitter.

    A fixed pattern of ``period`` requirement masks is tiled to length
    ``n``; every step additionally flips in a sparse jitter mask,
    modelling data-dependent extra demands.
    """
    if period < 1:
        raise ValueError("period must be positive")
    rng = make_rng(seed)
    body = [random_mask(rng, universe.size, body_density) for _ in range(period)]
    masks = []
    for i in range(n):
        step = body[i % period]
        if jitter > 0:
            step |= random_mask(rng, universe.size, jitter)
        masks.append(step)
    return RequirementSequence(universe, masks)


def bursty_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    base_density: float = 0.05,
    burst_density: float = 0.8,
    burst_probability: float = 0.1,
    seed: SeedLike = None,
) -> RequirementSequence:
    """Sparse baseline demands with occasional dense bursts."""
    rng = make_rng(seed)
    masks = []
    for _ in range(n):
        density = (
            burst_density if rng.random() < burst_probability else base_density
        )
        masks.append(random_mask(rng, universe.size, density))
    return RequirementSequence(universe, masks)


def markov_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    states: int = 3,
    working_set: float = 0.3,
    step_density: float = 0.5,
    stay: float = 0.9,
    seed: SeedLike = None,
) -> RequirementSequence:
    """Markov-modulated phase switching.

    A hidden Markov chain over ``states`` working sets emits the
    requirements: at every step the chain stays in its state with
    probability ``stay`` (phase lengths are geometric with mean
    ``1/(1-stay)``) or jumps uniformly to a different state.  Each step
    demands a ``step_density`` subset of the active working set.
    Unlike :func:`phased_workload`, phase boundaries carry no cadence an
    online policy could lock onto.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if states < 1:
        raise ValueError("need at least one state")
    if not 0.0 <= stay <= 1.0:
        raise ValueError("stay probability must be in [0, 1]")
    rng = make_rng(seed)
    working_sets = [
        random_mask(rng, universe.size, working_set) for _ in range(states)
    ]
    state = int(rng.integers(states))
    masks: list[int] = []
    for _ in range(n):
        masks.append(
            working_sets[state] & random_mask(rng, universe.size, step_density)
        )
        if states > 1 and rng.random() >= stay:
            jump = int(rng.integers(states - 1))
            state = jump if jump < state else jump + 1
    return RequirementSequence(universe, masks)


def adversarial_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    working_set: float = 0.5,
    block: int = 1,
    seed: SeedLike = None,
) -> RequirementSequence:
    """Alternating disjoint working sets (online worst case).

    A ``working_set`` fraction of the universe is split into two
    disjoint halves ``A`` and ``B``; the sequence demands all of ``A``
    for ``block`` steps, then all of ``B``, alternating.  Every phase
    change invalidates whatever a history-based online policy learned
    (the ski-rental adversary): with ``block=1`` each step flips the
    working set, forcing a hyperreconfiguration per step on any policy
    that only installs what it recently saw, while the offline optimum
    simply installs ``A ∪ B`` once.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if block < 1:
        raise ValueError("block must be at least 1")
    if universe.size < 2:
        raise ValueError("need a universe of at least two switches")
    rng = make_rng(seed)
    drawn = random_mask(rng, universe.size, working_set)
    bits = [i for i in range(universe.size) if drawn >> i & 1]
    if len(bits) < 2:  # degenerate draw: fall back to two fixed switches
        bits = [0, 1]
    order = [bits[i] for i in rng.permutation(len(bits))]
    half = len(order) // 2
    sides = (mask_of(order[:half]), mask_of(order[half:]))
    masks = [sides[(i // block) % 2] for i in range(n)]
    return RequirementSequence(universe, masks)


def random_task_workloads(
    universe: SwitchUniverse,
    local_masks: list[int],
    n: int,
    *,
    kind: str = "phased",
    seed: SeedLike = None,
    **kwargs,
) -> list[RequirementSequence]:
    """Per-task workloads restricted to each task's local switches.

    Generates one whole-universe workload per task with the chosen
    generator (``phased``/``periodic``/``bursty``) and projects it onto
    the task's local mask, so tasks demand only what they own.
    """
    generators = {
        "phased": phased_workload,
        "periodic": periodic_workload,
        "bursty": bursty_workload,
        "markov": markov_workload,
        "adversarial": adversarial_workload,
    }
    if kind not in generators:
        raise ValueError(f"unknown workload kind {kind!r}")
    rng = make_rng(seed)
    out = []
    for mask in local_masks:
        seq = generators[kind](universe, n, seed=rng, **kwargs)
        out.append(seq.restrict(mask))
    return out
