"""Synthetic context-requirement workloads.

The paper motivates hyperreconfiguration with computations "that
typically consist of different phases that use only small parts of the
whole reconfiguration potential".  These generators produce exactly
such structures, parameterized enough for the scaling/ablation
experiments (E4–E9):

* :func:`phased_workload` — consecutive phases, each touching a random
  small working set;
* :func:`periodic_workload` — a loop body repeated with jitter (the
  shape of the SHyRA counter trace);
* :func:`bursty_workload` — mostly tiny requirements with occasional
  dense bursts (worst-ish case for a single hypercontext).
"""

from __future__ import annotations

from repro.core.context import RequirementSequence
from repro.core.switches import SwitchUniverse
from repro.util.bitset import random_mask
from repro.util.rng import SeedLike, make_rng

__all__ = [
    "phased_workload",
    "periodic_workload",
    "bursty_workload",
    "random_task_workloads",
]


def phased_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    phases: int = 4,
    working_set: float = 0.3,
    step_density: float = 0.5,
    seed: SeedLike = None,
) -> RequirementSequence:
    """Phases with small working sets.

    The run is split into ``phases`` roughly equal windows; each phase
    draws a working-set mask covering about ``working_set`` of the
    universe, and every step requires a ``step_density`` subset of it.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if phases < 1:
        raise ValueError("need at least one phase")
    rng = make_rng(seed)
    masks: list[int] = []
    bounds = [round(k * n / phases) for k in range(phases + 1)]
    for k in range(phases):
        ws = random_mask(rng, universe.size, working_set)
        for _ in range(bounds[k], bounds[k + 1]):
            step = ws & random_mask(rng, universe.size, step_density)
            masks.append(step)
    return RequirementSequence(universe, masks)


def periodic_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    period: int = 8,
    body_density: float = 0.2,
    jitter: float = 0.02,
    seed: SeedLike = None,
) -> RequirementSequence:
    """A repeated loop body with per-iteration jitter.

    A fixed pattern of ``period`` requirement masks is tiled to length
    ``n``; every step additionally flips in a sparse jitter mask,
    modelling data-dependent extra demands.
    """
    if period < 1:
        raise ValueError("period must be positive")
    rng = make_rng(seed)
    body = [random_mask(rng, universe.size, body_density) for _ in range(period)]
    masks = []
    for i in range(n):
        step = body[i % period]
        if jitter > 0:
            step |= random_mask(rng, universe.size, jitter)
        masks.append(step)
    return RequirementSequence(universe, masks)


def bursty_workload(
    universe: SwitchUniverse,
    n: int,
    *,
    base_density: float = 0.05,
    burst_density: float = 0.8,
    burst_probability: float = 0.1,
    seed: SeedLike = None,
) -> RequirementSequence:
    """Sparse baseline demands with occasional dense bursts."""
    rng = make_rng(seed)
    masks = []
    for _ in range(n):
        density = (
            burst_density if rng.random() < burst_probability else base_density
        )
        masks.append(random_mask(rng, universe.size, density))
    return RequirementSequence(universe, masks)


def random_task_workloads(
    universe: SwitchUniverse,
    local_masks: list[int],
    n: int,
    *,
    kind: str = "phased",
    seed: SeedLike = None,
    **kwargs,
) -> list[RequirementSequence]:
    """Per-task workloads restricted to each task's local switches.

    Generates one whole-universe workload per task with the chosen
    generator (``phased``/``periodic``/``bursty``) and projects it onto
    the task's local mask, so tasks demand only what they own.
    """
    generators = {
        "phased": phased_workload,
        "periodic": periodic_workload,
        "bursty": bursty_workload,
    }
    if kind not in generators:
        raise ValueError(f"unknown workload kind {kind!r}")
    rng = make_rng(seed)
    out = []
    for mask in local_masks:
        seq = generators[kind](universe, n, seed=rng, **kwargs)
        out.append(seq.restrict(mask))
    return out
