"""Trace statistics: what makes a workload hyperreconfiguration-friendly.

The savings the paper reports come from structure in the requirement
sequence — small per-step demands, periodicity, and phase-disjoint
working sets.  This module quantifies each property, both to explain
experiment outcomes and to characterize new workloads before solving:

* :func:`demand_profile` — per-step and per-component demand sizes;
* :func:`detect_period` — smallest period of the (suffix of the) trace;
* :func:`segment_phases` — greedy phase segmentation by working-set
  drift, with a summary usable as solver seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.context import RequirementSequence
from repro.util.bitset import bit_count

__all__ = [
    "DemandProfile",
    "demand_profile",
    "detect_period",
    "PhaseSegment",
    "segment_phases",
]


@dataclass(frozen=True)
class DemandProfile:
    """Summary statistics of a requirement sequence."""

    n: int
    mean_demand: float
    max_demand: int
    total_union_size: int
    universe_size: int
    per_component_mean: dict

    @property
    def sparsity(self) -> float:
        """Mean demand as a fraction of the universe (0 = free lunch)."""
        if self.universe_size == 0:
            return 0.0
        return self.mean_demand / self.universe_size


def demand_profile(
    seq: RequirementSequence,
    components: Mapping[str, int] | None = None,
) -> DemandProfile:
    """Compute the demand statistics of a trace.

    ``components`` optionally maps component names to switch masks
    (e.g. :func:`repro.shyra.tasks.component_masks`) for a per-component
    breakdown.
    """
    n = len(seq)
    sizes = [bit_count(m) for m in seq.masks]
    per_component: dict = {}
    if components:
        for name, mask in components.items():
            comp_sizes = [bit_count(m & mask) for m in seq.masks]
            per_component[name] = (
                sum(comp_sizes) / n if n else 0.0
            )
    return DemandProfile(
        n=n,
        mean_demand=sum(sizes) / n if n else 0.0,
        max_demand=max(sizes, default=0),
        total_union_size=bit_count(seq.union_mask()),
        universe_size=seq.universe.size,
        per_component_mean=per_component,
    )


def detect_period(seq: RequirementSequence, *, skip: int = 0) -> int | None:
    """Smallest p with ``masks[i] == masks[i+p]`` for all i ≥ skip.

    Loop-structured programs produce periodic requirement traces after
    their first iteration; ``skip`` ignores the aperiodic prefix.
    Returns ``None`` when no period < n/2 exists (in particular for
    empty or single-step suffixes).
    """
    if skip < 0:
        raise ValueError("skip must be non-negative")
    masks = seq.masks[skip:]
    n = len(masks)
    for p in range(1, n // 2 + 1):
        if all(masks[i] == masks[i + p] for i in range(n - p)):
            return p
    return None


@dataclass(frozen=True)
class PhaseSegment:
    """One detected phase: a window plus its working set."""

    start: int
    stop: int
    working_set_mask: int

    @property
    def length(self) -> int:
        return self.stop - self.start


def segment_phases(
    seq: RequirementSequence,
    *,
    drift_threshold: float = 0.5,
) -> list[PhaseSegment]:
    """Greedy working-set phase segmentation.

    Grows a window while each new requirement keeps substantial overlap
    with the window's working set; a step whose requirement overlaps
    less than ``drift_threshold`` of its own bits starts a new phase.
    Empty requirements never break a phase.
    """
    if not 0.0 <= drift_threshold <= 1.0:
        raise ValueError("drift_threshold must be within [0, 1]")
    masks = seq.masks
    n = len(masks)
    if n == 0:
        return []
    segments: list[PhaseSegment] = []
    start = 0
    working = masks[0]
    for i in range(1, n):
        req = masks[i]
        if req:
            overlap = bit_count(req & working)
            if overlap < drift_threshold * bit_count(req):
                segments.append(PhaseSegment(start, i, working))
                start = i
                working = req
                continue
        working |= req
    segments.append(PhaseSegment(start, n, working))
    return segments
