"""Experiment drivers, workload generators and reporting.

* :mod:`repro.analysis.workloads` — synthetic context-requirement
  generators (phased, periodic, bursty) for scaling and ablation
  studies;
* :mod:`repro.analysis.experiments` — drivers that regenerate every
  figure and headline number of the paper's Section 6;
* :mod:`repro.analysis.figures` — plain-text renderings of Figures 2
  and 3;
* :mod:`repro.analysis.report` — measured-vs-paper comparison tables;
* :mod:`repro.analysis.sweeps` — parameter sweeps over solvers and
  machine models (experiments E4–E9).
"""

from repro.analysis.workloads import (
    phased_workload,
    periodic_workload,
    bursty_workload,
    random_task_workloads,
)
from repro.analysis.experiments import (
    CounterExperiment,
    run_counter_experiment,
    PAPER_NUMBERS,
)
from repro.analysis.figures import render_fig2, render_fig3
from repro.analysis.report import counter_cost_table, paper_comparison_table
from repro.analysis.trace_stats import (
    demand_profile,
    detect_period,
    segment_phases,
)

__all__ = [
    "phased_workload",
    "periodic_workload",
    "bursty_workload",
    "random_task_workloads",
    "CounterExperiment",
    "run_counter_experiment",
    "PAPER_NUMBERS",
    "render_fig2",
    "render_fig3",
    "counter_cost_table",
    "paper_comparison_table",
    "demand_profile",
    "detect_period",
    "segment_phases",
]
