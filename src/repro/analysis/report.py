"""Measured-vs-paper reporting.

Formats the counter-experiment results next to the values published in
Section 6, for EXPERIMENTS.md and the benchmark logs.  Absolute costs
are expected to differ (the authors' LUT mapping is unpublished, so our
counter produces different per-step configuration deltas); the *shape*
— orderings, who wins, baseline identities — is asserted by the test
suite and annotated here.
"""

from __future__ import annotations

from repro.analysis.experiments import PAPER_NUMBERS, CounterExperiment
from repro.util.texttable import format_table

__all__ = ["counter_cost_table", "paper_comparison_table", "shape_checks"]


def counter_cost_table(exp: CounterExperiment) -> str:
    """The headline cost table ("Table 1") for one experiment run."""
    rows = [
        ["hyperreconfiguration disabled", exp.cost_disabled, 100.0, "-"],
        [
            "single task (m=1, optimal DP)",
            exp.single.cost,
            exp.pct_single,
            exp.hyper_steps_single,
        ],
        [
            "multiple tasks (m=4, GA)",
            exp.multi.cost,
            exp.pct_multi,
            len(exp.hyper_columns_multi),
        ],
    ]
    return format_table(
        ["configuration", "total cost", "% of disabled", "hyper steps"],
        rows,
        title=(
            "Counter on SHyRA — total (hyper)reconfiguration cost "
            f"(n={exp.trace.n} reconfigurations)"
        ),
    )


def paper_comparison_table(exp: CounterExperiment) -> str:
    """Side-by-side measured vs published values."""
    p = PAPER_NUMBERS
    rows = [
        ["reconfigurations n", p["n_reconfigurations"], exp.trace.n],
        ["cost, hyper disabled", p["cost_disabled"], exp.cost_disabled],
        ["cost, single task", p["cost_single"], exp.single.cost],
        ["cost, multi task", p["cost_multi"], exp.multi.cost],
        ["% single", p["pct_single"], round(exp.pct_single, 1)],
        ["% multi", p["pct_multi"], round(exp.pct_multi, 1)],
        ["hyper steps single", p["hyper_steps_single"], exp.hyper_steps_single],
        ["hyper steps multi", p["hyper_ops_multi"], len(exp.hyper_columns_multi)],
    ]
    return format_table(
        ["quantity", "paper", "measured"],
        rows,
        title="Paper vs measured (counter, start 0000, bound 1010)",
    )


def shape_checks(exp: CounterExperiment) -> dict[str, bool]:
    """The qualitative claims of Section 6 as booleans.

    These are the properties the reproduction must preserve; the test
    suite asserts every one of them.
    """
    return {
        "n_is_110": exp.trace.n == PAPER_NUMBERS["n_reconfigurations"],
        "disabled_is_5280": exp.cost_disabled == PAPER_NUMBERS["cost_disabled"],
        "single_beats_disabled": exp.single.cost < exp.cost_disabled,
        "multi_beats_single": exp.multi.cost < exp.single.cost,
        "single_uses_hyper": exp.hyper_steps_single > 1,
        "multi_uses_partial_hyper": any(
            0 < sum(exp.multi.schedule.indicators[j]) < exp.trace.n
            for j in range(exp.system.m)
        ),
    }
