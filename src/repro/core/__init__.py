"""Core models of (multi-task) hyperreconfigurable machines.

This package implements Sections 2–4 of Lange & Middendorf (IPPS 2004):

* the switch/context algebra (:mod:`repro.core.switches`,
  :mod:`repro.core.context`, :mod:`repro.core.hypercontext`),
* the multi-task taxonomy — resource kinds, machine classes,
  synchronization and upload modes (:mod:`repro.core.resources`,
  :mod:`repro.core.machine`, :mod:`repro.core.task`),
* single-task cost models (:mod:`repro.core.cost_single`),
* asynchronous multi-task cost models (:mod:`repro.core.mt_cost`),
* the fully synchronized per-step cost model of Section 4.2
  (:mod:`repro.core.sync_cost`) with its incremental/batched
  evaluation engine (:mod:`repro.core.delta`),
* the lane-packed NumPy representation behind every cost-model and
  solver hot path (:mod:`repro.core.packed` — the scalar int-mask code
  remains the correctness oracle), and
* schedule representations with validity checking
  (:mod:`repro.core.schedule`, :mod:`repro.core.globalres`).
"""

from repro.core.switches import SwitchSet, SwitchUniverse
from repro.core.context import RequirementSequence
from repro.core.hypercontext import DagHypercontextSystem, DagNode
from repro.core.resources import ResourceKind
from repro.core.machine import (
    MachineClass,
    SyncMode,
    UploadMode,
    MachineModel,
)
from repro.core.task import Task, TaskSystem
from repro.core.schedule import MultiTaskSchedule, SingleTaskSchedule
from repro.core.cost_single import (
    general_cost,
    switch_cost,
    switch_cost_changeover,
    no_hyper_cost,
)
from repro.core.sync_cost import (
    sync_switch_cost,
    sync_cost_breakdown,
    StepCost,
)
from repro.core.mt_cost import (
    async_general_cost,
    async_switch_cost,
)
from repro.core.delta import (
    AlignMove,
    ColumnFlipMove,
    DeltaEvaluator,
    FlipMove,
    FullEvaluator,
    PopulationEvaluator,
    SetRowsMove,
    ShiftMove,
    make_evaluator,
)
from repro.core.packed import (
    PackedEvaluation,
    PackedProblem,
    PackedPublic,
    PackedSequence,
    PackedWindows,
)

__all__ = [
    "SwitchSet",
    "SwitchUniverse",
    "RequirementSequence",
    "DagHypercontextSystem",
    "DagNode",
    "ResourceKind",
    "MachineClass",
    "SyncMode",
    "UploadMode",
    "MachineModel",
    "Task",
    "TaskSystem",
    "MultiTaskSchedule",
    "SingleTaskSchedule",
    "general_cost",
    "switch_cost",
    "switch_cost_changeover",
    "no_hyper_cost",
    "sync_switch_cost",
    "sync_cost_breakdown",
    "StepCost",
    "async_general_cost",
    "async_switch_cost",
    "AlignMove",
    "ColumnFlipMove",
    "DeltaEvaluator",
    "FlipMove",
    "FullEvaluator",
    "PopulationEvaluator",
    "SetRowsMove",
    "ShiftMove",
    "make_evaluator",
    "PackedEvaluation",
    "PackedProblem",
    "PackedPublic",
    "PackedSequence",
    "PackedWindows",
]
