"""Schedule representations for (hyper)reconfiguration problems.

A *schedule* answers the optimization question of Section 5: **when**
does each task perform a (local) hyperreconfiguration and **which**
hypercontext does it install.

Two representations are provided:

* :class:`SingleTaskSchedule` — a partition of the ``n`` reconfiguration
  steps into consecutive blocks; one hyperreconfiguration precedes each
  block (the classic Partition-into-Hypercontexts form, m = 1);
* :class:`MultiTaskSchedule` — for fully synchronized machines, an
  ``m × n`` indicator matrix ``I`` with ``I[j][i] = 1`` iff task ``j``
  performs a partial hyperreconfiguration immediately before
  reconfiguration step ``i`` (the paper's formalization assumes a
  (no-)hyperreconfiguration slot before *every* reconfiguration).

Hypercontexts default to the **minimal union** of the covered block's
requirements — optimal under any cost monotone in the switch set, which
includes the switch model.  Explicit hypercontexts can be attached for
the changeover variant, where carrying switches across blocks can pay
off.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.context import RequirementSequence

__all__ = ["SingleTaskSchedule", "MultiTaskSchedule", "ScheduleError"]


class ScheduleError(ValueError):
    """Raised when a schedule is structurally invalid for its instance."""


@dataclass(frozen=True)
class SingleTaskSchedule:
    """Blocks of consecutive reconfiguration steps for one task.

    Attributes
    ----------
    n:
        Number of reconfiguration steps in the instance.
    hyper_steps:
        Strictly increasing step indices at which a hyperreconfiguration
        happens; must start with 0 (the machine needs an initial
        hypercontext before the first reconfiguration) unless ``n == 0``.
    explicit_masks:
        Optional hypercontext masks, one per hyper step.  ``None``
        derives the minimal union per block.
    """

    n: int
    hyper_steps: tuple[int, ...]
    explicit_masks: tuple[int, ...] | None = None

    def __post_init__(self):
        steps = tuple(self.hyper_steps)
        object.__setattr__(self, "hyper_steps", steps)
        if self.n < 0:
            raise ScheduleError("n must be non-negative")
        if self.n == 0:
            if steps:
                raise ScheduleError("empty instance cannot have hyper steps")
            return
        if not steps or steps[0] != 0:
            raise ScheduleError(
                "the first hyperreconfiguration must happen at step 0"
            )
        for a, b in zip(steps, steps[1:]):
            if b <= a:
                raise ScheduleError("hyper steps must be strictly increasing")
        if steps[-1] >= self.n:
            raise ScheduleError("hyper step beyond the last reconfiguration")
        if self.explicit_masks is not None:
            masks = tuple(self.explicit_masks)
            object.__setattr__(self, "explicit_masks", masks)
            if len(masks) != len(steps):
                raise ScheduleError(
                    "explicit_masks must have one mask per hyper step"
                )

    # -- structure -----------------------------------------------------------

    @property
    def r(self) -> int:
        """Number of hyperreconfigurations."""
        return len(self.hyper_steps)

    def blocks(self) -> list[tuple[int, int]]:
        """Half-open ``[start, stop)`` windows, one per hyperreconfiguration."""
        out = []
        for k, start in enumerate(self.hyper_steps):
            stop = (
                self.hyper_steps[k + 1] if k + 1 < len(self.hyper_steps) else self.n
            )
            out.append((start, stop))
        return out

    def block_of_step(self, i: int) -> int:
        """Index of the block containing reconfiguration step ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(i)
        lo, hi = 0, len(self.hyper_steps) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.hyper_steps[mid] <= i:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # -- hypercontexts ---------------------------------------------------------

    def hypercontext_masks(self, seq: RequirementSequence) -> list[int]:
        """One hypercontext mask per block (explicit or minimal union)."""
        if len(seq) != self.n:
            raise ScheduleError(
                f"sequence length {len(seq)} does not match schedule n={self.n}"
            )
        if self.explicit_masks is not None:
            for (start, stop), mask in zip(self.blocks(), self.explicit_masks):
                need = seq.union_mask(start, stop)
                if need & ~mask:
                    raise ScheduleError(
                        f"explicit hypercontext for block [{start},{stop}) "
                        "does not cover its requirements"
                    )
            return list(self.explicit_masks)
        return [seq.union_mask(start, stop) for start, stop in self.blocks()]

    def step_hypercontexts(self, seq: RequirementSequence) -> list[int]:
        """Hypercontext mask in effect at each reconfiguration step."""
        per_block = self.hypercontext_masks(seq)
        out = []
        for k, (start, stop) in enumerate(self.blocks()):
            out.extend([per_block[k]] * (stop - start))
        return out

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "hyper_steps": list(self.hyper_steps),
            "explicit_masks": (
                list(self.explicit_masks) if self.explicit_masks else None
            ),
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "SingleTaskSchedule":
        masks = d.get("explicit_masks")
        return cls(
            n=int(d["n"]),
            hyper_steps=tuple(int(s) for s in d["hyper_steps"]),
            explicit_masks=tuple(int(m) for m in masks) if masks else None,
        )

    @classmethod
    def no_hyper(cls, n: int) -> "SingleTaskSchedule":
        """One block covering everything (single initial hypercontext)."""
        return cls(n=n, hyper_steps=(0,) if n else ())


class MultiTaskSchedule:
    """Per-task hyperreconfiguration indicators for a synchronized run.

    The machine executes ``n`` barrier-synchronized rounds; in round
    ``i`` every task first performs a local hyperreconfiguration or a
    no-hyperreconfiguration (``I[j][i]``), then a reconfiguration.

    Column 0 must be all ones: every task needs an initial local
    hypercontext (the paper requires a local hyperreconfiguration after
    every global hyperreconfiguration, and the start of the run behaves
    like one).
    """

    __slots__ = ("_indicators", "_m", "_n")

    def __init__(self, indicators: Sequence[Sequence[bool]]):
        rows = tuple(tuple(bool(x) for x in row) for row in indicators)
        if not rows:
            raise ScheduleError("schedule needs at least one task row")
        n = len(rows[0])
        for row in rows:
            if len(row) != n:
                raise ScheduleError("all task rows must have equal length")
        if n > 0:
            for j, row in enumerate(rows):
                if not row[0]:
                    raise ScheduleError(
                        f"task {j} must hyperreconfigure at step 0"
                    )
        self._indicators = rows
        self._m = len(rows)
        self._n = n

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_hyper_steps(
        cls, m: int, n: int, steps_per_task: Sequence[Iterable[int]]
    ) -> "MultiTaskSchedule":
        if len(steps_per_task) != m:
            raise ScheduleError("need one step list per task")
        rows = []
        for steps in steps_per_task:
            row = [False] * n
            for s in steps:
                if not 0 <= s < n:
                    raise ScheduleError(f"hyper step {s} out of range")
                row[s] = True
            if n:
                row[0] = True
            rows.append(row)
        return cls(rows)

    @classmethod
    def all_tasks_at(cls, m: int, n: int, steps: Iterable[int]) -> "MultiTaskSchedule":
        """Common hyper steps for every task (partially *reconfigurable*
        machines allow only this shape)."""
        steps = list(steps)
        return cls.from_hyper_steps(m, n, [steps] * m)

    @classmethod
    def initial_only(cls, m: int, n: int) -> "MultiTaskSchedule":
        """Hyperreconfigure only at step 0 (the do-nothing baseline)."""
        return cls.from_hyper_steps(m, n, [[0]] * m)

    @classmethod
    def from_single(
        cls, single: SingleTaskSchedule, m: int
    ) -> "MultiTaskSchedule":
        """Copy a single-task partition to all tasks.

        Used to transfer the m=1 optimum to the multi-task machine —
        the resulting schedule never costs more than the single-task
        one under task-parallel uploads (max ≤ sum), which gives the
        guaranteed-win argument of Section 6.
        """
        return cls.all_tasks_at(m, single.n, single.hyper_steps)

    # -- accessors ---------------------------------------------------------

    @property
    def m(self) -> int:
        return self._m

    @property
    def n(self) -> int:
        return self._n

    @property
    def indicators(self) -> tuple[tuple[bool, ...], ...]:
        return self._indicators

    def row(self, j: int) -> tuple[bool, ...]:
        return self._indicators[j]

    def hyper_steps_of(self, j: int) -> tuple[int, ...]:
        return tuple(i for i, flag in enumerate(self._indicators[j]) if flag)

    def as_single(self, j: int) -> SingleTaskSchedule:
        """View task ``j``'s row as a single-task schedule."""
        return SingleTaskSchedule(n=self._n, hyper_steps=self.hyper_steps_of(j))

    def hyper_columns(self) -> tuple[int, ...]:
        """Steps at which *at least one* task hyperreconfigures.

        These are the time points plotted in Figure 3 of the paper.
        """
        return tuple(
            i
            for i in range(self._n)
            if any(self._indicators[j][i] for j in range(self._m))
        )

    def total_hyper_ops(self) -> int:
        """Total number of (task, step) hyperreconfiguration events."""
        return sum(sum(row) for row in self._indicators)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MultiTaskSchedule)
            and self._indicators == other._indicators
        )

    def __hash__(self) -> int:
        return hash(self._indicators)

    def __repr__(self) -> str:
        return f"MultiTaskSchedule(m={self._m}, n={self._n}, hyper_ops={self.total_hyper_ops()})"

    # -- derived hypercontexts ---------------------------------------------------

    def block_union_masks(
        self, seqs: Sequence[RequirementSequence]
    ) -> list[list[int]]:
        """``masks[j][i]`` — the minimal hypercontext of task ``j`` at step ``i``.

        For each task this is the union of its requirements from its
        last hyperreconfiguration step up to (and including) the last
        step before its next one — i.e. the smallest hypercontext that
        makes the whole block feasible.  Computed in O(m·n) by sweeping
        backwards once to find block ends and forwards to accumulate.
        """
        if len(seqs) != self._m:
            raise ScheduleError("need one requirement sequence per task")
        out: list[list[int]] = []
        for j, seq in enumerate(seqs):
            if len(seq) != self._n:
                raise ScheduleError(
                    f"sequence for task {j} has length {len(seq)}, "
                    f"expected {self._n}"
                )
            row = self._indicators[j]
            masks = seq.masks
            # Backward sweep: suffix union up to the end of the block.
            per_step = [0] * self._n
            acc = 0
            for i in range(self._n - 1, -1, -1):
                acc |= masks[i]
                per_step[i] = acc
                if row[i]:
                    acc = 0
            # per_step[i] currently holds union from i to block end; the
            # hypercontext at step i is the union over the *whole* block,
            # i.e. the value at the block's start.
            current = 0
            for i in range(self._n):
                if row[i]:
                    current = per_step[i]
                per_step[i] = current
            out.append(per_step)
        return out

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "indicators": [[int(x) for x in row] for row in self._indicators]
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "MultiTaskSchedule":
        return cls([[bool(x) for x in row] for row in d["indicators"]])
