"""Hypercontext systems for the DAG cost model.

The DAG model (Section 2) targets coarse-grained machines with a small
explicit set ``H`` of hypercontexts, partially ordered by computational
power: an edge ``(h1, h2)`` in the precedence DAG means
``h1(C) ⊂ h2(C)`` and ``cost(h1) ≤ cost(h2)``.  There must be a top
hypercontext satisfying every possible requirement.

Requirements in this model are opaque hashable tokens; each node lists
the tokens it satisfies (its *context set* ``h(C)``).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.util import dagtools

__all__ = ["DagNode", "DagHypercontextSystem"]

Token = Hashable


@dataclass(frozen=True)
class DagNode:
    """One hypercontext of a coarse-grained machine.

    Attributes
    ----------
    name:
        Unique node identifier.
    context_set:
        ``h(C)`` — the requirement tokens this hypercontext satisfies.
    cost:
        ``cost(h) > 0``, the per-reconfiguration cost in this
        hypercontext.
    """

    name: str
    context_set: frozenset = field(default_factory=frozenset)
    cost: float = 1.0

    def __post_init__(self):
        if self.cost <= 0:
            raise ValueError(f"cost(h) must be positive, got {self.cost}")
        object.__setattr__(self, "context_set", frozenset(self.context_set))

    def satisfies(self, token: Token) -> bool:
        return token in self.context_set


class DagHypercontextSystem:
    """A validated precedence DAG over hypercontexts.

    Parameters
    ----------
    nodes:
        The hypercontexts (unique names).
    edges:
        Pairs ``(lower, upper)`` of node names; every edge must satisfy
        the model's monotonicity conditions
        ``lower(C) ⊂ upper(C)`` and ``cost(lower) ≤ cost(upper)``.
    init_cost:
        ``w`` — the (constant) cost of a hyperreconfiguration.
    """

    def __init__(
        self,
        nodes: Sequence[DagNode],
        edges: Iterable[tuple[str, str]],
        init_cost: float = 1.0,
    ):
        if init_cost < 0:
            raise ValueError("init cost w must be non-negative")
        self._nodes: dict[str, DagNode] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise ValueError(f"duplicate hypercontext name {node.name!r}")
            self._nodes[node.name] = node
        self._adj: dict[str, list[str]] = {name: [] for name in self._nodes}
        for lo, hi in edges:
            if lo not in self._nodes or hi not in self._nodes:
                raise ValueError(f"edge ({lo!r}, {hi!r}) references unknown node")
            self._adj[lo].append(hi)
        # Validity: acyclic + the two monotonicity conditions.
        dagtools.topological_order(self._adj)
        for lo, his in self._adj.items():
            nlo = self._nodes[lo]
            for hi in his:
                nhi = self._nodes[hi]
                if not nlo.context_set < nhi.context_set:
                    raise ValueError(
                        f"edge ({lo!r}, {hi!r}) violates h1(C) ⊂ h2(C)"
                    )
                if nlo.cost > nhi.cost:
                    raise ValueError(
                        f"edge ({lo!r}, {hi!r}) violates cost(h1) ≤ cost(h2)"
                    )
        self._init_cost = float(init_cost)
        universe_tokens = set()
        for node in self._nodes.values():
            universe_tokens |= node.context_set
        tops = [
            n.name
            for n in self._nodes.values()
            if n.context_set == universe_tokens
        ]
        if not tops:
            raise ValueError(
                "the DAG model requires a hypercontext h with h(C) = C "
                "(one node must satisfy every requirement token)"
            )
        self._tokens = frozenset(universe_tokens)
        self._top_names = tuple(sorted(tops))

    # -- accessors ---------------------------------------------------------

    @property
    def init_cost(self) -> float:
        """``w`` — constant hyperreconfiguration cost."""
        return self._init_cost

    @property
    def tokens(self) -> frozenset:
        """All requirement tokens any hypercontext satisfies (``C``)."""
        return self._tokens

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def top_names(self) -> tuple[str, ...]:
        """Names of hypercontexts with ``h(C) = C``."""
        return self._top_names

    def node(self, name: str) -> DagNode:
        return self._nodes[name]

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def adjacency(self) -> Mapping[str, Sequence[str]]:
        return {k: tuple(v) for k, v in self._adj.items()}

    # -- model queries -------------------------------------------------------

    def satisfying(self, token: Token) -> set[str]:
        """All hypercontexts satisfying ``token``."""
        return {n.name for n in self._nodes.values() if n.satisfies(token)}

    def minimal_satisfying(self, token: Token) -> set[str]:
        """``c(H)``: minimal hypercontexts (w.r.t. the DAG) satisfying c."""
        return dagtools.minimal_elements(self._adj, self.satisfying(token))

    def satisfying_window(self, tokens: Iterable[Token]) -> set[str]:
        """Hypercontexts satisfying *every* token of a window.

        Feasible hypercontexts for one hyperreconfiguration phase whose
        reconfigurations require exactly ``tokens``.
        """
        out: set[str] | None = None
        for t in tokens:
            s = self.satisfying(t)
            out = s if out is None else out & s
        return set(self._nodes) if out is None else out

    def cheapest_satisfying(self, tokens: Iterable[Token]) -> DagNode:
        """Min-cost hypercontext covering a window (ties by name)."""
        feasible = self.satisfying_window(tokens)
        if not feasible:
            raise ValueError("no hypercontext satisfies the window")
        name = min(feasible, key=lambda nm: (self._nodes[nm].cost, nm))
        return self._nodes[name]
