"""Incremental (delta) evaluation of the synchronized MT-Switch cost.

The metaheuristics in :mod:`repro.solvers` explore the ``m × n``
indicator matrix one small move at a time — toggle one bit, align one
column, shift one hyperreconfiguration — yet the reference objective
:func:`repro.core.sync_cost.sync_switch_cost` re-derives every block
union and every per-step term from scratch, O(m·n) per evaluation.
This module provides the bookkeeping that makes a move cost only what
it perturbs:

* :class:`DeltaEvaluator` — holds the per-step cost decomposition plus
  per-task block-union state for one schedule and supports
  ``apply(move) -> new_cost`` / ``revert()`` in
  O(affected steps × m) union/popcount work plus one O(n) float
  re-sum of the cached per-step totals (the re-sum is what keeps the
  running cost bit-identical to the reference instead of drifting).
  A flip/align/shift only invalidates the block(s) of the touched
  task(s), i.e. the window between the enclosing hyperreconfiguration
  steps; everything outside that window is reused.  Changeover hyper costs and the public-global pseudo-row
  are supported; an arbitrary whole-matrix replacement
  (:class:`SetRowsMove`) falls back to a full re-evaluation and is
  counted as such.
* :class:`FullEvaluator` — the same interface backed by the reference
  cost function on every ``apply``.  Used when incremental evaluation
  is disabled (``use_delta=False``) and by benchmarks as the
  full-evaluation baseline; every apply counts as a fallback.
* :class:`PopulationEvaluator` — the batched arm of the engine: scores
  a whole GA offspring population at once through the lane-packed
  representation of :mod:`repro.core.packed`.  Since the packed kernel
  expresses changeover symmetric differences and the public-global
  pseudo-row directly, *every* configuration is served batched — the
  per-chromosome reference fallback of earlier revisions is gone.

The evaluators no longer own a private vectorized kernel: whole-matrix
(re)initialization and batched evaluation delegate to
:class:`repro.core.packed.PackedProblem` (the lane-packed fast path),
while the per-move incremental updates keep the scalar int-mask
arithmetic, which is the right tool for single-move deltas.  Both arms
reproduce the reference arithmetic *operation by operation* (same
float-summation order, same ``max``/``sum`` choices), so evaluated
trajectories are bit-identical to full-evaluation trajectories — the
solver-exit cross-checks against :func:`sync_switch_cost` stay exact,
not approximate.  All evaluators expose uniform ``stats`` counters
(``delta_applies``, ``delta_full_evals``, ``delta_hit_rate``, …) that
the solvers surface through their result ``stats`` and the serving
engine aggregates into its metrics report.

``pack_mask_lanes`` and ``population_switch_cost`` are kept as thin
aliases over :mod:`repro.core.packed` for PR-2 callers.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.packed import (
    PackedProblem,
    PackedPublic,
    pack_mask_lanes,
    population_switch_cost,
)
from repro.core.schedule import MultiTaskSchedule, ScheduleError
from repro.core.sync_cost import PublicGlobalPlan
from repro.core.task import TaskSystem
from repro.util.bitset import bit_count

__all__ = [
    "FlipMove",
    "AlignMove",
    "ColumnFlipMove",
    "ShiftMove",
    "SetRowsMove",
    "DeltaEvaluator",
    "FullEvaluator",
    "make_evaluator",
    "PopulationEvaluator",
    "pack_mask_lanes",
    "population_switch_cost",
    "merge_evaluator_stats",
]


# ---------------------------------------------------------------------------
# Moves
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlipMove:
    """Toggle the indicator of ``task`` at ``step`` (step ≥ 1)."""

    task: int
    step: int


@dataclass(frozen=True)
class AlignMove:
    """Copy ``source``'s indicator at ``step`` to every task."""

    step: int
    source: int


@dataclass(frozen=True)
class ColumnFlipMove:
    """Toggle the indicators of *all* tasks at ``step``.

    The only legal move shape on machines that hyperreconfigure all
    tasks at a time (``allows_partial_hyper == False``).
    """

    step: int


@dataclass(frozen=True)
class ShiftMove:
    """Move ``task``'s hyperreconfiguration from ``src`` to ``dst``."""

    task: int
    src: int
    dst: int


@dataclass(frozen=True)
class SetRowsMove:
    """Replace the whole indicator matrix (full re-evaluation fallback)."""

    rows: tuple[tuple[bool, ...], ...]

    @classmethod
    def of(cls, rows: Sequence[Sequence[bool]]) -> "SetRowsMove":
        return cls(tuple(tuple(bool(x) for x in row) for row in rows))


Move = FlipMove | AlignMove | ColumnFlipMove | ShiftMove | SetRowsMove


def _coerce_rows(rows_or_schedule) -> list[list[bool]]:
    if isinstance(rows_or_schedule, MultiTaskSchedule):
        return [list(r) for r in rows_or_schedule.indicators]
    return [[bool(x) for x in row] for row in rows_or_schedule]


class _EvaluatorBase:
    """Shared move decoding and validation for both evaluator kinds."""

    _rows: list[list[bool]]
    _m: int
    _n: int

    @property
    def rows(self) -> list[list[bool]]:
        """The current indicator matrix.  Treat as read-only: mutate
        only through :meth:`apply` / :meth:`revert` / :meth:`reset`."""
        return self._rows

    @property
    def m(self) -> int:
        return self._m

    @property
    def n(self) -> int:
        return self._n

    def schedule(self) -> MultiTaskSchedule:
        return MultiTaskSchedule(self._rows)

    # -- move decoding -----------------------------------------------------

    def _move_changes(self, move: Move) -> list[tuple[int, int, bool]]:
        """Decode ``move`` into effective ``(task, step, new_value)`` bit
        changes against the current rows (no-change entries dropped)."""
        rows, m, n = self._rows, self._m, self._n
        if isinstance(move, FlipMove):
            changes = [(move.task, move.step, not rows[move.task][move.step])]
        elif isinstance(move, AlignMove):
            value = rows[move.source][move.step]
            changes = [(k, move.step, value) for k in range(m)]
        elif isinstance(move, ColumnFlipMove):
            changes = [(k, move.step, not rows[k][move.step]) for k in range(m)]
        elif isinstance(move, ShiftMove):
            if not rows[move.task][move.src]:
                raise ScheduleError(
                    f"shift source ({move.task}, {move.src}) has no "
                    "hyperreconfiguration to move"
                )
            if rows[move.task][move.dst]:
                raise ScheduleError(
                    f"shift target ({move.task}, {move.dst}) is occupied"
                )
            changes = [
                (move.task, move.src, False),
                (move.task, move.dst, True),
            ]
        else:
            raise TypeError(f"unsupported move: {move!r}")
        for j, i, _ in changes:
            if not 0 <= j < m:
                raise ScheduleError(f"task index {j} out of range")
            if not 1 <= i < n:
                raise ScheduleError(
                    f"step {i} is not movable (step 0 is pinned, n={n})"
                )
        return [(j, i, val) for j, i, val in changes if rows[j][i] != val]

    def _check_column_uniformity(
        self, changes: Sequence[tuple[int, int, bool]]
    ) -> None:
        """Machines without partial hyperreconfigurability keep all rows
        identical; only whole-column changes to one value are legal."""
        per_step: dict[int, list[tuple[int, bool]]] = {}
        for j, i, val in changes:
            per_step.setdefault(i, []).append((j, val))
        for i, entries in per_step.items():
            values = {val for _, val in entries}
            if len(entries) != self._m or len(values) != 1:
                raise ScheduleError(
                    "this machine hyperreconfigures all tasks at a time; "
                    f"the move changes only a task subset at step {i}"
                )


# ---------------------------------------------------------------------------
# Incremental evaluator
# ---------------------------------------------------------------------------


class DeltaEvaluator(_EvaluatorBase):
    """Incremental synchronized MT-Switch cost of one evolving schedule.

    Parameters mirror :func:`repro.core.sync_cost.sync_switch_cost`;
    construction compiles (or reuses a caller-supplied) lane-packed
    :class:`~repro.core.packed.PackedProblem` and seeds the per-step
    state from one vectorized full evaluation — bit-identical to the
    reference, which also validates the configuration.  After that,
    :meth:`apply` updates the per-task block unions and per-step cost
    terms only inside the window delimited by the enclosing
    hyperreconfiguration steps of each touched task, using scalar
    int-mask arithmetic (the right tool for single-move deltas).

    One move may be pending at a time: ``apply`` commits any previous
    move and remembers how to undo the new one; ``revert`` undoes the
    last applied move.  The running total is re-summed over the cached
    per-step totals in the reference's summation order, so the reported
    cost is always bit-identical to a from-scratch evaluation of the
    current rows.
    """

    def __init__(
        self,
        system: TaskSystem,
        seqs: Sequence[RequirementSequence],
        rows: MultiTaskSchedule | Sequence[Sequence[bool]],
        model: MachineModel | None = None,
        *,
        w: float = 0.0,
        public: PublicGlobalPlan | None = None,
        changeover: bool = False,
        changeover_fixed: Sequence[float] | None = None,
        packed: PackedProblem | None = None,
    ):
        if model is None:
            model = MachineModel.paper_experimental()
        self._system = system
        self._seqs = list(seqs)
        self._model = model
        self._w = float(w)
        self._public = public
        self._changeover = bool(changeover)
        self._changeover_fixed = (
            tuple(changeover_fixed) if changeover_fixed is not None else None
        )
        self._m = system.m
        self._masks = [seq.masks for seq in self._seqs]
        self._v = system.v
        if packed is not None and packed.matches(system, self._seqs, model):
            self._packed = packed
        else:
            self._packed = PackedProblem.compile(system, self._seqs, model)
        self._hyper_parallel = self._packed.hyper_parallel
        self._reconf_parallel = self._packed.reconf_parallel
        self._partial_hyper_ok = self._packed.partial_hyper_ok
        if public is not None:
            self._pub_packed = PackedPublic.compile(public, self._packed.n)
            self._pub_sizes = self._pub_packed.sizes.tolist()
            self._pub_hyper = {
                i for i, flag in enumerate(self._pub_packed.hyper) if flag
            }
            self._pub_v = self._pub_packed.v
        else:
            self._pub_packed = None
            self._pub_sizes = None
            self._pub_hyper = None
            self._pub_v = 0.0
        self._n_applies = 0
        self._n_full = 0
        self._n_noops = 0
        self._n_reverts = 0
        self._n_resets = 0
        self._steps_recomputed = 0
        self._undo = None
        self._init_state(_coerce_rows(rows))

    # -- (re)initialization ------------------------------------------------

    def _init_state(self, rows: list[list[bool]]) -> None:
        evaluation = self._packed.evaluate_rows(
            rows,
            w=self._w,
            public=self._pub_packed,
            changeover=self._changeover,
            changeover_fixed=self._changeover_fixed,
        )
        self._rows = rows
        self._n = self._packed.n
        self._unions = evaluation.union_masks()
        self._sizes = evaluation.sizes.tolist()
        self._step_hyper = evaluation.step_hyper.tolist()
        self._step_reconf = evaluation.step_reconf.tolist()
        self._step_total = [
            h + r for h, r in zip(self._step_hyper, self._step_reconf)
        ]
        self._cost = evaluation.cost
        self._undo = None

    def reset(self, rows: MultiTaskSchedule | Sequence[Sequence[bool]]) -> float:
        """Replace the schedule wholesale (full re-evaluation)."""
        self._n_resets += 1
        self._init_state(_coerce_rows(rows))
        return self._cost

    # -- evaluation --------------------------------------------------------

    @property
    def cost(self) -> float:
        """Cost of the current rows (bit-identical to the reference)."""
        return self._cost

    def reference_cost(self) -> float:
        """From-scratch oracle evaluation of the current rows."""
        from repro.core.sync_cost import sync_switch_cost

        return sync_switch_cost(
            self._system,
            self._seqs,
            MultiTaskSchedule(self._rows),
            self._model,
            w=self._w,
            public=self._public,
            changeover=self._changeover,
            changeover_fixed=self._changeover_fixed,
        )

    def apply(self, move: Move) -> float:
        """Apply ``move`` and return the new cost.

        The previous pending move (if any) is committed.  A
        :class:`SetRowsMove` cannot be delta-evaluated and falls back to
        a counted full re-evaluation (still revertible).
        """
        if isinstance(move, SetRowsMove):
            return self._apply_set_rows(move)
        changes = self._move_changes(move)
        if not changes:
            self._n_noops += 1
            self._undo = ("noop", self._cost)
            return self._cost
        if not self._partial_hyper_ok:
            self._check_column_uniformity(changes)
        return self._apply_changes(changes)

    def _apply_set_rows(self, move: SetRowsMove) -> float:
        old = (
            self._rows,
            self._unions,
            self._sizes,
            self._step_hyper,
            self._step_reconf,
            self._step_total,
            self._cost,
            self._n,
        )
        self._n_full += 1
        self._init_state(_coerce_rows(move.rows))
        self._undo = ("full", old)
        return self._cost

    def _apply_changes(self, changes: list[tuple[int, int, bool]]) -> float:
        rows, n = self._rows, self._n
        per_task: dict[int, list[tuple[int, bool]]] = {}
        for j, i, val in changes:
            per_task.setdefault(j, []).append((i, val))

        union_undo = []
        affected: set[int] = set()
        for j, edits in per_task.items():
            row = rows[j]
            s_min = min(i for i, _ in edits)
            s_max = max(i for i, _ in edits)
            lo = s_min - 1
            while not row[lo]:
                lo -= 1
            hi = s_max + 1
            while hi < n and not row[hi]:
                hi += 1
            union_undo.append(
                (
                    j,
                    lo,
                    hi,
                    [(i, row[i]) for i, _ in edits],
                    self._unions[j][lo:hi],
                    self._sizes[j][lo:hi],
                )
            )
            for i, val in edits:
                row[i] = val
            self._resweep_task(j, lo, hi)
            affected.update(range(lo, hi))
            if self._changeover and hi < n:
                # The hyper cost at the next hyper step depends on the
                # union of the step before it, which just changed.
                affected.add(hi)

        step_undo = []
        for i in sorted(affected):
            step_undo.append(
                (i, self._step_hyper[i], self._step_reconf[i], self._step_total[i])
            )
            self._recompute_step(i)
        old_cost = self._cost
        self._cost = float(self._w + sum(self._step_total))
        self._n_applies += 1
        self._steps_recomputed += len(affected)
        self._undo = ("delta", union_undo, step_undo, old_cost)
        return self._cost

    def revert(self) -> float:
        """Undo the last applied move and return the restored cost."""
        if self._undo is None:
            raise RuntimeError("no applied move to revert")
        undo, self._undo = self._undo, None
        self._n_reverts += 1
        if undo[0] == "noop":
            self._cost = undo[1]
            return self._cost
        if undo[0] == "full":
            (
                self._rows,
                self._unions,
                self._sizes,
                self._step_hyper,
                self._step_reconf,
                self._step_total,
                self._cost,
                self._n,
            ) = undo[1]
            return self._cost
        _, union_undo, step_undo, old_cost = undo
        for i, hyper, reconf, total in step_undo:
            self._step_hyper[i] = hyper
            self._step_reconf[i] = reconf
            self._step_total[i] = total
        for j, lo, hi, old_bits, old_unions, old_sizes in union_undo:
            for i, val in old_bits:
                self._rows[j][i] = val
            self._unions[j][lo:hi] = old_unions
            self._sizes[j][lo:hi] = old_sizes
        self._cost = old_cost
        return self._cost

    # -- internals ---------------------------------------------------------

    def _resweep_task(self, j: int, lo: int, hi: int) -> None:
        """Recompute task ``j``'s block unions over steps ``[lo, hi)``.

        ``lo`` is a hyperreconfiguration step of the task and ``hi`` the
        next one after the edited region (or ``n``), so the window is
        self-contained: unions outside it are unaffected.
        """
        row = self._rows[j]
        masks = self._masks[j]
        unions = self._unions[j]
        sizes = self._sizes[j]
        span = hi - lo
        suffix = [0] * span
        acc = 0
        for i in range(hi - 1, lo - 1, -1):
            acc |= masks[i]
            suffix[i - lo] = acc
            if row[i]:
                acc = 0
        current = 0
        for i in range(lo, hi):
            if row[i]:
                current = suffix[i - lo]
            unions[i] = current
            sizes[i] = bit_count(current)

    def _recompute_step(self, i: int) -> None:
        """Recompute one step's cost terms, mirroring the reference
        arithmetic (same task order, same float-summation order)."""
        rows = self._rows
        m = self._m
        hyper_costs: list[float] = []
        for j in range(m):
            if not rows[j][i]:
                continue
            if self._changeover:
                cfix = self._changeover_fixed
                fixed = cfix[j] if cfix else 0.0
                prev = self._unions[j][i - 1] if i > 0 else 0
                hyper_costs.append(fixed + bit_count(self._unions[j][i] ^ prev))
            else:
                hyper_costs.append(self._v[j])
        if self._pub_hyper is not None and i in self._pub_hyper:
            hyper_costs.append(self._pub_v)
        if hyper_costs:
            hyper = max(hyper_costs) if self._hyper_parallel else sum(hyper_costs)
        else:
            hyper = 0.0
        sizes = [self._sizes[j][i] for j in range(m)]
        if self._reconf_parallel:
            reconf = float(max(sizes))
            if self._pub_sizes is not None:
                reconf = max(reconf, float(self._pub_sizes[i]))
        else:
            reconf = float(sum(sizes))
            if self._pub_sizes is not None:
                reconf += float(self._pub_sizes[i])
        hyper = float(hyper)
        self._step_hyper[i] = hyper
        self._step_reconf[i] = reconf
        self._step_total[i] = hyper + reconf

    # -- introspection -----------------------------------------------------

    @property
    def stats(self) -> dict:
        """Uniform evaluator counters (see module docstring)."""
        denom = self._n_applies + self._n_full
        return {
            "delta_applies": self._n_applies,
            "delta_full_evals": self._n_full,
            "delta_noops": self._n_noops,
            "delta_reverts": self._n_reverts,
            "delta_resets": self._n_resets,
            "delta_steps_recomputed": self._steps_recomputed,
            "delta_hit_rate": (self._n_applies / denom) if denom else 1.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaEvaluator(m={self._m}, n={self._n}, cost={self._cost}, "
            f"applies={self._n_applies})"
        )


# ---------------------------------------------------------------------------
# Full-evaluation fallback
# ---------------------------------------------------------------------------


class FullEvaluator(_EvaluatorBase):
    """Reference-backed evaluator with the :class:`DeltaEvaluator` API.

    Every ``apply`` performs a from-scratch
    :func:`~repro.core.sync_cost.sync_switch_cost` evaluation and is
    counted as a full (fallback) evaluation.  Serves as the baseline in
    benchmarks and as the safety net for ``use_delta=False``.
    """

    def __init__(
        self,
        system: TaskSystem,
        seqs: Sequence[RequirementSequence],
        rows: MultiTaskSchedule | Sequence[Sequence[bool]],
        model: MachineModel | None = None,
        *,
        w: float = 0.0,
        public: PublicGlobalPlan | None = None,
        changeover: bool = False,
        changeover_fixed: Sequence[float] | None = None,
    ):
        if model is None:
            model = MachineModel.paper_experimental()
        self._system = system
        self._seqs = list(seqs)
        self._model = model
        self._kwargs = dict(
            w=w,
            public=public,
            changeover=changeover,
            changeover_fixed=changeover_fixed,
        )
        self._m = system.m
        self._partial_hyper_ok = model.machine_class.allows_partial_hyper
        self._n_full = 0
        self._n_noops = 0
        self._n_reverts = 0
        self._n_resets = 0
        self._undo = None
        self._rows = _coerce_rows(rows)
        self._n = len(self._rows[0]) if self._rows else 0
        self._cost = self._evaluate()

    def _evaluate(self) -> float:
        from repro.core.sync_cost import sync_switch_cost

        return sync_switch_cost(
            self._system,
            self._seqs,
            MultiTaskSchedule(self._rows),
            self._model,
            **self._kwargs,
        )

    def reset(self, rows: MultiTaskSchedule | Sequence[Sequence[bool]]) -> float:
        self._n_resets += 1
        self._rows = _coerce_rows(rows)
        self._n = len(self._rows[0]) if self._rows else 0
        self._undo = None
        self._cost = self._evaluate()
        return self._cost

    @property
    def cost(self) -> float:
        return self._cost

    def reference_cost(self) -> float:
        return self._evaluate()

    def apply(self, move: Move) -> float:
        if isinstance(move, SetRowsMove):
            old = (self._rows, self._cost, self._n)
            self._rows = _coerce_rows(move.rows)
            self._n = len(self._rows[0]) if self._rows else 0
            self._n_full += 1
            self._cost = self._evaluate()
            self._undo = ("full", old)
            return self._cost
        changes = self._move_changes(move)
        if not changes:
            self._n_noops += 1
            self._undo = ("noop", self._cost)
            return self._cost
        if not self._partial_hyper_ok:
            self._check_column_uniformity(changes)
        old_bits = [(j, i, self._rows[j][i]) for j, i, _ in changes]
        for j, i, val in changes:
            self._rows[j][i] = val
        old_cost = self._cost
        self._n_full += 1
        self._cost = self._evaluate()
        self._undo = ("delta", old_bits, old_cost)
        return self._cost

    def revert(self) -> float:
        if self._undo is None:
            raise RuntimeError("no applied move to revert")
        undo, self._undo = self._undo, None
        self._n_reverts += 1
        if undo[0] == "noop":
            self._cost = undo[1]
            return self._cost
        if undo[0] == "full":
            self._rows, self._cost, self._n = undo[1]
            return self._cost
        _, old_bits, old_cost = undo
        for j, i, val in old_bits:
            self._rows[j][i] = val
        self._cost = old_cost
        return self._cost

    @property
    def stats(self) -> dict:
        return {
            "delta_applies": 0,
            "delta_full_evals": self._n_full,
            "delta_noops": self._n_noops,
            "delta_reverts": self._n_reverts,
            "delta_resets": self._n_resets,
            "delta_steps_recomputed": 0,
            "delta_hit_rate": 0.0 if self._n_full else 1.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FullEvaluator(m={self._m}, n={self._n}, cost={self._cost}, "
            f"full_evals={self._n_full})"
        )


def make_evaluator(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    rows: MultiTaskSchedule | Sequence[Sequence[bool]],
    model: MachineModel | None = None,
    *,
    w: float = 0.0,
    public: PublicGlobalPlan | None = None,
    changeover: bool = False,
    changeover_fixed: Sequence[float] | None = None,
    use_delta: bool = True,
    packed: PackedProblem | None = None,
) -> DeltaEvaluator | FullEvaluator:
    """Build the best evaluator for a configuration.

    Every machine model / changeover / public-global combination the
    reference cost function accepts is delta-evaluable today, so this
    returns a :class:`DeltaEvaluator` unless ``use_delta`` is False
    (benchmark baselines, paranoia switches); the factory exists so
    future configurations that cannot be delta-evaluated can degrade to
    :class:`FullEvaluator` without touching the solvers.

    ``packed`` optionally reuses an already-compiled
    :class:`~repro.core.packed.PackedProblem` for this instance (the
    batch engine compiles one per structurally-deduped request).  The
    :class:`FullEvaluator` deliberately ignores it: it exists to be the
    scalar-reference baseline, not a fast path.
    """
    if use_delta:
        return DeltaEvaluator(
            system,
            seqs,
            rows,
            model,
            w=w,
            public=public,
            changeover=changeover,
            changeover_fixed=changeover_fixed,
            packed=packed,
        )
    return FullEvaluator(
        system,
        seqs,
        rows,
        model,
        w=w,
        public=public,
        changeover=changeover,
        changeover_fixed=changeover_fixed,
    )


# ---------------------------------------------------------------------------
# Batched population evaluation (the GA's offspring arm)
# ---------------------------------------------------------------------------


class PopulationEvaluator:
    """Batched offspring evaluation for population metaheuristics.

    A thin counter-discipline wrapper over
    :meth:`repro.core.packed.PackedProblem.population_cost`: offspring
    evaluated through the lane-packed kernel count as ``delta_applies``.
    Because the packed representation expresses changeover symmetric
    differences and the public-global pseudo-row directly, *every*
    configuration is served batched — ``delta_full_evals`` stays 0 and
    remains only for the metrics layer's uniform aggregation.
    """

    def __init__(
        self,
        system: TaskSystem,
        seqs: Sequence[RequirementSequence],
        model: MachineModel | None = None,
        *,
        changeover: bool = False,
        changeover_fixed: Sequence[float] | None = None,
        public: PublicGlobalPlan | None = None,
        packed: PackedProblem | None = None,
    ):
        if model is None:
            model = MachineModel.paper_experimental()
        self._system = system
        self._seqs = list(seqs)
        self._model = model
        self._changeover = bool(changeover)
        self._changeover_fixed = (
            tuple(changeover_fixed) if changeover_fixed is not None else None
        )
        if packed is not None and packed.matches(system, self._seqs, model):
            self._packed = packed
        else:
            self._packed = PackedProblem.compile(system, self._seqs, model)
        self._public = (
            PackedPublic.compile(public, self._packed.n)
            if public is not None
            else None
        )
        self._n_batches = 0
        self._n_batched = 0
        self._n_full = 0

    @property
    def batched(self) -> bool:
        """True — the packed kernel serves every configuration."""
        return True

    @property
    def packed(self) -> PackedProblem:
        """The compiled representation behind this evaluator."""
        return self._packed

    def evaluate(self, pop: np.ndarray) -> np.ndarray:
        """Cost vector for a ``(P, m, n)`` boolean population."""
        self._n_batches += 1
        self._n_batched += len(pop)
        return self._packed.population_cost(
            pop,
            public=self._public,
            changeover=self._changeover,
            changeover_fixed=self._changeover_fixed,
        )

    @property
    def stats(self) -> dict:
        denom = self._n_batched + self._n_full
        return {
            "delta_applies": self._n_batched,
            "delta_full_evals": self._n_full,
            "delta_batches": self._n_batches,
            "delta_hit_rate": (self._n_batched / denom) if denom else 1.0,
        }


def merge_evaluator_stats(
    stats: dict, evaluator_stats: Mapping
) -> dict:
    """Fold evaluator counters into a solver ``stats`` dict (in place).

    Solvers call this right before returning so the serving engine's
    metrics layer can aggregate ``delta_applies`` / ``delta_full_evals``
    across requests without knowing which solver produced them.
    """
    for key in (
        "delta_applies",
        "delta_full_evals",
        "delta_hit_rate",
        "delta_steps_recomputed",
    ):
        if key in evaluator_stats:
            stats[key] = evaluator_stats[key]
    return stats
