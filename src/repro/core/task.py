"""Tasks and task systems.

A multi-task machine runs tasks ``T_1 … T_m`` in parallel.  Each task
owns a fixed set of *local* switches (``f^loc_j`` — assigned at
initialization, Section 3), has a local-hyperreconfiguration cost
``v_j > 0`` (Section 4; the paper suggests ``v_j = |h_j| + |f^loc_j|``,
which degenerates to ``v_j = |f^loc_j|`` without private global
resources), and sees only its own slice of the machine's context
requirements.

:class:`TaskSystem` validates the ownership partition and performs the
trace split used throughout the experiments.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.context import RequirementSequence
from repro.core.switches import SwitchSet, SwitchUniverse
from repro.util.bitset import bit_count

__all__ = ["Task", "TaskSystem"]


@dataclass(frozen=True)
class Task:
    """One task of a multi-task hyperreconfigurable machine.

    Attributes
    ----------
    name:
        Unique task name.
    local:
        ``f^loc_j`` — the task's fixed local switches.
    init_cost:
        ``v_j`` — cost of one local hyperreconfiguration of this task.
        Defaults (``None``) to ``|f^loc_j|``, the switch-model example
        cost from Section 4.1.
    """

    name: str
    local: SwitchSet
    init_cost: float | None = None

    @property
    def v(self) -> float:
        """Effective local-hyperreconfiguration cost ``v_j > 0``."""
        v = len(self.local) if self.init_cost is None else self.init_cost
        return float(v)

    @property
    def local_mask(self) -> int:
        return self.local.mask

    @property
    def size(self) -> int:
        """``l_j = |f^loc_j]`` — the number of local switches."""
        return len(self.local)

    def __post_init__(self):
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.init_cost is not None and self.init_cost <= 0:
            raise ValueError(f"v_j must be positive, got {self.init_cost}")
        if self.local.mask == 0:
            raise ValueError(f"task {self.name!r} owns no local switches")


class TaskSystem:
    """The tasks of one machine plus optional global resource pools.

    Parameters
    ----------
    universe:
        Switch universe of the whole machine.
    tasks:
        Tasks with pairwise-disjoint local switch sets.
    private_global:
        Optional ``X^priv`` pool (disjoint from all local sets),
        assigned to tasks by global hyperreconfigurations.
    public_global:
        Optional ``X^pub`` pool (disjoint from local and private sets).
    """

    def __init__(
        self,
        universe: SwitchUniverse,
        tasks: Sequence[Task],
        private_global: SwitchSet | None = None,
        public_global: SwitchSet | None = None,
    ):
        if not tasks:
            raise ValueError("a task system needs at least one task")
        names = set()
        covered = 0
        for t in tasks:
            if t.local.universe != universe:
                raise ValueError(
                    f"task {t.name!r} local switches use a different universe"
                )
            if t.name in names:
                raise ValueError(f"duplicate task name {t.name!r}")
            names.add(t.name)
            if covered & t.local_mask:
                raise ValueError(
                    f"task {t.name!r} overlaps another task's local switches"
                )
            covered |= t.local_mask
        priv = private_global.mask if private_global is not None else 0
        pub = public_global.mask if public_global is not None else 0
        if private_global is not None and private_global.universe != universe:
            raise ValueError("private_global uses a different universe")
        if public_global is not None and public_global.universe != universe:
            raise ValueError("public_global uses a different universe")
        if covered & priv or covered & pub or priv & pub:
            raise ValueError(
                "local, private-global and public-global switch sets "
                "must be pairwise disjoint"
            )
        self._universe = universe
        self._tasks = tuple(tasks)
        self._private = priv
        self._public = pub

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_contiguous(
        cls,
        universe: SwitchUniverse,
        sizes: Sequence[int],
        names: Sequence[str] | None = None,
    ) -> "TaskSystem":
        """Carve the universe into contiguous local blocks of ``sizes``.

        Convenience used by the SHyRA split (LUT1 | LUT2 | DeMUX | MUX)
        and by synthetic workloads.
        """
        if names is None:
            names = [f"T{j + 1}" for j in range(len(sizes))]
        if len(names) != len(sizes):
            raise ValueError("names and sizes must have equal length")
        if sum(sizes) > universe.size:
            raise ValueError("task sizes exceed the universe")
        tasks = []
        offset = 0
        for name, size in zip(names, sizes):
            if size <= 0:
                raise ValueError("task sizes must be positive")
            mask = ((1 << size) - 1) << offset
            tasks.append(Task(name, SwitchSet(universe, mask)))
            offset += size
        return cls(universe, tasks)

    # -- accessors ---------------------------------------------------------

    @property
    def universe(self) -> SwitchUniverse:
        return self._universe

    @property
    def tasks(self) -> tuple[Task, ...]:
        return self._tasks

    @property
    def m(self) -> int:
        """Number of tasks."""
        return len(self._tasks)

    @property
    def local_masks(self) -> tuple[int, ...]:
        return tuple(t.local_mask for t in self._tasks)

    @property
    def v(self) -> tuple[float, ...]:
        """Per-task local hyperreconfiguration costs ``(v_1 … v_m)``."""
        return tuple(t.v for t in self._tasks)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Per-task local switch counts ``(l_1 … l_m)``."""
        return tuple(t.size for t in self._tasks)

    @property
    def private_global_mask(self) -> int:
        return self._private

    @property
    def public_global_mask(self) -> int:
        return self._public

    @property
    def g(self) -> int:
        """Number of private global switches (paper's ``g``)."""
        return bit_count(self._private)

    def task_index(self, name: str) -> int:
        for j, t in enumerate(self._tasks):
            if t.name == name:
                return j
        raise KeyError(name)

    def __repr__(self) -> str:
        parts = ", ".join(f"{t.name}:{t.size}" for t in self._tasks)
        return f"TaskSystem({parts})"

    # -- trace splitting -------------------------------------------------------

    def split_requirements(
        self, seq: RequirementSequence
    ) -> list[RequirementSequence]:
        """Project a whole-machine requirement trace onto each task.

        Every step of the returned sequence ``j`` contains exactly the
        bits of ``seq`` owned locally by task ``j``.  Bits belonging to
        no task (global pools) are dropped here; the global solvers
        handle them separately.
        """
        if seq.universe != self._universe:
            raise ValueError("requirement sequence uses a different universe")
        return [seq.restrict(t.local_mask) for t in self._tasks]

    def unclaimed_mask(self, seq: RequirementSequence) -> int:
        """Bits demanded by the trace that no task owns locally.

        Non-zero results indicate requirements on global pools (or a
        mis-specified task split) — callers decide which.
        """
        covered = 0
        for t in self._tasks:
            covered |= t.local_mask
        covered |= self._private | self._public
        demand = 0
        for mask in seq.masks:
            demand |= mask
        return demand & ~covered

    def merged_single_task(self, name: str = "ALL") -> "TaskSystem":
        """Collapse all tasks into one (the paper's m=1 comparison).

        The merged local set is the union of all local sets; its
        ``v`` is the sum rule ``|f^loc| = Σ l_j`` (48 for SHyRA).
        """
        merged_mask = 0
        for t in self._tasks:
            merged_mask |= t.local_mask
        merged = Task(name, SwitchSet(self._universe, merged_mask))
        return TaskSystem(
            self._universe,
            [merged],
            private_global=SwitchSet(self._universe, self._private)
            if self._private
            else None,
            public_global=SwitchSet(self._universe, self._public)
            if self._public
            else None,
        )
