"""Lane-packed NumPy representation of switch-model problems.

Every cost in the paper's switch model is a popcount over window unions
of switch sets.  Historically the repo carried three disjoint encodings
of that data — arbitrary-precision int masks in
:mod:`repro.core.context`, a private uint64 kernel inside
:mod:`repro.core.delta`, and per-move Python loops in the
metaheuristics.  This module is the single vectorized representation
that replaces the private kernels:

* masks are packed into ``L = ceil(|U| / 64)`` uint64 **lanes**, so
  universes beyond 64 switches keep the vectorized path instead of
  silently degrading to scalar code;
* :class:`PackedProblem` compiles a :class:`~repro.core.task.TaskSystem`
  plus per-task requirement sequences into an ``(m, n, L)`` matrix and
  evaluates whole schedules — or whole populations of schedules — with
  NumPy sweeps + SWAR popcounts.  Window unions, popcounts and the
  symmetric differences of the changeover variant are all expressible,
  which is what unlocks the GA's batched changeover and public-global
  paths;
* :class:`PackedSequence` is the single-task (m = 1) counterpart used
  by the Section 2 cost-model fast paths;
* :class:`PackedWindows` is an O(n log n) sparse table answering
  arbitrary half-open window-union queries in O(1) lane operations
  (the private-global segmentation DP issues O(n²) of them);
* :class:`PackedStream` is the *incremental* counterpart for online
  scheduling: requirements arrive one lane-row (or one chunk) at a
  time, and the state maintains the running union/popcount, a bounded
  ring of the most recent rows, and the rolling last-``history`` window
  union — O(L) amortized per append via two-stack sliding aggregation —
  so the online policy cursors (:mod:`repro.solvers.online`) read their
  working-set estimates off NumPy state instead of Python deques.

**Bit-identity contract.**  The scalar int-mask implementations
(:func:`repro.core.sync_cost.sync_switch_cost` and friends) remain the
correctness oracle; every evaluator here reproduces their arithmetic
*operation by operation* — same float-summation order (task-sequential
sums accumulate task by task, the grand total re-sums per-step totals
left to right), same ``max``/``sum`` choices — so packed costs are
bit-identical to the reference, not approximately equal.  The
equivalence is enforced by a randomized property suite across universe
sizes that cross the 64/128-bit lane boundaries
(``tests/test_packed.py``) and re-measured by benchmark E15.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.machine import MachineModel, UploadMode
from repro.core.schedule import (
    MultiTaskSchedule,
    ScheduleError,
    SingleTaskSchedule,
)
from repro.util.bitset import popcount_u64

__all__ = [
    "LANE_BITS",
    "lane_count",
    "masks_to_lanes",
    "lanes_to_masks",
    "masks_to_u64",
    "u64_to_mask",
    "pack_requirements",
    "pack_mask_lanes",
    "population_switch_cost",
    "PackedEvaluation",
    "PackedProblem",
    "PackedPublic",
    "PackedSequence",
    "PackedStream",
    "PackedWindows",
]

#: Width of one packed lane.
LANE_BITS = 64
_LANE_MASK = (1 << LANE_BITS) - 1
_U64_ZERO = np.uint64(0)


# ---------------------------------------------------------------------------
# Lane packing primitives
# ---------------------------------------------------------------------------


def lane_count(width: int) -> int:
    """Number of uint64 lanes needed for a ``width``-switch universe."""
    if width < 0:
        raise ValueError("universe width must be non-negative")
    return max(1, -(-width // LANE_BITS))


def masks_to_lanes(masks: Iterable[int], width: int) -> np.ndarray:
    """Pack int bitmasks of a ``width``-bit universe into ``(n, L)`` lanes."""
    masks = list(masks)
    L = lane_count(width)
    out = np.zeros((len(masks), L), dtype=np.uint64)
    for i, mask in enumerate(masks):
        if mask < 0:
            raise ValueError("bitmask must be non-negative")
        if mask >> (LANE_BITS * L):
            raise ValueError(
                f"mask {mask:#x} does not fit into {L} packed lane(s)"
            )
        for lane in range(L):
            out[i, lane] = (mask >> (LANE_BITS * lane)) & _LANE_MASK
    return out


def lanes_to_masks(lanes: np.ndarray):
    """Inverse of :func:`masks_to_lanes` over the trailing lane axis.

    Accepts any ``(..., L)`` array; returns nested lists of Python int
    masks matching the leading shape (a single int for 1-D input).
    """
    arr = np.asarray(lanes, dtype=np.uint64)
    L = arr.shape[-1]
    flat = arr.reshape(-1, L).tolist()
    masks = []
    for row in flat:
        mask = 0
        for lane in range(L - 1, -1, -1):
            mask = (mask << LANE_BITS) | row[lane]
        masks.append(mask)
    if arr.ndim == 1:
        return masks[0]
    shape = arr.shape[:-1]
    for dim in reversed(shape[1:]):
        masks = [masks[k : k + dim] for k in range(0, len(masks), dim)]
    return masks


def masks_to_u64(masks: Iterable[int]) -> np.ndarray:
    """Pack Python-int masks (must fit in 64 bits) into a uint64 vector.

    The single-lane special case of :func:`masks_to_lanes`; kept as the
    canonical home of the PR-2-era :mod:`repro.util.bitset` helper.
    """
    out = []
    for m in masks:
        if m < 0 or m >= 1 << LANE_BITS:
            raise ValueError("mask does not fit into a uint64 lane")
        out.append(np.uint64(m))
    return np.asarray(out, dtype=np.uint64)


def u64_to_mask(x: np.uint64 | int) -> int:
    """Convert a uint64 lane back into a Python int mask."""
    return int(x)


def pack_requirements(seqs: Sequence) -> np.ndarray:
    """Pack per-task requirement sequences into an ``(m, n, L)`` matrix.

    ``seqs`` are :class:`~repro.core.context.RequirementSequence`-like
    objects (``.masks`` and ``.universe.size`` are all that is used).
    """
    if not seqs:
        raise ValueError("need at least one sequence")
    width = seqs[0].universe.size
    n = len(seqs[0])
    for seq in seqs:
        if seq.universe.size != width or len(seq) != n:
            raise ValueError("sequences must share universe and length")
    out = np.zeros((len(seqs), n, lane_count(width)), dtype=np.uint64)
    for j, seq in enumerate(seqs):
        out[j] = masks_to_lanes(seq.masks, width)
    return out


# ---------------------------------------------------------------------------
# Public-global pseudo-row
# ---------------------------------------------------------------------------


class PackedPublic:
    """Pre-packed public-global pseudo-row.

    Holds the per-step hypercontext sizes, the hyper-step indicator
    vector and the public hyperreconfiguration cost — everything the
    packed evaluators need, precomputed once so repeated evaluations
    (GA generations, delta resets) do not re-derive the row.
    """

    __slots__ = ("sizes", "sizes_f", "hyper", "v", "n")

    def __init__(self, sizes, hyper, v: float):
        self.sizes = np.asarray(sizes, dtype=np.int64)
        self.sizes_f = self.sizes.astype(np.float64)
        self.hyper = np.asarray(hyper, dtype=bool)
        self.v = float(v)
        self.n = len(self.sizes)
        if len(self.hyper) != self.n:
            raise ValueError("sizes and hyper must have equal length")

    @classmethod
    def compile(cls, public, n: int) -> "PackedPublic":
        """From a :class:`~repro.core.sync_cost.PublicGlobalPlan`
        (duck-typed: ``.seq``, ``.hyper_steps``, ``.v``,
        ``.step_masks()``) or an already-packed row."""
        if isinstance(public, cls):
            if public.n != n:
                raise ScheduleError("public sequence has wrong length")
            return public
        if len(public.seq) != n:
            raise ScheduleError("public sequence has wrong length")
        hyper = np.zeros(n, dtype=bool)
        for i in public.hyper_steps:
            hyper[i] = True
        sizes = [m.bit_count() for m in public.step_masks()]
        return cls(sizes, hyper, public.v)


# ---------------------------------------------------------------------------
# Multi-task packed problem
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PackedEvaluation:
    """Per-step cost decomposition of one schedule.

    Float entries are bit-identical to the corresponding
    :class:`~repro.core.sync_cost.StepCost` fields of the reference
    breakdown.
    """

    cost: float
    step_hyper: np.ndarray  # (n,) float64
    step_reconf: np.ndarray  # (n,) float64
    sizes: np.ndarray  # (m, n) int64 — per-task block-union popcounts
    union_lanes: np.ndarray  # (m, n, L) uint64 — per-task block unions

    def union_masks(self) -> list[list[int]]:
        """Block unions as int masks (the scalar oracle's encoding)."""
        return lanes_to_masks(self.union_lanes)


class PackedProblem:
    """One compiled switch-model instance: ``(m, n, L)`` uint64 lanes.

    Compile once per problem (the batch engine does so per
    structurally-deduped request), evaluate many times: single
    schedules via :meth:`cost` / :meth:`evaluate_rows`, whole
    populations via :meth:`population_cost`.  Objective *variants*
    (``w``, changeover, public-global) are evaluation-time parameters,
    so one compiled representation serves every cost variant of the
    same instance.
    """

    __slots__ = (
        "lanes",
        "m",
        "n",
        "width",
        "v",
        "hyper_parallel",
        "reconf_parallel",
        "partial_hyper_ok",
        "context_synced",
        "_masks_sig",
        "_v_sig",
    )

    def __init__(
        self,
        lanes: np.ndarray,
        v,
        *,
        width: int | None = None,
        hyper_parallel: bool = True,
        reconf_parallel: bool = True,
        partial_hyper_ok: bool = True,
        context_synced: bool = True,
    ):
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        if lanes.ndim != 3:
            raise ValueError("lanes must have shape (m, n, L)")
        self.lanes = lanes
        self.m, self.n, L = lanes.shape
        self.width = int(width) if width is not None else LANE_BITS * L
        self.v = np.asarray(v, dtype=np.float64)
        if self.v.shape != (self.m,):
            raise ValueError("need one hyperreconfiguration cost v_j per task")
        self.hyper_parallel = bool(hyper_parallel)
        self.reconf_parallel = bool(reconf_parallel)
        self.partial_hyper_ok = bool(partial_hyper_ok)
        self.context_synced = bool(context_synced)
        self._masks_sig = None
        self._v_sig = tuple(float(x) for x in self.v)

    @property
    def lane_count(self) -> int:
        return self.lanes.shape[2]

    @classmethod
    def compile(cls, system, seqs: Sequence, model=None) -> "PackedProblem":
        """Compile a task system + per-task requirement sequences.

        ``model`` defaults to the paper's experimental machine.  The
        compiled object is immutable and pickles cheaply, so it can be
        shipped to multiprocessing workers alongside a request.
        """
        if model is None:
            model = MachineModel.paper_experimental()
        if len(seqs) != system.m:
            raise ScheduleError("system and sequences disagree on m")
        n = len(seqs[0]) if seqs else 0
        for j, seq in enumerate(seqs):
            if len(seq) != n:
                raise ScheduleError(f"sequence for task {j} has wrong length")
            if seq.universe.size != system.universe.size:
                raise ScheduleError(
                    f"sequence for task {j} uses a different universe"
                )
        obj = cls(
            pack_requirements(seqs),
            system.v,
            width=system.universe.size,
            hyper_parallel=model.hyper_upload is UploadMode.TASK_PARALLEL,
            reconf_parallel=model.reconfig_upload is UploadMode.TASK_PARALLEL,
            partial_hyper_ok=model.machine_class.allows_partial_hyper,
            context_synced=model.sync_mode.context_synced,
        )
        obj._masks_sig = tuple(seq.masks for seq in seqs)
        return obj

    def matches(self, system, seqs: Sequence, model=None) -> bool:
        """Cheap structural check: was this compiled for that instance?

        Solvers use it to decide whether a caller-supplied compile can
        be trusted or a fresh one is needed.
        """
        if model is None:
            model = MachineModel.paper_experimental()
        n = len(seqs[0]) if seqs else 0
        if (
            system.m != self.m
            or len(seqs) != self.m
            or n != self.n
            or (seqs and seqs[0].universe.size != self.width)
        ):
            return False
        if (
            self.hyper_parallel
            is not (model.hyper_upload is UploadMode.TASK_PARALLEL)
            or self.reconf_parallel
            is not (model.reconfig_upload is UploadMode.TASK_PARALLEL)
            or self.partial_hyper_ok is not model.machine_class.allows_partial_hyper
            or self.context_synced is not model.sync_mode.context_synced
        ):
            return False
        if self._v_sig != tuple(float(x) for x in system.v):
            return False
        sig = tuple(seq.masks for seq in seqs)
        if self._masks_sig is not None:
            return self._masks_sig == sig
        return bool(np.array_equal(self.lanes, pack_requirements(seqs)))

    # -- population/schedule coercion ---------------------------------------

    def _coerce_population(self, pop) -> np.ndarray:
        if isinstance(pop, MultiTaskSchedule):
            pop = np.asarray(pop.indicators, dtype=bool)[None, :, :]
        else:
            try:
                pop = np.asarray(pop, dtype=bool)
            except ValueError as exc:  # ragged row lists
                raise ScheduleError(
                    "all task rows must have equal length"
                ) from exc
            if pop.ndim == 2:
                pop = pop[None, :, :]
        if pop.ndim != 3 or pop.shape[1] != self.m or pop.shape[2] != self.n:
            raise ScheduleError(
                f"population shape {pop.shape} does not match "
                f"(·, m={self.m}, n={self.n})"
            )
        return pop

    def _validate_population(self, pop: np.ndarray) -> None:
        if self.n == 0:
            return
        if not pop[:, :, 0].all():
            raise ScheduleError("every task must hyperreconfigure at step 0")
        if not self.partial_hyper_ok and (pop != pop[:, :1, :]).any():
            raise ScheduleError(
                "a partially reconfigurable machine hyperreconfigures all "
                "tasks at a time; indicator rows must be identical"
            )

    # -- sweeps --------------------------------------------------------------

    def _sweep(self, pop: np.ndarray, keep_unions: bool):
        """Block-union sweeps: ``(sizes (P,m,n), unions (P,m,n,L)|None)``.

        Backward pass accumulates suffix unions up to each block end,
        forward pass holds the union from each block start — the
        vectorized form of
        :meth:`~repro.core.schedule.MultiTaskSchedule.block_union_masks`.
        """
        P, m, n = pop.shape
        L = self.lane_count
        req = self.lanes
        per_step = np.empty((P, m, n, L), dtype=np.uint64)
        acc = np.zeros((P, m, L), dtype=np.uint64)
        for i in range(n - 1, -1, -1):
            acc = acc | req[None, :, i, :]
            per_step[:, :, i, :] = acc
            acc = np.where(pop[:, :, i, None], _U64_ZERO, acc)
        unions = np.empty((P, m, n, L), dtype=np.uint64) if keep_unions else None
        sizes = np.empty((P, m, n), dtype=np.int64)
        cur = np.zeros((P, m, L), dtype=np.uint64)
        for i in range(n):
            cur = np.where(pop[:, :, i, None], per_step[:, :, i, :], cur)
            if keep_unions:
                unions[:, :, i, :] = cur
            sizes[:, :, i] = popcount_u64(cur).sum(axis=2, dtype=np.int64)
        return sizes, unions

    def block_union_lanes(self, pop) -> np.ndarray:
        """Per-task block unions of a ``(P, m, n)`` population (or one
        ``(m, n)`` schedule, returned with a leading axis of 1)."""
        pop = self._coerce_population(pop)
        self._validate_population(pop)
        _, unions = self._sweep(pop, keep_unions=True)
        return unions

    def block_union_masks(self, rows) -> list[list[int]]:
        """Int-mask block unions of one schedule (oracle encoding)."""
        return lanes_to_masks(self.block_union_lanes(rows)[0])

    # -- evaluation ----------------------------------------------------------

    def _evaluate(
        self,
        pop,
        *,
        w: float,
        public,
        changeover: bool,
        changeover_fixed,
        need_unions: bool,
    ):
        if w < 0:
            raise ValueError(
                "global hyperreconfiguration cost w must be non-negative"
            )
        pub = None
        if public is not None:
            if not self.context_synced:
                raise ScheduleError(
                    "public global resources require context synchronization"
                )
            pub = PackedPublic.compile(public, self.n)
        cfix = None
        if changeover_fixed is not None:
            cfix = np.asarray(changeover_fixed, dtype=np.float64)
            if cfix.shape != (self.m,):
                raise ScheduleError("changeover_fixed needs one entry per task")
        pop = self._coerce_population(pop)
        self._validate_population(pop)
        P, m, n = pop.shape
        keep_unions = need_unions or changeover
        sizes, unions = self._sweep(pop, keep_unions)

        # --- reconfiguration term (ints: any summation order is exact) ---
        if self.reconf_parallel:
            reconf = sizes.max(axis=1).astype(np.float64)
            if pub is not None:
                reconf = np.maximum(reconf, pub.sizes_f[None, :])
        else:
            reconf = sizes.sum(axis=1).astype(np.float64)
            if pub is not None:
                reconf = reconf + pub.sizes_f[None, :]

        # --- partial hyperreconfiguration term ---------------------------
        if changeover:
            prev = np.empty_like(unions)
            if n:
                prev[:, :, 0, :] = _U64_ZERO
                prev[:, :, 1:, :] = unions[:, :, :-1, :]
            diff = popcount_u64(unions ^ prev).sum(axis=3, dtype=np.int64)
            vals = diff.astype(np.float64)
            if cfix is not None:
                vals = cfix[None, :, None] + vals
        else:
            vals = np.broadcast_to(self.v[None, :, None], (P, m, n))
        if self.hyper_parallel:
            hyper = np.where(pop, vals, -np.inf).max(axis=1)
            participates = pop.any(axis=1)
            if pub is not None:
                hyper = np.where(
                    pub.hyper[None, :], np.maximum(hyper, pub.v), hyper
                )
                participates = participates | pub.hyper[None, :]
            hyper = np.where(participates, hyper, 0.0)
        else:
            # Mirror the reference's task-order Python sum: accumulate
            # task by task (absent tasks add 0.0, which is bit-neutral
            # for the model's non-negative costs), public row last.
            hyper = np.zeros((P, n), dtype=np.float64)
            for j in range(m):
                hyper = hyper + np.where(pop[:, j, :], vals[:, j, :], 0.0)
            if pub is not None:
                hyper = hyper + np.where(pub.hyper[None, :], pub.v, 0.0)

        step_total = hyper + reconf
        # Grand total in the reference's order: left-to-right over steps,
        # then w added on the left — bit-identical to
        # ``float(w + sum(s.total for s in steps))``.
        totals = np.zeros(P, dtype=np.float64)
        for i in range(n):
            totals = totals + step_total[:, i]
        totals = float(w) + totals
        return totals, hyper, reconf, sizes, unions

    def population_cost(
        self,
        pop,
        *,
        w: float = 0.0,
        public=None,
        changeover: bool = False,
        changeover_fixed=None,
    ) -> np.ndarray:
        """Cost vector of a ``(P, m, n)`` boolean population."""
        totals, _, _, _, _ = self._evaluate(
            pop,
            w=w,
            public=public,
            changeover=changeover,
            changeover_fixed=changeover_fixed,
            need_unions=False,
        )
        return totals

    def cost(
        self,
        rows,
        *,
        w: float = 0.0,
        public=None,
        changeover: bool = False,
        changeover_fixed=None,
    ) -> float:
        """Cost of one schedule (``MultiTaskSchedule`` or ``(m, n)`` rows)."""
        totals, _, _, _, _ = self._evaluate(
            rows,
            w=w,
            public=public,
            changeover=changeover,
            changeover_fixed=changeover_fixed,
            need_unions=False,
        )
        return float(totals[0])

    def evaluate_rows(
        self,
        rows,
        *,
        w: float = 0.0,
        public=None,
        changeover: bool = False,
        changeover_fixed=None,
    ) -> PackedEvaluation:
        """Full per-step decomposition of one schedule.

        This is what :class:`~repro.core.delta.DeltaEvaluator` seeds its
        incremental state from on construction and on every reset.
        """
        totals, hyper, reconf, sizes, unions = self._evaluate(
            rows,
            w=w,
            public=public,
            changeover=changeover,
            changeover_fixed=changeover_fixed,
            need_unions=True,
        )
        return PackedEvaluation(
            cost=float(totals[0]),
            step_hyper=hyper[0],
            step_reconf=reconf[0],
            sizes=sizes[0],
            union_lanes=unions[0],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedProblem(m={self.m}, n={self.n}, width={self.width}, "
            f"lanes={self.lane_count})"
        )


# ---------------------------------------------------------------------------
# Single-task packed sequence (Section 2 cost-model fast paths)
# ---------------------------------------------------------------------------


class PackedSequence:
    """One lane-packed requirement sequence (the m = 1 view).

    Provides vectorized, bit-identical fast paths for the single-task
    cost models (:mod:`repro.core.cost_single`) and the per-task terms
    of the asynchronous MT models (:mod:`repro.core.mt_cost`).  Block
    unions come from one :func:`numpy.bitwise_or.reduceat` over the
    lanes instead of per-step Python int unions.
    """

    __slots__ = ("lanes", "n", "width")

    def __init__(self, lanes: np.ndarray, *, width: int | None = None):
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        if lanes.ndim != 2:
            raise ValueError("lanes must have shape (n, L)")
        self.lanes = lanes
        self.n = lanes.shape[0]
        self.width = int(width) if width is not None else LANE_BITS * lanes.shape[1]

    @classmethod
    def compile(cls, seq) -> "PackedSequence":
        return cls(
            masks_to_lanes(seq.masks, seq.universe.size),
            width=seq.universe.size,
        )

    def _block_unions(self, schedule: SingleTaskSchedule):
        """Minimal-union hypercontext lanes per block + the blocks."""
        if schedule.n != self.n:
            raise ScheduleError(
                f"sequence length {self.n} does not match schedule "
                f"n={schedule.n}"
            )
        blocks = schedule.blocks()
        if not blocks:
            return np.zeros((0, self.lanes.shape[1]), dtype=np.uint64), blocks
        starts = np.asarray(schedule.hyper_steps, dtype=np.intp)
        unions = np.bitwise_or.reduceat(self.lanes, starts, axis=0)
        return unions, blocks

    def block_union_sizes(self, schedule: SingleTaskSchedule) -> list[int]:
        unions, _ = self._block_unions(schedule)
        return popcount_u64(unions).sum(axis=1, dtype=np.int64).tolist()

    def switch_cost(self, schedule: SingleTaskSchedule, w: float) -> float:
        """Switch-model cost ``r·w + Σ_i |h_i|·|S_i|`` (minimal unions)."""
        if w <= 0:
            raise ValueError("hyperreconfiguration cost w must be positive")
        unions, blocks = self._block_unions(schedule)
        counts = popcount_u64(unions).sum(axis=1, dtype=np.int64).tolist()
        total = schedule.r * w
        for count, (start, stop) in zip(counts, blocks):
            total += count * (stop - start)
        return float(total)

    def changeover_cost(
        self,
        schedule: SingleTaskSchedule,
        w: float,
        initial_mask: int = 0,
    ) -> float:
        """Changeover variant ``Σ_i (w + |h_i Δ h_{i-1}| + |h_i|·|S_i|)``."""
        if w < 0:
            raise ValueError(
                "fixed hyperreconfiguration cost w must be non-negative"
            )
        unions, blocks = self._block_unions(schedule)
        counts = popcount_u64(unions).sum(axis=1, dtype=np.int64).tolist()
        prev = np.empty_like(unions)
        if len(blocks):
            prev[0] = masks_to_lanes([initial_mask], self.width)[0]
            prev[1:] = unions[:-1]
        diffs = popcount_u64(unions ^ prev).sum(axis=1, dtype=np.int64).tolist()
        total = 0.0
        for diff, count, (start, stop) in zip(diffs, counts, blocks):
            total += w + diff
            total += count * (stop - start)
        return float(total)

    def async_task_total(self, schedule: SingleTaskSchedule, v: float) -> float:
        """One task's MT-Switch term ``Σ_i (v_j + |h_ij|·|S_ji|)``."""
        if v <= 0:
            raise ValueError(
                "local hyperreconfiguration cost v_j must be positive"
            )
        unions, blocks = self._block_unions(schedule)
        counts = popcount_u64(unions).sum(axis=1, dtype=np.int64).tolist()
        total = 0.0
        for count, (start, stop) in zip(counts, blocks):
            total += v + count * (stop - start)
        return float(total)

    def window_union_sizes(self) -> list[list[int]]:
        """``sizes[i][j] = |c_i ∪ … ∪ c_{i+j}|`` triangular table.

        Lane-accumulated rows; bit-identical to
        :meth:`repro.core.context.RequirementSequence.window_union_sizes`.
        """
        out: list[list[int]] = []
        for i in range(self.n):
            acc = np.bitwise_or.accumulate(self.lanes[i:], axis=0)
            out.append(popcount_u64(acc).sum(axis=1, dtype=np.int64).tolist())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedSequence(n={self.n}, width={self.width}, "
            f"lanes={self.lanes.shape[1]})"
        )


# ---------------------------------------------------------------------------
# Window-union sparse table
# ---------------------------------------------------------------------------


class PackedWindows:
    """Sparse table of half-open window unions over packed requirements.

    Build is O(m·n·log n) lane operations; :meth:`union_lanes` answers
    any ``[start, stop)`` query with two ORs per task (overlapping
    power-of-two windows — idempotent for union).  The private-global
    segmentation DP issues O(n²) window-demand queries, which this
    collapses from O(n) each to O(1).
    """

    __slots__ = ("m", "n", "_levels")

    def __init__(self, lanes: np.ndarray):
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        if lanes.ndim != 3:
            raise ValueError("lanes must have shape (m, n, L)")
        self.m, self.n, _ = lanes.shape
        levels = [lanes]
        k = 1
        while (1 << k) <= self.n:
            prev = levels[-1]
            half = 1 << (k - 1)
            count = self.n - (1 << k) + 1
            levels.append(prev[:, :count] | prev[:, half : half + count])
            k += 1
        self._levels = levels

    @classmethod
    def from_sequences(cls, seqs: Sequence) -> "PackedWindows":
        return cls(pack_requirements(seqs))

    def union_lanes(self, start: int, stop: int) -> np.ndarray:
        """Per-task union lanes of the window ``[start, stop)``: (m, L)."""
        if not 0 <= start <= stop <= self.n:
            raise IndexError(f"invalid window [{start}, {stop})")
        if stop == start:
            return np.zeros(
                (self.m, self._levels[0].shape[2]), dtype=np.uint64
            )
        k = (stop - start).bit_length() - 1
        table = self._levels[k]
        span = 1 << k
        return table[:, start] | table[:, stop - span]

    def union_masks(self, start: int, stop: int) -> list[int]:
        """Per-task int-mask unions of the window ``[start, stop)``."""
        return lanes_to_masks(self.union_lanes(start, stop))


# ---------------------------------------------------------------------------
# Incremental stream state (online scheduling)
# ---------------------------------------------------------------------------


class PackedStream:
    """Incremental lane-packed state of an online requirement stream.

    The offline structures above see the whole sequence; an online
    policy sees requirements one reconfiguration step at a time.  This
    is the packed window state those policies run on:

    * :meth:`append_lanes` / :meth:`append_mask` add one requirement
      row in O(L) amortized lane work;
    * the running union of everything seen (:attr:`union_lanes`,
      :attr:`union_size`) is maintained incrementally;
    * a ring of the most recent ``history`` rows backs arbitrary
      tail-window queries (:meth:`tail_rows`), and the union of the
      *full* last-``history`` window (:meth:`window_union_lanes`) is
      maintained with the two-stack sliding-window aggregation — an
      O(L) amortized dequeue/enqueue instead of re-OR-ing a Python
      deque per step;
    * :meth:`push` is the batched entry point: it returns the chunk
      prefixed with the retained history rows (what a vectorized
      cursor needs to form working-set windows that cross the chunk
      boundary) and commits the chunk in one vectorized update.

    ``history = 0`` keeps no rows: the stream then only tracks counts
    and the running union.
    """

    __slots__ = (
        "width",
        "history",
        "n",
        "_L",
        "_total",
        "_total_size",
        "_ring",
        "_ring_pos",
        "_win_len",
        "_front_suffix",
        "_front_n",
        "_back_union",
        "_back_n",
    )

    def __init__(self, width: int, *, history: int = 0):
        if width < 1:
            raise ValueError("universe width must be positive")
        if history < 0:
            raise ValueError("history must be non-negative")
        self.width = int(width)
        self.history = int(history)
        self.n = 0
        self._L = lane_count(width)
        self._total = np.zeros(self._L, dtype=np.uint64)
        self._total_size = 0
        self._ring = (
            np.zeros((history, self._L), dtype=np.uint64) if history else None
        )
        self._ring_pos = 0
        # Two-stack window aggregation over the last `history` rows.
        self._win_len = 0
        self._front_suffix = np.zeros((0, self._L), dtype=np.uint64)
        self._front_n = 0
        self._back_union = np.zeros(self._L, dtype=np.uint64)
        self._back_n = 0

    # -- introspection -----------------------------------------------------

    @property
    def lane_width(self) -> int:
        return self._L

    @property
    def union_lanes(self) -> np.ndarray:
        """Running union of every requirement seen (copy)."""
        return self._total.copy()

    @property
    def union_mask(self) -> int:
        return lanes_to_masks(self._total)

    @property
    def union_size(self) -> int:
        """Popcount of the running union (maintained incrementally)."""
        return self._total_size

    def tail_rows(self, count: int) -> np.ndarray:
        """The last ``min(count, n, history)`` rows, oldest first."""
        if count < 0:
            raise ValueError("count must be non-negative")
        count = min(count, self.n, self.history)
        if count == 0:
            return np.zeros((0, self._L), dtype=np.uint64)
        idx = (self._ring_pos - count + np.arange(count)) % self.history
        return self._ring[idx]

    def window_union_lanes(self) -> np.ndarray:
        """Union of the last ``min(history, n)`` rows, in O(L).

        This is the rolling working-set estimate the online policies
        install; reading it costs one lane OR thanks to the two-stack
        invariant (front-suffix union | back-prefix union).
        """
        if not self.history:
            raise ValueError("stream was built with history=0")
        if self._front_n:
            offset = self._front_suffix.shape[0] - self._front_n
            return self._front_suffix[offset] | self._back_union
        return self._back_union.copy()

    def window_union_mask(self) -> int:
        return lanes_to_masks(self.window_union_lanes())

    # -- appending ---------------------------------------------------------

    def _flip(self) -> None:
        """Move the back stack to the front as suffix unions."""
        rows = self.tail_rows(self._back_n)
        self._front_suffix = np.bitwise_or.accumulate(rows[::-1], axis=0)[::-1]
        self._front_n = rows.shape[0]
        self._back_union = np.zeros(self._L, dtype=np.uint64)
        self._back_n = 0

    def append_lanes(self, row: np.ndarray) -> None:
        """Append one requirement row of ``L`` uint64 lanes."""
        row = np.asarray(row, dtype=np.uint64)
        if row.shape != (self._L,):
            raise ValueError(f"row must have shape ({self._L},)")
        if self.history:
            if self._win_len == self.history:
                if self._front_n == 0:
                    self._flip()
                self._front_n -= 1
            else:
                self._win_len += 1
            self._back_union = self._back_union | row
            self._back_n += 1
            self._ring[self._ring_pos] = row
            self._ring_pos = (self._ring_pos + 1) % self.history
        self._total = self._total | row
        self._total_size = int(
            popcount_u64(self._total).sum(dtype=np.int64)
        )
        self.n += 1

    def append_mask(self, mask: int) -> None:
        """Append one requirement given as a Python int bitmask."""
        self.append_lanes(masks_to_lanes([mask], self.width)[0])

    def _window_commit_short(
        self, lanes: np.ndarray, chunk_union: np.ndarray | None = None
    ) -> None:
        """Two-stack window update for a chunk shorter than ``history``.

        Must run *after* ``self.n`` already counts the chunk.  The
        whole chunk enters the back stack in one push (its union is
        one lane OR), and the same number of rows leaves the front
        stack in one pop — O(L) per chunk instead of per row.  When
        the front stack cannot cover the pops (the scalar path would
        flip mid-chunk) the window is re-flipped wholesale: the
        resulting front/back *split* differs from the per-row path's,
        but every readable quantity — ring rows, ``tail_rows``,
        ``window_union_lanes`` — is bit-identical, which is what the
        cursor decisions depend on.
        """
        h = self.history
        C = lanes.shape[0]
        pos = self._ring_pos
        if pos + C <= h:
            self._ring[pos : pos + C] = lanes
        else:
            split = h - pos
            self._ring[pos:] = lanes[:split]
            self._ring[: C - split] = lanes[split:]
        self._ring_pos = (pos + C) % h
        if self._win_len + C <= h or (
            self._win_len == h and self._front_n >= C
        ):
            if chunk_union is None:
                chunk_union = np.bitwise_or.reduce(lanes, axis=0)
            if self._win_len < h:
                self._win_len += C
            else:
                self._front_n -= C
            self._back_union = self._back_union | chunk_union
            self._back_n += C
        else:
            # Warmup crossing or front exhausted mid-chunk: flip the
            # whole window into fresh suffix unions (the amortized
            # O(h·L) event the scalar path pays one row at a time).
            self._win_len = min(h, self.n)
            self._back_n = self._win_len
            self._flip()

    def extend(self, lanes: np.ndarray) -> None:
        """Append a ``(C, L)`` chunk in one vectorized update."""
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        if lanes.ndim != 2 or lanes.shape[1] != self._L:
            raise ValueError(f"chunk must have shape (C, {self._L})")
        C = lanes.shape[0]
        if C == 0:
            return
        union = np.bitwise_or.reduce(lanes, axis=0)
        self._total = self._total | union
        self._total_size = int(
            popcount_u64(self._total).sum(dtype=np.int64)
        )
        self.n += C
        if not self.history:
            return
        if C < self.history:
            self._window_commit_short(lanes, chunk_union=union)
            return
        # The chunk covers the whole window: rebuild ring + stacks.
        tail = lanes[-self.history :]
        self._ring[: tail.shape[0]] = tail
        self._ring_pos = tail.shape[0] % self.history
        self._win_len = min(self.history, self.n)
        self._front_suffix = np.zeros((0, self._L), dtype=np.uint64)
        self._front_n = 0
        self._back_union = np.bitwise_or.reduce(tail, axis=0)
        self._back_n = tail.shape[0]

    @classmethod
    def extend_many(
        cls,
        streams,
        block: np.ndarray,
        *,
        unions: np.ndarray | None = None,
        lengths=None,
    ) -> None:
        """Commit one chunk per stream in a fused update.

        ``block`` stacks one ``(C, L)`` chunk per stream into
        ``(S, C, L)``; every stream must share the lane width and
        ``history``.  Bit-identical to calling :meth:`extend` per
        stream — the running unions, popcounts, ring rebuilds and
        two-stack window state are just computed across all streams in
        whole-array NumPy passes instead of S separate dispatch
        cascades (this is the stream half of the fused multi-session
        sweep; :meth:`sweep_many` in :mod:`repro.solvers.online` is the
        policy half).  ``unions`` optionally passes precomputed
        ``(S, L)`` per-chunk unions so a caller that already reduced
        the block does not pay the pass twice.

        ``lengths`` commits *ragged* chunks from one zero-padded stack:
        stream ``s`` takes ``block[s, :lengths[s]]``.  Zero padding ORs
        as the identity, so the batched totals pass is unchanged (a
        padded ``unions`` equals the unpadded one); only the per-stream
        window commit walks each stream's true length.

        Chunks shorter than ``history`` batch the totals the same way
        and run the amortized :meth:`_window_commit_short` per stream
        (one back push + one front pop per chunk, not per row).
        """
        S, C, L = block.shape
        if len(streams) != S:
            raise ValueError("one chunk per stream required")
        if S == 0 or C == 0:
            return
        h = streams[0].history
        for st in streams:
            if st._L != L or st.history != h:
                raise ValueError(
                    "fused extend requires equal lane width and history"
                )
        if unions is None:
            unions = np.bitwise_or.reduce(block, axis=1)
        totals = np.stack([st._total for st in streams])
        np.bitwise_or(totals, unions, out=totals)
        total_sizes = popcount_u64(totals).sum(axis=1, dtype=np.int64)
        if lengths is not None:
            lengths = np.asarray(lengths, dtype=np.int64)
            if lengths.shape != (S,) or (lengths < 1).any() or (
                lengths > C
            ).any():
                raise ValueError(
                    "lengths must hold one value in [1, C] per stream"
                )
            for s, st in enumerate(streams):
                n_s = int(lengths[s])
                st._total = totals[s]
                st._total_size = int(total_sizes[s])
                st.n += n_s
                if not h:
                    continue
                chunk = block[s, :n_s]
                if n_s < h:
                    st._window_commit_short(chunk, chunk_union=unions[s])
                else:
                    tail = chunk[n_s - h :]
                    st._ring[:h] = tail
                    st._ring_pos = 0
                    st._win_len = h
                    st._front_suffix = np.zeros((0, L), dtype=np.uint64)
                    st._front_n = 0
                    st._back_union = np.bitwise_or.reduce(tail, axis=0)
                    st._back_n = h
            return
        if h and C < h:
            for s, st in enumerate(streams):
                st._total = totals[s]
                st._total_size = int(total_sizes[s])
                st.n += C
                st._window_commit_short(block[s], chunk_union=unions[s])
            return
        if h:
            tails = block[:, C - h :, :]
            tail_unions = np.bitwise_or.reduce(tails, axis=1)
            empty_front = np.zeros((0, L), dtype=np.uint64)
        for s, st in enumerate(streams):
            st._total = totals[s]
            st._total_size = int(total_sizes[s])
            st.n += C
            if h:
                st._ring[:h] = tails[s]
                st._ring_pos = 0
                st._win_len = h
                st._front_suffix = empty_front
                st._front_n = 0
                st._back_union = tail_unions[s]
                st._back_n = h
        return

    def push(self, lanes: np.ndarray) -> tuple[np.ndarray, int]:
        """Commit a chunk; return ``(ext, off)`` for batched cursors.

        ``ext`` stacks the retained history rows (the state *before*
        this chunk) above the chunk itself and ``off`` is the chunk's
        row offset into ``ext`` — window unions ending at chunk row
        ``t`` are ORs over ``ext[max(0, off + t - k + 1) : off + t + 1]``
        even when the window crosses the chunk boundary.
        """
        lanes = np.ascontiguousarray(lanes, dtype=np.uint64)
        if lanes.ndim != 2 or lanes.shape[1] != self._L:
            raise ValueError(f"chunk must have shape (C, {self._L})")
        tail = self.tail_rows(self.history)
        if tail.shape[0]:
            ext = np.concatenate([tail, lanes], axis=0)
        else:
            ext = lanes
        self.extend(lanes)
        return ext, tail.shape[0]

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedStream(n={self.n}, width={self.width}, "
            f"history={self.history})"
        )


# ---------------------------------------------------------------------------
# Legacy kernel entry points (PR 2 public names)
# ---------------------------------------------------------------------------


def pack_mask_lanes(seqs: Sequence) -> np.ndarray:
    """Legacy ``(L, m, n)`` lane layout of :func:`pack_requirements`.

    Kept for PR-2 callers (``repro.core.delta`` re-exports it); new code
    should use :class:`PackedProblem` / :func:`pack_requirements`.
    """
    return np.ascontiguousarray(np.moveaxis(pack_requirements(seqs), 2, 0))


def population_switch_cost(
    pop: np.ndarray,
    lanes: np.ndarray,
    v: np.ndarray,
    *,
    hyper_parallel: bool = True,
    reconf_parallel: bool = True,
) -> np.ndarray:
    """Legacy batched-kernel entry point over ``(L, m, n)`` lanes.

    Delegates to :class:`PackedProblem`; in the move it *gained* strict
    bit-identity with the reference cost (the old private kernel summed
    per-step terms in a different float order and was only equal up to
    rounding).
    """
    req = np.ascontiguousarray(
        np.moveaxis(np.asarray(lanes, dtype=np.uint64), 0, 2)
    )
    problem = PackedProblem(
        req,
        np.asarray(v, dtype=np.float64),
        hyper_parallel=hyper_parallel,
        reconf_parallel=reconf_parallel,
    )
    return problem.population_cost(np.asarray(pop, dtype=bool))
