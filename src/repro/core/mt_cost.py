"""Asynchronous multi-task cost models (Section 4.1).

On a non-synchronized machine the reconfiguration times of some tasks
overlap with the computation times of others; the models therefore
charge the *maximum* over the tasks of the per-task totals (operations
are always executed task-parallel in the asynchronous case), plus the
cost of the barrier-synchronized global hyperreconfiguration that
delimits the evaluated phase:

* **General Multi Task model** —
  ``init(h) + max_j Σ_i (init(h_j, f^loc_j) + cost(h^loc_ij, h^priv_ij)·|S_ji|)``
* **MT-DAG model** — same shape with ``init(h) = w`` and
  ``init(h_j, f^loc_j) = v_j`` constants.
* **MT-Switch model** —
  ``w + max_j Σ_i (v_j + (|h^loc_ij| + |h^priv_ij|)·|S_ji|)``.

Each task contributes an independent partition of its own requirement
sequence (tasks are not aligned step-by-step here — contrast with
:mod:`repro.core.sync_cost`).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.context import RequirementSequence
from repro.core.schedule import SingleTaskSchedule
from repro.core.task import TaskSystem
from repro.util.bitset import bit_count

__all__ = [
    "async_general_cost",
    "async_switch_cost",
    "async_switch_task_total",
]


def async_general_cost(
    global_init: float,
    per_task_blocks: Sequence[Sequence[tuple[float, float, int]]],
) -> float:
    """General Multi Task model cost.

    Parameters
    ----------
    global_init:
        ``init(h)`` — cost of the global hyperreconfiguration opening
        the phase (0 if the machine has no global resources).
    per_task_blocks:
        For each task ``j`` a sequence of blocks
        ``(local_init_cost, per_reconfig_cost, n_reconfigs)`` — one
        entry per local hyperreconfiguration ``(h^loc, h^priv)`` and
        the reconfiguration sequence executed under it.

    Every task must perform at least one local hyperreconfiguration
    after the global one (the paper's assumption), so an empty block
    list is rejected.
    """
    if global_init < 0:
        raise ValueError("global init cost must be non-negative")
    if not per_task_blocks:
        raise ValueError("need at least one task")
    worst = 0.0
    for j, blocks in enumerate(per_task_blocks):
        if not blocks:
            raise ValueError(
                f"task {j} must perform a local hyperreconfiguration "
                "after the global hyperreconfiguration"
            )
        total = 0.0
        for init_cost, reconf_cost, length in blocks:
            if init_cost < 0 or reconf_cost < 0 or length < 0:
                raise ValueError("block costs/lengths must be non-negative")
            total += init_cost + reconf_cost * length
        worst = max(worst, total)
    return float(global_init + worst)


def async_switch_task_total(
    seq: RequirementSequence,
    schedule: SingleTaskSchedule,
    v: float,
) -> float:
    """One task's term ``Σ_i (v_j + |h_ij|·|S_ji|)`` in the MT-Switch sum."""
    if v <= 0:
        raise ValueError("local hyperreconfiguration cost v_j must be positive")
    masks = schedule.hypercontext_masks(seq)
    total = 0.0
    for mask, (start, stop) in zip(masks, schedule.blocks()):
        total += v + bit_count(mask) * (stop - start)
    return float(total)


def async_switch_cost(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    schedules: Sequence[SingleTaskSchedule],
    w: float = 0.0,
    *,
    packed: Sequence | None = None,
) -> float:
    """MT-Switch model cost ``w + max_j Σ_i (v_j + |h_ij|·|S_ji|)``.

    ``seqs[j]`` holds task ``j``'s *combined* per-step requirement masks
    (local plus assigned private-global bits — the cost only depends on
    ``|h^loc| + |h^priv| = |h^loc ∪ h^priv|`` since the sets are
    disjoint).  ``w`` is the global hyperreconfiguration cost; pass 0
    when the machine has only local resources (then no global
    hyperreconfigurations exist, Section 5).

    ``packed`` optionally supplies one precompiled
    :class:`~repro.core.packed.PackedSequence` per task; the per-task
    totals then come from the lane-packed fast path (bit-identical to
    the scalar term above).
    """
    if w < 0:
        raise ValueError("global hyperreconfiguration cost w must be non-negative")
    if not (len(seqs) == len(schedules) == system.m):
        raise ValueError("need one sequence and one schedule per task")
    if packed is not None and len(packed) != system.m:
        raise ValueError("need one packed sequence per task")
    worst = 0.0
    for j, (task, seq, schedule) in enumerate(zip(system.tasks, seqs, schedules)):
        if packed is not None:
            total = packed[j].async_task_total(schedule, task.v)
        else:
            total = async_switch_task_total(seq, schedule, task.v)
        worst = max(worst, total)
    return float(w + worst)
