"""Fully synchronized MT-Switch cost model (Section 4.2).

The machine executes ``n`` barrier-synchronized rounds between global
hyperreconfigurations; in round ``i`` every task performs a local
(no-)hyperreconfiguration followed by a reconfiguration.  With
indicators ``I_{j,i}`` and the hypercontext ``h_{f_j(i),j}`` installed
by task ``j``'s most recent local hyperreconfiguration, the total
(hyper)reconfiguration time is

* task-parallel hyper, task-parallel reconfig::

      w + Σ_i ( max_j I_{j,i}·v_j
                + max( |h^pub|, max_j (|h^loc_{f_j(i),j}| + |h^priv_{f_j(i),j}|) ) )

* a task-sequential operation replaces its ``max_j`` by ``Σ_j``.

``w`` is the cost of the global hyperreconfiguration that opened the
phase (0 when the machine has only local resources — then no global
hyperreconfigurations exist at all, Section 5).

The public-global term is modelled as an optional pseudo-row: a
requirement sequence plus indicator row of its own, since public
resources are reconfigured synchronously for all tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel, UploadMode
from repro.core.schedule import MultiTaskSchedule, ScheduleError
from repro.core.task import TaskSystem
from repro.util.bitset import bit_count

__all__ = ["StepCost", "sync_cost_breakdown", "sync_switch_cost", "PublicGlobalPlan"]


@dataclass(frozen=True)
class StepCost:
    """Cost contributions of one synchronized round.

    ``hyper`` is the (parallel or sequential) partial-hyperreconfiguration
    term, ``reconfig`` the reconfiguration term; ``total = hyper +
    reconfig``.
    """

    step: int
    hyper: float
    reconfig: float

    @property
    def total(self) -> float:
        return self.hyper + self.reconfig


@dataclass(frozen=True)
class PublicGlobalPlan:
    """Schedule row for the public-global resources.

    Attributes
    ----------
    seq:
        Requirement sequence on the public pool (length ``n``).
    hyper_steps:
        Steps at which the public hypercontext is re-installed
        (step 0 mandatory).
    v:
        Hyperreconfiguration cost of the public row.
    """

    seq: RequirementSequence
    hyper_steps: tuple[int, ...]
    v: float

    def step_masks(self) -> list[int]:
        from repro.core.schedule import SingleTaskSchedule

        sched = SingleTaskSchedule(n=len(self.seq), hyper_steps=self.hyper_steps)
        return sched.step_hypercontexts(self.seq)


def sync_cost_breakdown(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    schedule: MultiTaskSchedule,
    model: MachineModel | None = None,
    *,
    w: float = 0.0,
    public: PublicGlobalPlan | None = None,
    changeover: bool = False,
    changeover_fixed: Sequence[float] | None = None,
) -> list[StepCost]:
    """Per-step cost decomposition of a fully synchronized run.

    Parameters
    ----------
    system:
        Task system (supplies ``v_j``).
    seqs:
        Per-task requirement sequences, all of length ``n`` (combined
        local + assigned private-global bits).
    schedule:
        The ``m × n`` indicator matrix.
    model:
        Machine model; defaults to the paper's experimental setting
        (fully synchronized, task-parallel uploads).  Upload modes
        select max vs. sum per the Section 4.2 formulas; the machine
        class restricts legal indicator patterns.
    w:
        Global hyperreconfiguration cost amortized into step 0 (kept
        separate from the per-step sums by :func:`sync_switch_cost`).
        Only validated here.
    public:
        Optional public-global pseudo-row.
    changeover:
        If true, a task's hyperreconfiguration at step ``i`` costs
        ``fixed_j + |h_new Δ h_old|`` instead of ``v_j`` (the Section
        4.1 model variant applied per task); ``changeover_fixed``
        supplies ``fixed_j`` (default 0 per task).
    """
    if model is None:
        model = MachineModel.paper_experimental()
    if w < 0:
        raise ValueError("global hyperreconfiguration cost w must be non-negative")
    if len(seqs) != system.m or schedule.m != system.m:
        raise ScheduleError("system, sequences and schedule disagree on m")
    n = schedule.n
    for j, seq in enumerate(seqs):
        if len(seq) != n:
            raise ScheduleError(f"sequence for task {j} has wrong length")
    if public is not None:
        if not model.sync_mode.context_synced:
            raise ScheduleError(
                "public global resources require context synchronization"
            )
        if len(public.seq) != n:
            raise ScheduleError("public sequence has wrong length")
    if not model.machine_class.allows_partial_hyper:
        rows = schedule.indicators
        if any(rows[0] != rows[j] for j in range(1, schedule.m)):
            raise ScheduleError(
                "a partially reconfigurable machine hyperreconfigures all "
                "tasks at a time; indicator rows must be identical"
            )
    if changeover_fixed is not None and len(changeover_fixed) != system.m:
        raise ScheduleError("changeover_fixed needs one entry per task")

    hyper_parallel = model.hyper_upload is UploadMode.TASK_PARALLEL
    reconf_parallel = model.reconfig_upload is UploadMode.TASK_PARALLEL
    v = system.v
    unions = schedule.block_union_masks(seqs)
    union_sizes = [[bit_count(mask) for mask in row] for row in unions]
    pub_sizes = None
    pub_hyper = None
    if public is not None:
        pub_sizes = [bit_count(m) for m in public.step_masks()]
        pub_hyper = set(public.hyper_steps)

    out: list[StepCost] = []
    for i in range(n):
        # --- partial hyperreconfiguration term -------------------------
        hyper_costs: list[float] = []
        for j in range(system.m):
            if not schedule.indicators[j][i]:
                continue
            if changeover:
                fixed = changeover_fixed[j] if changeover_fixed else 0.0
                prev = unions[j][i - 1] if i > 0 else 0
                hyper_costs.append(fixed + bit_count(unions[j][i] ^ prev))
            else:
                hyper_costs.append(v[j])
        if pub_hyper is not None and i in pub_hyper:
            hyper_costs.append(public.v)
        if hyper_costs:
            hyper = max(hyper_costs) if hyper_parallel else sum(hyper_costs)
        else:
            hyper = 0.0
        # --- reconfiguration term -------------------------------------
        sizes = [union_sizes[j][i] for j in range(system.m)]
        if reconf_parallel:
            reconf = float(max(sizes))
            if pub_sizes is not None:
                reconf = max(reconf, float(pub_sizes[i]))
        else:
            reconf = float(sum(sizes))
            if pub_sizes is not None:
                reconf += float(pub_sizes[i])
        out.append(StepCost(step=i, hyper=float(hyper), reconfig=reconf))
    return out


def sync_switch_cost(
    system: TaskSystem,
    seqs: Sequence[RequirementSequence],
    schedule: MultiTaskSchedule,
    model: MachineModel | None = None,
    *,
    w: float = 0.0,
    public: PublicGlobalPlan | None = None,
    changeover: bool = False,
    changeover_fixed: Sequence[float] | None = None,
    packed=None,
) -> float:
    """Total fully synchronized MT-Switch cost ``w + Σ_i (hyper_i + reconf_i)``.

    See :func:`sync_cost_breakdown` for parameters.  This is the
    objective minimized by the Section 5 MT-Switch problem and by all
    multi-task solvers in :mod:`repro.solvers`.

    ``packed`` optionally supplies a precompiled
    :class:`~repro.core.packed.PackedProblem` for this ``(system,
    seqs, model)`` instance: the lane-packed fast path then evaluates
    the schedule with a bit-identical result (the scalar path below
    remains the correctness oracle).  The caller vouches that the
    compile matches the instance; use
    :meth:`~repro.core.packed.PackedProblem.matches` when unsure.
    """
    if packed is not None:
        return packed.cost(
            schedule,
            w=w,
            public=public,
            changeover=changeover,
            changeover_fixed=changeover_fixed,
        )
    steps = sync_cost_breakdown(
        system,
        seqs,
        schedule,
        model,
        w=w,
        public=public,
        changeover=changeover,
        changeover_fixed=changeover_fixed,
    )
    return float(w + sum(s.total for s in steps))
