"""Resource taxonomy of multi-task hyperreconfigurable machines.

Section 3 distinguishes three kinds of hyperreconfigurable resources:

* **local** — amount/quality per task set independently by local
  hyperreconfigurations; ownership fixed at initialization;
* **private global** — shared pool, *assigned* to tasks by global
  hyperreconfigurations (ownership can change), availability within the
  assignment refined by local hyperreconfigurations;
* **public global** — usable by all tasks at the same time at the same
  quality; exists only on context- or fully-synchronized machines.

:class:`ResourcePartition` pins each switch of a universe to one kind
and validates the partition.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.core.switches import SwitchUniverse
from repro.util.bitset import bit_count

__all__ = ["ResourceKind", "ResourcePartition"]


class ResourceKind(enum.Enum):
    """Kind of a hyperreconfigurable resource (Section 3)."""

    LOCAL = "local"
    PRIVATE_GLOBAL = "private_global"
    PUBLIC_GLOBAL = "public_global"


class ResourcePartition:
    """Partition of a switch universe into resource kinds.

    Parameters
    ----------
    universe:
        The switch universe being partitioned.
    kinds:
        Mapping from switch name to :class:`ResourceKind`.  Switches not
        mentioned default to :data:`ResourceKind.LOCAL`.
    """

    __slots__ = ("_universe", "_local", "_private", "_public")

    def __init__(
        self,
        universe: SwitchUniverse,
        kinds: Mapping[str, ResourceKind] | None = None,
    ):
        kinds = dict(kinds or {})
        local = private = public = 0
        for name in universe.names:
            kind = kinds.pop(name, ResourceKind.LOCAL)
            bit = 1 << universe.index(name)
            if kind is ResourceKind.LOCAL:
                local |= bit
            elif kind is ResourceKind.PRIVATE_GLOBAL:
                private |= bit
            elif kind is ResourceKind.PUBLIC_GLOBAL:
                public |= bit
            else:  # pragma: no cover - enum is closed
                raise ValueError(f"unknown resource kind {kind!r}")
        if kinds:
            raise ValueError(f"unknown switch names in kinds: {sorted(kinds)}")
        self._universe = universe
        self._local = local
        self._private = private
        self._public = public

    @classmethod
    def all_local(cls, universe: SwitchUniverse) -> "ResourcePartition":
        """The paper's experimental setting: every switch is local."""
        return cls(universe, {})

    # -- accessors ---------------------------------------------------------

    @property
    def universe(self) -> SwitchUniverse:
        return self._universe

    @property
    def local_mask(self) -> int:
        """``X^loc`` as a bitmask."""
        return self._local

    @property
    def private_global_mask(self) -> int:
        """``X^priv`` as a bitmask."""
        return self._private

    @property
    def public_global_mask(self) -> int:
        """``X^pub`` (the paper calls these H^pub resources)."""
        return self._public

    def kind_of(self, name: str) -> ResourceKind:
        bit = 1 << self._universe.index(name)
        if self._local & bit:
            return ResourceKind.LOCAL
        if self._private & bit:
            return ResourceKind.PRIVATE_GLOBAL
        return ResourceKind.PUBLIC_GLOBAL

    def counts(self) -> dict[ResourceKind, int]:
        return {
            ResourceKind.LOCAL: bit_count(self._local),
            ResourceKind.PRIVATE_GLOBAL: bit_count(self._private),
            ResourceKind.PUBLIC_GLOBAL: bit_count(self._public),
        }

    @property
    def has_private_global(self) -> bool:
        return self._private != 0

    @property
    def has_public_global(self) -> bool:
        return self._public != 0

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"ResourcePartition(local={c[ResourceKind.LOCAL]}, "
            f"private_global={c[ResourceKind.PRIVATE_GLOBAL]}, "
            f"public_global={c[ResourceKind.PUBLIC_GLOBAL]})"
        )
