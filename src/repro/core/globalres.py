"""Global hypercontexts and private-global resource assignment.

With private global resources the run is segmented by **global
hyperreconfigurations** (always barrier-synchronized).  Each global
hypercontext ``h = (h_0, h_1, …, h_m)`` fixes the available public
resources ``h_0`` and assigns disjoint private-global slices ``h_j`` to
the tasks; local hyperreconfigurations then pick **extended local
hypercontexts** ``(h^loc_j, h^priv_j)`` with ``h^priv_j ⊆ h_j`` and
``h^loc_j ⊆ f^loc_j``.

This module provides the data types plus validity checking; the
two-level optimizer lives in :mod:`repro.solvers.private_global`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.context import RequirementSequence
from repro.core.machine import MachineModel
from repro.core.schedule import MultiTaskSchedule, ScheduleError
from repro.core.sync_cost import sync_switch_cost
from repro.core.task import TaskSystem

__all__ = ["GlobalHypercontext", "GlobalPhase", "GlobalSchedule"]


@dataclass(frozen=True)
class GlobalHypercontext:
    """One global hypercontext ``(h_0, h_1, …, h_m)``.

    Attributes
    ----------
    public_mask:
        ``h_0`` — available public-global switches (0 if none).
    assignments:
        ``(h_1 … h_m)`` — per-task private-global assignment masks;
        pairwise disjoint subsets of ``X^priv``.
    """

    public_mask: int
    assignments: tuple[int, ...]

    def validate(self, system: TaskSystem) -> None:
        """Raise :class:`ScheduleError` unless consistent with ``system``."""
        if len(self.assignments) != system.m:
            raise ScheduleError("need one private-global assignment per task")
        if self.public_mask & ~system.public_global_mask:
            raise ScheduleError("public mask exceeds the public-global pool")
        seen = 0
        for j, mask in enumerate(self.assignments):
            if mask & ~system.private_global_mask:
                raise ScheduleError(
                    f"assignment for task {j} exceeds the private-global pool"
                )
            if mask & seen:
                raise ScheduleError(
                    f"assignment for task {j} overlaps another task's"
                )
            seen |= mask

    @classmethod
    def empty(cls, m: int) -> "GlobalHypercontext":
        return cls(public_mask=0, assignments=(0,) * m)


@dataclass(frozen=True)
class GlobalPhase:
    """One segment between consecutive global hyperreconfigurations.

    Attributes
    ----------
    start, stop:
        Half-open step window ``[start, stop)`` of the phase.
    hypercontext:
        The global hypercontext installed at ``start``.
    schedule:
        Local (no-)hyperreconfiguration indicators for the phase; its
        ``n`` must equal ``stop - start``, and its first column must be
        all ones (after a global hyperreconfiguration every task must
        perform a local hyperreconfiguration).
    """

    start: int
    stop: int
    hypercontext: GlobalHypercontext
    schedule: MultiTaskSchedule

    def __post_init__(self):
        if not 0 <= self.start < self.stop:
            raise ScheduleError("phase window must be non-empty and ordered")
        if self.schedule.n != self.stop - self.start:
            raise ScheduleError("phase schedule length mismatch")

    def task_system(self, system: TaskSystem) -> TaskSystem:
        """Task system with phase-specific local-hyper costs.

        The paper's example cost is ``init(h_j, f^loc_j) = |h_j| +
        |f^loc_j|``: a local hyperreconfiguration writes availability
        flags for the task's local switches *and* its currently
        assigned private-global switches.  Tasks with an explicit
        ``init_cost`` keep it.
        """
        from repro.core.switches import SwitchSet
        from repro.core.task import Task

        tasks = []
        for task, assign in zip(system.tasks, self.hypercontext.assignments):
            v = task.init_cost
            if v is None:
                v = task.size + assign.bit_count()
            tasks.append(Task(task.name, task.local, init_cost=float(v)))
        return TaskSystem(
            system.universe,
            tasks,
            private_global=SwitchSet(
                system.universe, system.private_global_mask
            )
            if system.private_global_mask
            else None,
            public_global=SwitchSet(system.universe, system.public_global_mask)
            if system.public_global_mask
            else None,
        )


class GlobalSchedule:
    """A full two-level schedule: global segmentation + local indicators."""

    def __init__(self, n: int, phases: Sequence[GlobalPhase]):
        phases = tuple(phases)
        if n > 0 and not phases:
            raise ScheduleError("non-empty instance needs at least one phase")
        expected = 0
        for phase in phases:
            if phase.start != expected:
                raise ScheduleError(
                    f"phase starting at {phase.start} leaves a gap/overlap "
                    f"(expected start {expected})"
                )
            expected = phase.stop
        if expected != n:
            raise ScheduleError("phases must exactly cover the n steps")
        self.n = n
        self.phases = phases

    @property
    def r_global(self) -> int:
        """Number of global hyperreconfigurations."""
        return len(self.phases)

    def validate(
        self,
        system: TaskSystem,
        seqs: Sequence[RequirementSequence],
    ) -> None:
        """Check assignments cover every private-global demand.

        ``seqs[j]`` is task ``j``'s full requirement sequence (local and
        private-global bits mixed); within each phase the private bits
        demanded by a task must lie inside its assignment.
        """
        if len(seqs) != system.m:
            raise ScheduleError("need one sequence per task")
        priv_pool = system.private_global_mask
        for phase in self.phases:
            phase.hypercontext.validate(system)
            for j, seq in enumerate(seqs):
                demand = seq.union_mask(phase.start, phase.stop) & priv_pool
                if demand & ~phase.hypercontext.assignments[j]:
                    raise ScheduleError(
                        f"task {j} demands private switches outside its "
                        f"assignment in phase [{phase.start},{phase.stop})"
                    )

    def cost(
        self,
        system: TaskSystem,
        seqs: Sequence[RequirementSequence],
        *,
        w: float,
        model: MachineModel | None = None,
    ) -> float:
        """Total cost: per phase ``w`` plus its synchronized sum.

        ``w`` is the (constant) global hyperreconfiguration cost,
        e.g. ``|X| + |X^priv|`` in the Section 4.1 special case.
        """
        self.validate(system, seqs)
        total = 0.0
        for phase in self.phases:
            segment = [seq[phase.start : phase.stop] for seq in seqs]
            total += sync_switch_cost(
                phase.task_system(system), segment, phase.schedule, model, w=w
            )
        return total
