"""Context-requirement sequences.

An algorithm/computation is characterized by a sequence
``C = c_1 … c_n`` of context requirements (Section 2): ``c_i`` names
the reconfigurable features that reconfiguration step ``i`` must be
able to write.  In the switch model each ``c_i`` is a subset of the
switch universe; :class:`RequirementSequence` stores such a sequence as
raw int masks plus the universe, and provides the window/union
operations every solver needs (prefix unions, window unions, restriction
to a task's local switches).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.switches import SwitchSet, SwitchUniverse
from repro.util.bitset import bit_count

__all__ = ["RequirementSequence"]


class RequirementSequence:
    """A sequence of switch-model context requirements.

    Steps are indexed ``0 … n-1`` internally (the paper uses ``1 … n``).

    Parameters
    ----------
    universe:
        The switch universe the requirements live in.
    masks:
        One int bitmask per reconfiguration step.
    """

    __slots__ = ("_universe", "_masks")

    def __init__(self, universe: SwitchUniverse, masks: Iterable[int]):
        masks = tuple(masks)
        full = universe.full_mask
        for i, m in enumerate(masks):
            if m < 0 or m > full:
                raise ValueError(f"requirement {i} out of universe range: {m:#x}")
        self._universe = universe
        self._masks = masks

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_sets(cls, sets: Sequence[SwitchSet]) -> "RequirementSequence":
        if not sets:
            raise ValueError("cannot infer universe from an empty sequence; "
                             "use RequirementSequence(universe, [])")
        universe = sets[0].universe
        for s in sets:
            if s.universe != universe:
                raise ValueError("requirements belong to different universes")
        return cls(universe, (s.mask for s in sets))

    @classmethod
    def from_names(
        cls, universe: SwitchUniverse, steps: Sequence[Iterable[str]]
    ) -> "RequirementSequence":
        return cls(universe, (universe.set(names).mask for names in steps))

    # -- basic access ---------------------------------------------------------

    @property
    def universe(self) -> SwitchUniverse:
        return self._universe

    @property
    def masks(self) -> tuple[int, ...]:
        """Raw masks (the solver-facing representation)."""
        return self._masks

    def __len__(self) -> int:
        return len(self._masks)

    def __iter__(self) -> Iterator[SwitchSet]:
        for m in self._masks:
            yield SwitchSet(self._universe, m)

    def __getitem__(self, i: int | slice):
        if isinstance(i, slice):
            return RequirementSequence(self._universe, self._masks[i])
        return SwitchSet(self._universe, self._masks[i])

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RequirementSequence)
            and self._universe == other._universe
            and self._masks == other._masks
        )

    def __hash__(self) -> int:
        return hash((self._universe, self._masks))

    def __repr__(self) -> str:
        return f"RequirementSequence(n={len(self)}, universe={self._universe!r})"

    # -- unions and window queries --------------------------------------------

    def union_mask(self, start: int = 0, stop: int | None = None) -> int:
        """Union of requirements in the half-open window ``[start, stop)``.

        This is the minimal hypercontext able to serve every
        reconfiguration in the window.
        """
        stop = len(self._masks) if stop is None else stop
        if not 0 <= start <= stop <= len(self._masks):
            raise IndexError(f"invalid window [{start}, {stop})")
        u = 0
        for m in self._masks[start:stop]:
            u |= m
        return u

    def union(self, start: int = 0, stop: int | None = None) -> SwitchSet:
        return SwitchSet(self._universe, self.union_mask(start, stop))

    def window_union_sizes(self) -> list[list[int]]:
        """``sizes[i][j] = |c_i ∪ … ∪ c_{i+j}|`` triangular table.

        Materializing the table costs O(n²) time/space and is used by
        exhaustive solvers and tests; the DP solvers compute unions
        incrementally instead.
        """
        n = len(self._masks)
        out: list[list[int]] = []
        for i in range(n):
            row: list[int] = []
            u = 0
            for j in range(i, n):
                u |= self._masks[j]
                row.append(bit_count(u))
            out.append(row)
        return out

    def restrict(self, scope_mask: int) -> "RequirementSequence":
        """Project every requirement onto ``scope_mask``.

        Used to split a whole-machine trace into per-task requirement
        sequences: a task only ever sees the bits of its own resources.
        """
        return RequirementSequence(
            self._universe, (m & scope_mask for m in self._masks)
        )

    def total_demand(self) -> int:
        """``Σ_i |c_i|`` — a lower bound on any reconfiguration cost."""
        return sum(bit_count(m) for m in self._masks)

    def is_empty_everywhere(self) -> bool:
        return all(m == 0 for m in self._masks)
