"""Machine classes, synchronization modes and upload modes.

Section 3 classifies partially hyperreconfigurable machines along three
axes, all of which change which schedules are legal and how their cost
is counted (Section 4):

* **machine class** — which operations a *subset* of tasks may perform
  without interrupting the others;
* **synchronization mode** — which operation types are barrier-
  synchronized between the tasks;
* **upload mode** — whether reconfiguration bits for different tasks
  are uploaded task-parallel or task-sequentially.

:class:`MachineModel` bundles one choice per axis and enforces the
paper's consistency rules (e.g. non-synchronized operations are always
task-parallel; public global resources require context
synchronization).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MachineClass", "SyncMode", "UploadMode", "MachineModel"]


class MachineClass(enum.Enum):
    """Degree of partial (hyper)reconfigurability (Section 3).

    * ``PARTIALLY_RECONFIGURABLE`` — subsets of tasks may reconfigure
      independently, but hyperreconfigurations involve *all* tasks.
    * ``PARTIALLY_HYPERRECONFIGURABLE`` — subsets of tasks may both
      locally hyperreconfigure and reconfigure independently.
    * ``RESTRICTED_PARTIALLY_HYPERRECONFIGURABLE`` — subsets of tasks
      may locally hyperreconfigure independently, but reconfigurations
      involve all tasks.
    """

    PARTIALLY_RECONFIGURABLE = "partially_reconfigurable"
    PARTIALLY_HYPERRECONFIGURABLE = "partially_hyperreconfigurable"
    RESTRICTED_PARTIALLY_HYPERRECONFIGURABLE = (
        "restricted_partially_hyperreconfigurable"
    )

    @property
    def allows_partial_hyper(self) -> bool:
        """May a strict subset of tasks perform a local hyperreconfiguration?"""
        return self is not MachineClass.PARTIALLY_RECONFIGURABLE

    @property
    def allows_partial_reconfig(self) -> bool:
        """May a strict subset of tasks perform an ordinary reconfiguration?"""
        return (
            self is not MachineClass.RESTRICTED_PARTIALLY_HYPERRECONFIGURABLE
        )


class SyncMode(enum.Enum):
    """Barrier-synchronization mode between tasks (Section 3)."""

    NON_SYNCHRONIZED = "non_synchronized"
    HYPERCONTEXT_SYNCHRONIZED = "hypercontext_synchronized"
    CONTEXT_SYNCHRONIZED = "context_synchronized"
    FULLY_SYNCHRONIZED = "fully_synchronized"

    @property
    def hypercontext_synced(self) -> bool:
        return self in (
            SyncMode.HYPERCONTEXT_SYNCHRONIZED,
            SyncMode.FULLY_SYNCHRONIZED,
        )

    @property
    def context_synced(self) -> bool:
        return self in (
            SyncMode.CONTEXT_SYNCHRONIZED,
            SyncMode.FULLY_SYNCHRONIZED,
        )


class UploadMode(enum.Enum):
    """How per-task reconfiguration bits reach the machine (Section 4)."""

    TASK_PARALLEL = "task_parallel"
    TASK_SEQUENTIAL = "task_sequential"


@dataclass(frozen=True)
class MachineModel:
    """One point in the machine-design space of Sections 3–4.

    Attributes
    ----------
    machine_class:
        Degree of partial (hyper)reconfigurability.
    sync_mode:
        Barrier synchronization between tasks.
    hyper_upload:
        Upload mode of partial-hyperreconfiguration bits.
    reconfig_upload:
        Upload mode of ordinary-reconfiguration bits.
    allow_public_global:
        Whether the machine exposes public global resources.
    """

    machine_class: MachineClass = MachineClass.PARTIALLY_HYPERRECONFIGURABLE
    sync_mode: SyncMode = SyncMode.FULLY_SYNCHRONIZED
    hyper_upload: UploadMode = UploadMode.TASK_PARALLEL
    reconfig_upload: UploadMode = UploadMode.TASK_PARALLEL
    allow_public_global: bool = False

    def __post_init__(self):
        # Non-synchronized operations are always executed task-parallel
        # (Section 4): a sequential upload would itself be a barrier.
        if not self.sync_mode.hypercontext_synced:
            if self.hyper_upload is not UploadMode.TASK_PARALLEL:
                raise ValueError(
                    "non-hypercontext-synchronized machines must upload "
                    "hyperreconfiguration bits task-parallel"
                )
        if not self.sync_mode.context_synced:
            if self.reconfig_upload is not UploadMode.TASK_PARALLEL:
                raise ValueError(
                    "non-context-synchronized machines must upload "
                    "reconfiguration bits task-parallel"
                )
        # Public global resources exist only when reconfigurations are
        # synchronized, because writing them (potentially) influences
        # every task (Section 3, last paragraph).
        if self.allow_public_global and not self.sync_mode.context_synced:
            raise ValueError(
                "public global resources require a context-synchronized "
                "or fully synchronized machine"
            )

    @classmethod
    def paper_experimental(cls) -> "MachineModel":
        """The configuration used in Section 6: SHyRA runs fully
        synchronized with task-parallel partial hyperreconfigurations."""
        return cls(
            machine_class=MachineClass.PARTIALLY_HYPERRECONFIGURABLE,
            sync_mode=SyncMode.FULLY_SYNCHRONIZED,
            hyper_upload=UploadMode.TASK_PARALLEL,
            reconfig_upload=UploadMode.TASK_PARALLEL,
        )
