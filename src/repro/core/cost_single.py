"""Single-task cost models (Section 2).

Three models measure the total reconfiguration time of a computation
``h_1 S_1 … h_r S_r`` (hyperreconfigurations ``h_i`` followed by
reconfiguration sequences ``S_i``):

* **General model** — ``Σ_i (init(h_i) + cost(h_i)·|S_i|)`` with
  arbitrary user-supplied ``init``/``cost`` functions; finding optimal
  schedules is NP-hard (see :mod:`repro.solvers.general_bb`).
* **Switch model** — ``r·w + Σ_i |h_i|·|S_i|``; optimal schedules in
  polynomial time (:mod:`repro.solvers.single_dp`).
* **Changeover variant** — hyperreconfiguration ``i`` costs
  ``w + |h_i Δ h_{i-1}|`` (symmetric difference to the predecessor
  hypercontext): only the difference information is loaded.

The DAG model lives with its solver in :mod:`repro.solvers.dag_dp`
because its cost function is inseparable from node feasibility.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.context import RequirementSequence
from repro.core.schedule import SingleTaskSchedule
from repro.util.bitset import bit_count

__all__ = [
    "no_hyper_cost",
    "switch_cost",
    "switch_cost_changeover",
    "general_cost",
]


def no_hyper_cost(seq: RequirementSequence, available: int | None = None) -> float:
    """Cost with hyperreconfiguration disabled.

    Every reconfiguration step must (re)write the state of every
    available switch: ``n · |X|``.  This is the paper's baseline
    (110 · 48 = 5280 for the SHyRA counter).

    Parameters
    ----------
    available:
        Number of switches the machine exposes; defaults to the full
        universe size.
    """
    width = seq.universe.size if available is None else available
    if width < 0:
        raise ValueError("available switch count must be non-negative")
    return float(len(seq) * width)


def switch_cost(
    seq: RequirementSequence,
    schedule: SingleTaskSchedule,
    w: float,
    *,
    packed=None,
) -> float:
    """Switch-model cost ``r·w + Σ_i |h_i|·|S_i|``.

    ``w > 0`` is the constant hyperreconfiguration cost (the paper
    suggests ``w = |X|`` — every switch's availability flag must be
    written).  Hypercontexts are the schedule's (explicit or minimal
    union) block hypercontexts.

    ``packed`` optionally supplies a precompiled
    :class:`~repro.core.packed.PackedSequence` of ``seq``; the
    lane-packed fast path then computes the (bit-identical) cost for
    minimal-union schedules.  Explicit hypercontexts always take the
    scalar path, which validates their coverage.
    """
    if packed is not None and schedule.explicit_masks is None:
        return packed.switch_cost(schedule, w)
    if w <= 0:
        raise ValueError("hyperreconfiguration cost w must be positive")
    masks = schedule.hypercontext_masks(seq)
    total = schedule.r * w
    for mask, (start, stop) in zip(masks, schedule.blocks()):
        total += bit_count(mask) * (stop - start)
    return float(total)


def switch_cost_changeover(
    seq: RequirementSequence,
    schedule: SingleTaskSchedule,
    w: float,
    initial_mask: int = 0,
    *,
    packed=None,
) -> float:
    """Changeover variant: hyperreconfigurations pay ``w + |h Δ h'|``.

    ``initial_mask`` is the hypercontext the machine is in before the
    run (default: nothing available, so the first hyperreconfiguration
    pays for every switch it enables).

    With changeover costs a *larger-than-minimal* hypercontext can be
    optimal (keeping a switch enabled avoids paying Δ twice), which is
    why :class:`~repro.core.schedule.SingleTaskSchedule` supports
    explicit hypercontext masks.

    ``packed`` optionally supplies a precompiled
    :class:`~repro.core.packed.PackedSequence` fast path for
    minimal-union schedules (bit-identical; explicit hypercontexts take
    the scalar path).
    """
    if packed is not None and schedule.explicit_masks is None:
        return packed.changeover_cost(schedule, w, initial_mask)
    if w < 0:
        raise ValueError("fixed hyperreconfiguration cost w must be non-negative")
    masks = schedule.hypercontext_masks(seq)
    total = 0.0
    prev = initial_mask
    for mask, (start, stop) in zip(masks, schedule.blocks()):
        total += w + bit_count(mask ^ prev)
        total += bit_count(mask) * (stop - start)
        prev = mask
    return float(total)


def general_cost(
    blocks: Sequence[tuple[object, int]],
    init: Callable[[object], float],
    cost: Callable[[object], float],
) -> float:
    """General-model cost for an explicit run ``h_1 S_1 … h_r S_r``.

    Parameters
    ----------
    blocks:
        Pairs ``(hypercontext, |S_i|)`` in execution order; the
        hypercontext may be any object understood by ``init``/``cost``.
    init, cost:
        The model's cost functions.

    Returns ``Σ_i (init(h_i) + cost(h_i)·|S_i|)``; feasibility (does
    ``h_i`` satisfy every requirement in ``S_i``) is the caller's or
    the solver's responsibility, since requirements are opaque here.
    """
    total = 0.0
    for h, length in blocks:
        if length < 0:
            raise ValueError("block length must be non-negative")
        total += init(h) + cost(h) * length
    return float(total)
