"""Switch universes and immutable switch sets.

In the switch cost model (Section 2) the machine consists of a set of
small reconfigurable units — *switches* — ``X = {x_1, …, x_n}``; both
context requirements and hypercontexts are subsets of ``X``.  The cost
of an ordinary reconfiguration under hypercontext ``h`` is ``|h|``: the
state of every *available* switch has to be (re)defined.

:class:`SwitchUniverse` names the switches and fixes their bit
positions; :class:`SwitchSet` is an immutable subset backed by an int
bitmask.  Solver hot loops bypass the wrapper and work on raw masks —
the wrapper exists for the public API, where named switches make
configuration bits of a concrete architecture (e.g. SHyRA) legible.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.util.bitset import bit_count, bit_indices, mask_of

__all__ = ["SwitchUniverse", "SwitchSet"]


class SwitchUniverse:
    """A finite, named set of reconfigurable units with fixed bit order.

    Parameters
    ----------
    names:
        Unique switch names; the i-th name is assigned bit position i.

    Examples
    --------
    >>> u = SwitchUniverse(["s0", "s1", "s2"])
    >>> u.size
    3
    >>> u.set(["s0", "s2"]).mask
    5
    """

    __slots__ = ("_names", "_index")

    def __init__(self, names: Sequence[str]):
        names = list(names)
        if not names:
            raise ValueError("a switch universe must contain at least one switch")
        index: dict[str, int] = {}
        for i, name in enumerate(names):
            if not isinstance(name, str) or not name:
                raise ValueError(f"switch name must be a non-empty string: {name!r}")
            if name in index:
                raise ValueError(f"duplicate switch name: {name!r}")
            index[name] = i
        self._names = tuple(names)
        self._index = index

    @classmethod
    def of_size(cls, n: int, prefix: str = "x") -> "SwitchUniverse":
        """Anonymous universe ``{prefix}0 … {prefix}{n-1}`` (paper's X)."""
        if n <= 0:
            raise ValueError("universe size must be positive")
        return cls([f"{prefix}{i}" for i in range(n)])

    # -- introspection ----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of switches ``|X|``."""
        return len(self._names)

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def full_mask(self) -> int:
        """Mask with every switch set (the always-satisfying hypercontext)."""
        return (1 << self.size) - 1

    def index(self, name: str) -> int:
        """Bit position of a named switch; KeyError for unknown names."""
        return self._index[name]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SwitchUniverse) and self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        if self.size <= 6:
            return f"SwitchUniverse({list(self._names)!r})"
        return f"SwitchUniverse(<{self.size} switches>)"

    # -- set construction --------------------------------------------------

    def set(self, names: Iterable[str] = ()) -> "SwitchSet":
        """Switch set containing exactly the given named switches."""
        return SwitchSet(self, mask_of(self._index[n] for n in names))

    def from_mask(self, mask: int) -> "SwitchSet":
        """Wrap a raw bitmask; validates it fits the universe."""
        return SwitchSet(self, mask)

    def full_set(self) -> "SwitchSet":
        return SwitchSet(self, self.full_mask)

    def empty_set(self) -> "SwitchSet":
        return SwitchSet(self, 0)

    def names_from_mask(self, mask: int) -> tuple[str, ...]:
        return tuple(self._names[i] for i in bit_indices(mask))


class SwitchSet:
    """Immutable subset of a :class:`SwitchUniverse`.

    Supports the usual set algebra through operators (``| & - ^ <=``)
    and integrates with the cost models through :attr:`mask` and
    ``len()`` (= the switch-model reconfiguration cost ``|h|``).
    """

    __slots__ = ("_universe", "_mask")

    def __init__(self, universe: SwitchUniverse, mask: int):
        if mask < 0 or mask > universe.full_mask:
            raise ValueError(
                f"mask {mask:#x} out of range for universe of size {universe.size}"
            )
        self._universe = universe
        self._mask = mask

    # -- accessors ---------------------------------------------------------

    @property
    def universe(self) -> SwitchUniverse:
        return self._universe

    @property
    def mask(self) -> int:
        """Raw int bitmask (the hot-path representation)."""
        return self._mask

    def __len__(self) -> int:
        return bit_count(self._mask)

    def __iter__(self) -> Iterator[str]:
        return iter(self._universe.names_from_mask(self._mask))

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str) or name not in self._universe:
            return False
        return bool(self._mask >> self._universe.index(name) & 1)

    def __bool__(self) -> bool:
        return self._mask != 0

    # -- algebra -----------------------------------------------------------

    def _check(self, other: "SwitchSet") -> None:
        if self._universe != other._universe:
            raise ValueError("switch sets belong to different universes")

    def __or__(self, other: "SwitchSet") -> "SwitchSet":
        self._check(other)
        return SwitchSet(self._universe, self._mask | other._mask)

    def __and__(self, other: "SwitchSet") -> "SwitchSet":
        self._check(other)
        return SwitchSet(self._universe, self._mask & other._mask)

    def __sub__(self, other: "SwitchSet") -> "SwitchSet":
        self._check(other)
        return SwitchSet(self._universe, self._mask & ~other._mask)

    def __xor__(self, other: "SwitchSet") -> "SwitchSet":
        self._check(other)
        return SwitchSet(self._universe, self._mask ^ other._mask)

    def issubset(self, other: "SwitchSet") -> bool:
        self._check(other)
        return self._mask & ~other._mask == 0

    def __le__(self, other: "SwitchSet") -> bool:
        return self.issubset(other)

    def __lt__(self, other: "SwitchSet") -> bool:
        return self.issubset(other) and self._mask != other._mask

    def satisfies(self, requirement: "SwitchSet") -> bool:
        """Hypercontext-satisfaction: ``requirement ⊆ self`` (paper: x ⊂ h)."""
        return requirement.issubset(self)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SwitchSet)
            and self._universe == other._universe
            and self._mask == other._mask
        )

    def __hash__(self) -> int:
        return hash((self._universe, self._mask))

    def __repr__(self) -> str:
        inner = ", ".join(self) if len(self) <= 8 else f"<{len(self)} switches>"
        return f"SwitchSet({{{inner}}})"
