"""Dependency-free Prometheus text exposition and a tiny HTTP plane.

:func:`render_exposition` turns a payload of counters, gauges and
histogram-family wire snapshots into Prometheus text format 0.0.4 —
counters as ``<ns>_<name>``, histograms as the conventional
``_bucket{le=...}`` / ``_sum`` / ``_count`` triple with cumulative
bucket counts (only buckets where the cumulative count changes are
emitted, plus ``+Inf``; the fixed log-bucket geometry makes the full
~100-bucket vector pure noise on the wire).

:func:`parse_exposition` is the matching minimal parser — enough for
``repro serve-stats --check`` and the CI scrape to assert the core
series exist without installing a Prometheus client.

:class:`MetricsHTTPServer` serves ``GET /metrics`` (text),
``GET /metrics.json`` (full JSON snapshot) and ``GET /healthz`` from a
daemon thread using only :mod:`http.server` — the live telemetry plane
behind ``repro serve --metrics-port``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from repro.obs.histogram import BucketScheme

__all__ = [
    "CONTENT_TYPE",
    "MetricsHTTPServer",
    "parse_exposition",
    "render_exposition",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _num(value: float) -> str:
    f = float(value)
    return repr(int(f)) if f == int(f) else repr(f)


def render_exposition(
    *,
    counters: Mapping[str, float] | None = None,
    gauges: Mapping[str, object] | None = None,
    histograms: Mapping[str, Mapping] | None = None,
    namespace: str = "repro",
) -> str:
    """Render Prometheus text; see module docstring.

    ``counters``/``gauges`` map metric name (without namespace) to a
    number, or — for labeled series — to a list of
    ``(labels_dict, number)`` pairs.  ``histograms`` maps family name
    to a :meth:`HistogramFamily.to_wire` snapshot.
    """
    lines: list[str] = []

    def emit(name, kind, entries, help_text=""):
        full = f"{namespace}_{name}"
        if help_text:
            lines.append(f"# HELP {full} {_escape(help_text)}")
        lines.append(f"# TYPE {full} {kind}")
        for labels, value in entries:
            lines.append(f"{full}{_labels_text(labels)} {_num(value)}")

    def entries_of(value):
        if isinstance(value, (int, float)):
            return [({}, value)]
        return [(dict(lbl), v) for lbl, v in value]

    for name, value in (counters or {}).items():
        emit(name, "counter", entries_of(value))
    for name, value in (gauges or {}).items():
        emit(name, "gauge", entries_of(value))

    for name, wire in (histograms or {}).items():
        full = f"{namespace}_{name}"
        help_text = wire.get("help", "")
        if help_text:
            lines.append(f"# HELP {full} {_escape(help_text)}")
        lines.append(f"# TYPE {full} histogram")
        bounds = BucketScheme.by_name(wire["scheme"])._bounds_list
        series = wire["series"] or [
            # A family with no series yet still exposes one empty
            # unlabeled histogram, so every family is visible (and
            # checkable) from the very first scrape.
            {"labels": {}, "hist": {"buckets": [], "count": 0, "total": 0.0}}
        ]
        for entry in series:
            labels = dict(entry["labels"])
            hist = entry["hist"]
            cum = 0
            for i, c in sorted(hist["buckets"]):
                if i >= len(bounds):
                    break  # overflow bucket: covered by +Inf below
                cum += c
                lines.append(
                    f"{full}_bucket"
                    f"{_labels_text({**labels, 'le': _num(bounds[i])})} {cum}"
                )
            lines.append(
                f"{full}_bucket"
                f"{_labels_text({**labels, 'le': '+Inf'})} {hist['count']}"
            )
            lines.append(
                f"{full}_sum{_labels_text(labels)} {_num(hist['total'])}"
            )
            lines.append(
                f"{full}_count{_labels_text(labels)} {hist['count']}"
            )
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse Prometheus text into ``{name: [(labels, value), ...]}``.

    Minimal by design: handles the subset :func:`render_exposition`
    emits (no timestamps, no exemplars).  Raises ``ValueError`` on a
    malformed sample line so ``--check`` fails loudly.
    """
    out: dict[str, list[tuple[dict, float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            body, _, value_part = rest.rpartition("}")
            labels: dict[str, str] = {}
            for item in _split_labels(body):
                if not item:
                    continue
                k, _, v = item.partition("=")
                if not (len(v) >= 2 and v[0] == '"' and v[-1] == '"'):
                    raise ValueError(f"bad label in line: {raw!r}")
                labels[k.strip()] = (
                    v[1:-1]
                    .replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
        else:
            name, _, value_part = line.partition(" ")
            labels = {}
        name = name.strip()
        value_text = value_part.strip()
        if not name or not value_text:
            raise ValueError(f"bad sample line: {raw!r}")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        out.setdefault(name, []).append((labels, value))
    return out


def _split_labels(body: str) -> list[str]:
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    parts, buf, in_quotes, escaped = [], [], False, False
    for ch in body:
        if escaped:
            buf.append(ch)
            escaped = False
        elif ch == "\\":
            buf.append(ch)
            escaped = True
        elif ch == '"':
            buf.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(buf).strip())
            buf = []
        else:
            buf.append(ch)
    if buf:
        parts.append("".join(buf).strip())
    return parts


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"

    def do_GET(self):  # noqa: N802 - http.server API
        try:
            if self.path in ("/metrics", "/"):
                body = self.server.text_fn().encode()
                ctype = CONTENT_TYPE
            elif self.path == "/metrics.json":
                body = json.dumps(self.server.json_fn()).encode()
                ctype = "application/json"
            elif self.path == "/healthz":
                body, ctype = b"ok\n", "text/plain"
            else:
                self.send_error(404, "unknown path")
                return
        except Exception as exc:  # noqa: BLE001 - report, don't die
            self.send_error(500, str(exc))
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # silence per-request stderr lines
        pass


class MetricsHTTPServer:
    """``GET /metrics`` on a daemon thread; stdlib only."""

    def __init__(
        self,
        text_fn: Callable[[], str],
        json_fn: Callable[[], dict],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.text_fn = text_fn
        self._http.json_fn = json_fn
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self.address: tuple[str, int] = self._http.server_address[:2]

    def start(self) -> tuple[str, int]:
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
