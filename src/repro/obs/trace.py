"""Lock-cheap ring-buffer tracing of structured span events.

A :class:`TraceRecorder` keeps the last N spans (open/feed/drain/
solve/close) in a bounded ``deque`` — appends are GIL-atomic, so the
hot path pays one monotonic-clock read and one append, no lock.  Each
span carries its monotonic start, duration, and a **queue-wait vs
service** split so a tail-latency outlier can be blamed on the shard
queue or on the engine after the fact.

Spans slower than ``slow_threshold`` seconds are additionally copied
to a separate slow ring (they survive long after the main ring has
wrapped) — the always-on slow-request log.  A recorder built with
``capacity=0`` disables everything at the cost of one attribute check.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["NULL_TRACER", "SpanEvent", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class SpanEvent:
    """One completed span. ``start`` is ``time.monotonic()`` at span
    begin; ``queue_wait`` is the part of ``duration`` spent queued
    before service began (0.0 where the split doesn't apply)."""

    kind: str
    start: float
    duration: float
    queue_wait: float = 0.0
    trace: str | None = None
    session: str | None = None
    shard: int | None = None
    detail: tuple = field(default=())

    @property
    def service(self) -> float:
        return max(0.0, self.duration - self.queue_wait)

    def to_dict(self) -> dict:
        out = {
            "kind": self.kind,
            "start_mono_s": self.start,
            "duration_s": self.duration,
            "queue_wait_s": self.queue_wait,
            "service_s": self.service,
        }
        if self.trace is not None:
            out["trace"] = self.trace
        if self.session is not None:
            out["session"] = self.session
        if self.shard is not None:
            out["shard"] = self.shard
        out.update(self.detail)
        return out


class TraceRecorder:
    """Bounded span ring + slow-span ring; see module docstring."""

    def __init__(
        self,
        capacity: int = 2048,
        *,
        slow_threshold: float | None = None,
        slow_capacity: int = 256,
    ):
        if capacity < 0 or slow_capacity < 0:
            raise ValueError("capacities must be >= 0")
        self.capacity = int(capacity)
        self.slow_threshold = (
            float(slow_threshold) if slow_threshold is not None else None
        )
        self._ring: deque[SpanEvent] = deque(maxlen=max(1, self.capacity))
        self._slow: deque[SpanEvent] = deque(maxlen=max(1, slow_capacity))
        self._lock = threading.Lock()
        self.recorded = 0
        self.slow_count = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(
        self,
        kind: str,
        *,
        duration: float = 0.0,
        queue_wait: float = 0.0,
        trace: str | None = None,
        session: str | None = None,
        shard: int | None = None,
        start: float | None = None,
        **detail,
    ) -> SpanEvent | None:
        """Append one completed span; returns it (or ``None`` when the
        recorder is disabled, or when only the slow ring matters and
        the span wasn't slow — callers never need the return value on
        the hot path)."""
        if not self.capacity:
            return None
        if start is None:
            start = time.monotonic() - duration
        event = SpanEvent(
            kind=kind,
            start=start,
            duration=duration,
            queue_wait=queue_wait,
            trace=trace,
            session=session,
            shard=shard,
            detail=tuple(detail.items()),
        )
        self._ring.append(event)  # GIL-atomic
        slow = (
            self.slow_threshold is not None
            and duration >= self.slow_threshold
        )
        if slow:
            self._slow.append(event)
        with self._lock:
            self.recorded += 1
            if slow:
                self.slow_count += 1
        return event

    @contextmanager
    def span(self, kind: str, **kw):
        """``with tracer.span("solve", solver=name): ...`` — times the
        body and records it, even when the body raises."""
        t0 = time.perf_counter()
        start = time.monotonic()
        try:
            yield
        finally:
            self.record(
                kind,
                duration=time.perf_counter() - t0,
                start=start,
                **kw,
            )

    def events(
        self, kind: str | None = None, limit: int | None = None
    ) -> list[SpanEvent]:
        got = list(self._ring) if self.capacity else []
        if kind is not None:
            got = [e for e in got if e.kind == kind]
        return got[-limit:] if limit else got

    def slow_events(self, limit: int | None = None) -> list[SpanEvent]:
        got = list(self._slow) if self.capacity else []
        return got[-limit:] if limit else got

    def snapshot(self) -> dict:
        with self._lock:
            recorded, slow = self.recorded, self.slow_count
        return {
            "capacity": self.capacity,
            "recorded": recorded,
            "buffered": len(self._ring) if self.capacity else 0,
            "dropped": max(0, recorded - self.capacity),
            "slow": slow,
            "slow_threshold_s": self.slow_threshold,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceRecorder(capacity={self.capacity}, "
            f"recorded={self.recorded}, slow={self.slow_count})"
        )


#: Shared disabled recorder: every ``record`` is one attribute check.
NULL_TRACER = TraceRecorder(0)
