"""Observability: histogram metrics, span tracing, live exposition.

The serving stack (engine → stream → serve) is instrumented with three
building blocks, all dependency-free and cheap enough to leave on:

* :mod:`repro.obs.histogram` — log-bucketed, fixed-boundary
  **mergeable histograms** (HDR-style): every observation lands in a
  deterministic bucket, so snapshots from thread shards and process
  shards merge into exactly the histogram a single hub would have
  recorded.  :class:`HistogramFamily` adds label dimensions
  (``solver=``, ``shard=``) on top;
* :mod:`repro.obs.trace` — a lock-cheap ring-buffer
  :class:`TraceRecorder` of structured span events
  (open/feed/drain/solve/close) with a queue-wait vs service split and
  an always-on slow-span log;
* :mod:`repro.obs.expo` — a Prometheus text exposition renderer and
  parser plus a stdlib-only HTTP server for ``GET /metrics``
  (``repro serve --metrics-port``).

:class:`~repro.engine.metrics.EngineMetrics` owns the well-known
histogram families; :class:`~repro.serve.shard.ShardPool` merges the
per-shard snapshots (process shards ship them over their pipes); the
:class:`~repro.serve.server.StreamServer` exposes everything through
the ``stats``/``metrics`` frames and the ``/metrics`` endpoint.
"""

from repro.obs.expo import (
    MetricsHTTPServer,
    parse_exposition,
    render_exposition,
)
from repro.obs.histogram import (
    TIME_SCHEME,
    VALUE_SCHEME,
    BucketScheme,
    Histogram,
    HistogramFamily,
)
from repro.obs.trace import SpanEvent, TraceRecorder

__all__ = [
    "BucketScheme",
    "Histogram",
    "HistogramFamily",
    "MetricsHTTPServer",
    "SpanEvent",
    "TIME_SCHEME",
    "TraceRecorder",
    "VALUE_SCHEME",
    "parse_exposition",
    "render_exposition",
]
