"""Log-bucketed, fixed-boundary, mergeable histograms (HDR-style).

Every histogram built from the same :class:`BucketScheme` has the same
geometric bucket boundaries, so merging is pure per-bucket addition:
the order observations arrived in, and which shard (thread or process)
recorded them, cannot change the merged distribution.  That is the
property the serving stack leans on — a :class:`ShardPool` of any
shape aggregates its workers' snapshots into exactly the histogram a
single :class:`StreamHub` would have recorded for the same traffic.

Two schemes cover the stack:

* ``TIME_SCHEME`` — seconds, 1 µs … ~134 s at ~19% bucket resolution
  (factor 2**0.25), for latencies and cycle durations;
* ``VALUE_SCHEME`` — dimensionless, 1 … ~2**44 at ~41% resolution
  (factor 2**0.5), for step counts and costs.

Snapshots travel as JSON-safe sparse dicts (:meth:`Histogram.to_wire`)
— the same form rides the process-shard pipes, the ``metrics`` wire
frame, and the Prometheus exposition.  ``total`` is a float sum and
therefore order-dependent; distribution equality (:meth:`Histogram.key`
/ ``==``) deliberately excludes it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "TIME_SCHEME",
    "VALUE_SCHEME",
    "BucketScheme",
    "Histogram",
    "HistogramFamily",
]


class BucketScheme:
    """A named, immutable set of ascending bucket upper bounds.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]``; one overflow
    bucket catches everything above the last bound.  Schemes are
    registered by name so wire snapshots can name their geometry
    instead of shipping ~100 floats per histogram.
    """

    __slots__ = ("name", "bounds", "_bounds_list")

    _registry: dict[str, "BucketScheme"] = {}

    def __init__(self, name: str, bounds: Iterable[float]):
        self.name = name
        arr = np.asarray(tuple(bounds), dtype=np.float64)
        if arr.ndim != 1 or len(arr) < 1 or np.any(np.diff(arr) <= 0):
            raise ValueError("bounds must be strictly ascending")
        arr.setflags(write=False)
        self.bounds = arr
        self._bounds_list = arr.tolist()  # bisect is faster on a list
        if name in BucketScheme._registry:
            raise ValueError(f"duplicate scheme name: {name!r}")
        BucketScheme._registry[name] = self

    @classmethod
    def geometric(
        cls, name: str, *, start: float, factor: float, buckets: int
    ) -> "BucketScheme":
        return cls(name, (start * factor**i for i in range(buckets)))

    @classmethod
    def by_name(cls, name: str) -> "BucketScheme":
        try:
            return cls._registry[name]
        except KeyError:
            raise ValueError(f"unknown bucket scheme: {name!r}") from None

    def __len__(self) -> int:
        return len(self._bounds_list) + 1  # + overflow

    def index(self, value: float) -> int:
        return bisect_left(self._bounds_list, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lo, hi = self._bounds_list[0], self._bounds_list[-1]
        return f"BucketScheme({self.name!r}, {lo:g}..{hi:g})"


#: Seconds: 1 µs .. ~134 s, ~19% relative resolution.
TIME_SCHEME = BucketScheme.geometric(
    "time", start=1e-6, factor=2**0.25, buckets=108
)
#: Dimensionless magnitudes (steps, costs): 1 .. ~2**44.
VALUE_SCHEME = BucketScheme.geometric(
    "value", start=1.0, factor=2**0.5, buckets=88
)


class Histogram:
    """One mergeable distribution over a :class:`BucketScheme`.

    Bucket counts are exact integers; ``count``/``min``/``max`` are
    exact too, so they merge without loss.  ``total`` (and hence
    ``mean``) is a float sum — useful, but excluded from equality.
    Quantiles come from the cumulative bucket counts, clamped into
    ``[min, max]`` so tiny samples don't report a bucket bound no
    observation ever reached.
    """

    __slots__ = ("scheme", "counts", "count", "total", "_min", "_max")

    def __init__(self, scheme: BucketScheme | str = TIME_SCHEME):
        if isinstance(scheme, str):
            scheme = BucketScheme.by_name(scheme)
        self.scheme = scheme
        self.counts: list[int] = [0] * len(scheme)
        self.count = 0
        self.total = 0.0
        self._min = 0.0
        self._max = 0.0

    # -- recording ----------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[self.scheme.index(value)] += 1
        if not self.count or value < self._min:
            self._min = value
        if not self.count or value > self._max:
            self._max = value
        self.count += 1
        self.total += value

    def observe_many(self, values) -> None:
        arr = np.asarray(values, dtype=np.float64).ravel()
        if not arr.size:
            return
        idx = np.searchsorted(self.scheme.bounds, arr, side="left")
        for i, c in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(i)] += int(c)
        lo, hi = float(arr.min()), float(arr.max())
        if not self.count or lo < self._min:
            self._min = lo
        if not self.count or hi > self._max:
            self._max = hi
        self.count += int(arr.size)
        self.total += float(arr.sum())

    # -- reading ------------------------------------------------------

    @property
    def min(self) -> float:
        """Smallest observation; canonically ``0.0`` when empty."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile
        observation, clamped into ``[min, max]``; 0.0 when empty."""
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        target = max(1, -(-self.count * q // 1))  # ceil without math
        cum = 0
        bounds = self.scheme._bounds_list
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                est = bounds[i] if i < len(bounds) else self._max
                return min(max(est, self._min), self._max)
        return self._max  # pragma: no cover - cum always reaches count

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    # -- merging / transport ------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        if other.scheme.name != self.scheme.name:
            raise ValueError(
                f"cannot merge scheme {other.scheme.name!r} "
                f"into {self.scheme.name!r}"
            )
        if not other.count:
            return self
        for i, c in enumerate(other.counts):
            if c:
                self.counts[i] += c
        if not self.count or other._min < self._min:
            self._min = other._min
        if not self.count or other._max > self._max:
            self._max = other._max
        self.count += other.count
        self.total += other.total
        return self

    def clone(self) -> "Histogram":
        out = Histogram(self.scheme)
        out.counts = list(self.counts)
        out.count = self.count
        out.total = self.total
        out._min = self._min
        out._max = self._max
        return out

    def to_wire(self) -> dict:
        """JSON-safe sparse snapshot; ``from_wire`` round-trips it."""
        return {
            "scheme": self.scheme.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [
                [i, c] for i, c in enumerate(self.counts) if c
            ],
        }

    @classmethod
    def from_wire(cls, wire: Mapping) -> "Histogram":
        out = cls(BucketScheme.by_name(wire["scheme"]))
        for i, c in wire["buckets"]:
            out.counts[int(i)] = int(c)
        out.count = int(wire["count"])
        out.total = float(wire["total"])
        if out.count:
            out._min = float(wire["min"])
            out._max = float(wire["max"])
        return out

    @classmethod
    def from_wire_aggregate(
        cls, wire: Mapping | None, scheme: BucketScheme | str = TIME_SCHEME
    ) -> "Histogram":
        """All series of a :meth:`HistogramFamily.to_wire` snapshot
        merged into one histogram (empty on ``None`` — the convenient
        shape for consumers reading a ``metrics`` reply)."""
        if wire is None:
            return cls(scheme)
        out = cls(BucketScheme.by_name(wire["scheme"]))
        for entry in wire["series"]:
            out.merge(cls.from_wire(entry["hist"]))
        return out

    def key(self):
        """Distribution identity: everything exact and order-free.

        ``total`` is a float accumulation whose value depends on
        observation order, so it is deliberately excluded — two
        histograms with equal keys saw the same multiset of buckets.
        """
        return (
            self.scheme.name,
            self.count,
            self.min,
            self.max,
            tuple((i, c) for i, c in enumerate(self.counts) if c),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.key() == other.key()

    __hash__ = None  # mutable

    def snapshot(self) -> dict:
        """Summary stats (no buckets) for human-facing reports."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Histogram({self.scheme.name}, n={self.count}, "
            f"p50={self.p50:g}, p99={self.p99:g})"
        )


def _label_key(labels: Mapping[str, str]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class HistogramFamily:
    """A named set of histograms distinguished by label values.

    ``observe(v, solver="window")`` routes to the series for that
    label set, creating it on first use.  Series creation and snapshot
    iteration take a small internal lock so a scrape thread can walk
    the family while drainer threads append; single observes into an
    existing series are GIL-atomic list increments and stay unlocked.
    (Consistency *across* fields is the caller's job —
    :class:`EngineMetrics` serializes its observes under its own lock.)
    """

    __slots__ = ("name", "scheme", "help", "_series", "_lock")

    def __init__(
        self, name: str, scheme: BucketScheme | str, *, help: str = ""
    ):
        if isinstance(scheme, str):
            scheme = BucketScheme.by_name(scheme)
        self.name = name
        self.scheme = scheme
        self.help = help
        self._series: dict[tuple, tuple[dict, Histogram]] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str) -> Histogram:
        key = _label_key(labels)
        got = self._series.get(key)
        if got is None:
            with self._lock:
                got = self._series.setdefault(
                    key,
                    ({k: str(v) for k, v in labels.items()},
                     Histogram(self.scheme)),
                )
        return got[1]

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)

    def series(self) -> list[tuple[dict, Histogram]]:
        with self._lock:
            return [(dict(lbl), h) for lbl, h in self._series.values()]

    def aggregate(self) -> Histogram:
        """All series merged — the label-free view of the family."""
        out = Histogram(self.scheme)
        for _labels, hist in self.series():
            out.merge(hist)
        return out

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> dict:
        agg = Histogram(self.scheme)
        series = []
        for labels, hist in self.series():
            agg.merge(hist)
            series.append({"labels": labels, **hist.snapshot()})
        return {
            "scheme": self.scheme.name,
            **agg.snapshot(),
            "series": series,
        }

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "scheme": self.scheme.name,
            "help": self.help,
            "series": [
                {"labels": labels, "hist": hist.to_wire()}
                for labels, hist in self.series()
            ],
        }

    @classmethod
    def from_wire(cls, wire: Mapping) -> "HistogramFamily":
        fam = cls(wire["name"], wire["scheme"], help=wire.get("help", ""))
        fam.merge_wire(wire)
        return fam

    def merge_wire(
        self, wire: Mapping, *, extra_labels: Mapping[str, str] | None = None
    ) -> "HistogramFamily":
        """Fold a :meth:`to_wire` snapshot in, optionally tagging every
        incoming series with extra labels (``shard="2"``) — how the
        pool turns per-worker snapshots into one labeled family."""
        for entry in wire["series"]:
            labels = dict(entry["labels"])
            if extra_labels:
                labels.update(
                    {str(k): str(v) for k, v in extra_labels.items()}
                )
            self.labels(**labels).merge(Histogram.from_wire(entry["hist"]))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HistogramFamily({self.name!r}, series={len(self)})"
