"""Low-level utilities shared across the library.

The modules in this package are deliberately dependency-light: they
implement the bit-manipulation, random-number, DAG, and text-rendering
primitives that the model/solver layers are built on.
"""

from repro.util.bitset import (
    bit_indices,
    bit_count,
    mask_of,
    popcount_u64,
    random_mask,
    symmetric_difference_size,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.texttable import format_table

__all__ = [
    "bit_indices",
    "bit_count",
    "mask_of",
    "popcount_u64",
    "random_mask",
    "symmetric_difference_size",
    "make_rng",
    "spawn_rngs",
    "format_table",
]
