"""Small directed-acyclic-graph toolkit for the DAG cost model.

The DAG model (Section 2 of the paper) orders hypercontexts by
computational power: an edge ``(h1, h2)`` means ``h1(C) ⊂ h2(C)`` and
``cost(h1) ≤ cost(h2)``.  The solvers need topological orders,
reachability queries and minimal-element computations over such graphs;
this module provides them for plain ``dict`` adjacency without pulling
in networkx on the hot path (networkx is available and used in tests as
an oracle).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Mapping

__all__ = [
    "CycleError",
    "topological_order",
    "ancestors",
    "descendants",
    "reachable_set",
    "is_antichain",
    "minimal_elements",
    "transitive_reduction_edges",
]

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]


class CycleError(ValueError):
    """Raised when a graph required to be acyclic contains a cycle."""


def _normalize(adj: Adjacency) -> dict[Node, list[Node]]:
    """Materialize the adjacency mapping, adding sink nodes explicitly."""
    out: dict[Node, list[Node]] = {}
    for u, vs in adj.items():
        out.setdefault(u, [])
        for v in vs:
            out[u].append(v)
            out.setdefault(v, [])
    return out


def topological_order(adj: Adjacency) -> list[Node]:
    """Kahn's algorithm; raises :class:`CycleError` on cyclic input."""
    graph = _normalize(adj)
    indeg: dict[Node, int] = {u: 0 for u in graph}
    for u, vs in graph.items():
        for v in vs:
            indeg[v] += 1
    queue = deque(sorted((u for u, d in indeg.items() if d == 0), key=repr))
    order: list[Node] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if len(order) != len(graph):
        raise CycleError("graph contains a cycle")
    return order


def reachable_set(adj: Adjacency, sources: Iterable[Node]) -> set[Node]:
    """All nodes reachable from ``sources`` (including the sources)."""
    graph = _normalize(adj)
    seen: set[Node] = set()
    stack = [s for s in sources]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        stack.extend(graph.get(u, ()))
    return seen


def descendants(adj: Adjacency, node: Node) -> set[Node]:
    """Strict descendants of ``node``."""
    out = reachable_set(adj, [node])
    out.discard(node)
    return out


def ancestors(adj: Adjacency, node: Node) -> set[Node]:
    """Strict ancestors of ``node`` (nodes that can reach it)."""
    graph = _normalize(adj)
    reverse: dict[Node, list[Node]] = {u: [] for u in graph}
    for u, vs in graph.items():
        for v in vs:
            reverse[v].append(u)
    out = reachable_set(reverse, [node])
    out.discard(node)
    return out


def minimal_elements(adj: Adjacency, nodes: Iterable[Node]) -> set[Node]:
    """Subset of ``nodes`` not reachable from any other node in ``nodes``.

    This computes ``c(H)`` from the paper: the minimal hypercontexts
    (w.r.t. the precedence DAG) among those satisfying a requirement.
    """
    nodes = set(nodes)
    minimal = set(nodes)
    for u in nodes:
        if u not in minimal:
            continue
        # Everything strictly above u in the order cannot be minimal.
        minimal -= descendants(adj, u) & nodes
    return minimal


def is_antichain(adj: Adjacency, nodes: Iterable[Node]) -> bool:
    """True iff no node in ``nodes`` is reachable from another one."""
    nodes = set(nodes)
    for u in nodes:
        if descendants(adj, u) & nodes:
            return False
    return True


def transitive_reduction_edges(adj: Adjacency) -> set[tuple[Node, Node]]:
    """Edges of the transitive reduction of an acyclic graph.

    An edge ``(u, v)`` is redundant when ``v`` is reachable from ``u``
    through some longer path; the reduction keeps only covering edges.
    """
    graph = _normalize(adj)
    topological_order(graph)  # validates acyclicity
    keep: set[tuple[Node, Node]] = set()
    for u, vs in graph.items():
        targets = set(vs)
        for v in targets:
            via_others = any(
                v in reachable_set(graph, [w]) for w in targets if w != v
            )
            if not via_others:
                keep.add((u, v))
    return keep
