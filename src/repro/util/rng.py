"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (genetic algorithm, synthetic
workload generators, randomized tests) takes either an integer seed or
an already-constructed :class:`numpy.random.Generator`.  Centralizing
the coercion here keeps experiment scripts reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs", "spawn_seeds"]

SeedLike = int | np.random.Generator | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` gives OS entropy (only sensible interactively); an int gives
    a deterministic PCG64 stream; a Generator passes through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[int]:
    """Derive ``n`` independent child *seeds* from one seed.

    The picklable form of :func:`spawn_rngs`: plain ints travel to
    multiprocessing workers, where each worker rebuilds its generator
    with :func:`make_rng`.  ``spawn_rngs(seed, n)[k]`` and
    ``make_rng(spawn_seeds(seed, n)[k])`` produce identical streams.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    root = make_rng(seed)
    return [int(s) for s in root.integers(0, 2**63 - 1, size=n)]


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used when an experiment fans out into sub-runs (e.g. annealing or
    GA restarts) that must be individually reproducible and mutually
    independent — including across process boundaries.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]
