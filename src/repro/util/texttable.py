"""Plain-text table rendering for experiment reports and benchmarks.

The paper reports its evaluation as figures plus numbers in prose; our
benchmark harness prints the regenerated rows/series as fixed-width
text tables so they are directly comparable in a terminal or CI log.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    float_fmt: str = ".1f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Floats are formatted with ``float_fmt``; all other values via
    ``str``.  Raises ``ValueError`` when a row length does not match the
    header length, which catches malformed experiment output early.
    """
    ncols = len(headers)
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != ncols:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {ncols}"
            )
        rendered.append([_cell(v, float_fmt) for v in row])

    widths = [max(len(r[c]) for r in rendered) for c in range(ncols)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(rendered[0], widths)))
    lines.append(sep)
    for r in rendered[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
