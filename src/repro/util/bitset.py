"""Bitmask set primitives.

Switch sets throughout the library are represented as Python ``int``
bitmasks (arbitrary precision, so universes larger than 64 switches are
fine) with NumPy ``uint64`` lanes used on vectorized hot paths such as
the genetic-algorithm fitness evaluation.  This module collects the
shared primitives: popcounts, mask construction, and enumeration.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = [
    "bit_count",
    "bit_indices",
    "mask_of",
    "popcount_u64",
    "random_mask",
    "symmetric_difference_size",
    "masks_to_u64",
    "u64_to_mask",
]


def bit_count(mask: int) -> int:
    """Number of set bits in ``mask`` (non-negative int)."""
    if mask < 0:
        raise ValueError("bitmask must be non-negative")
    return mask.bit_count()


def mask_of(indices: Iterable[int]) -> int:
    """Build a bitmask with the given bit positions set.

    >>> mask_of([0, 3])
    9
    """
    mask = 0
    for i in indices:
        if i < 0:
            raise ValueError(f"bit index must be non-negative, got {i}")
        mask |= 1 << i
    return mask


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the positions of set bits in ascending order.

    >>> list(bit_indices(9))
    [0, 3]
    """
    if mask < 0:
        raise ValueError("bitmask must be non-negative")
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def symmetric_difference_size(a: int, b: int) -> int:
    """``|a XOR b|`` — the changeover distance between two switch sets."""
    return bit_count(a ^ b)


def random_mask(rng: np.random.Generator, nbits: int, density: float = 0.5) -> int:
    """Random bitmask over ``nbits`` positions; each bit set with ``density``."""
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be within [0, 1]")
    bits = rng.random(nbits) < density
    mask = 0
    for i in np.flatnonzero(bits):
        mask |= 1 << int(i)
    return mask


# ---------------------------------------------------------------------------
# NumPy uint64 lane helpers (used by the vectorized GA fitness kernel).
# ---------------------------------------------------------------------------

# SWAR (SIMD-within-a-register) popcount constants for 64-bit lanes.
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_SHIFT56 = np.uint64(56)
_HAS_NATIVE_POPCOUNT = hasattr(np, "bitwise_count")


def popcount_u64(x: np.ndarray) -> np.ndarray:
    """Vectorized popcount for an array of ``uint64`` lanes.

    One :func:`numpy.bitwise_count` ufunc call on NumPy ≥ 2.0 (an
    order of magnitude cheaper than the nine-op SWAR pipeline, which
    matters on the streaming hot paths that popcount tiny arrays per
    segment); the classic SWAR bit-slicing fallback keeps older NumPy
    working.  Returns an array of the same shape; counts fit any
    integer dtype — callers reduce with an explicit ``dtype``.
    """
    x = np.asarray(x, dtype=np.uint64)
    if _HAS_NATIVE_POPCOUNT:
        return np.bitwise_count(x)
    x = x - ((x >> np.uint64(1)) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    with np.errstate(over="ignore"):  # the SWAR multiply wraps by design
        return (x * _H01) >> _SHIFT56


def masks_to_u64(masks: Iterable[int]) -> np.ndarray:
    """Pack Python-int masks (must fit in 64 bits) into a uint64 array.

    Thin alias over :func:`repro.core.packed.masks_to_u64` — the lane
    packing primitives now live in :mod:`repro.core.packed` (imported
    lazily here to keep ``util`` free of import-time ``core``
    dependencies).  Kept so PR-2 callers keep working.
    """
    from repro.core.packed import masks_to_u64 as _masks_to_u64

    return _masks_to_u64(masks)


def u64_to_mask(x: np.uint64 | int) -> int:
    """Convert a uint64 lane back into a Python int mask.

    Thin alias over :func:`repro.core.packed.u64_to_mask` (see
    :func:`masks_to_u64`).
    """
    from repro.core.packed import u64_to_mask as _u64_to_mask

    return _u64_to_mask(x)
