"""Command-line interface.

Subcommands cover the common workflows without writing Python:

* ``repro trace <app>`` — simulate a SHyRA application and dump its
  requirement trace (optionally as JSON);
* ``repro solve <app>`` — trace + solve single- and multi-task
  scheduling, print the cost table;
* ``repro batch [apps…]`` — push a (repeatable) mixed workload through
  the :class:`~repro.engine.batch.BatchEngine` and print per-request
  rows plus throughput/latency/cache metrics (``--anneal-restarts`` /
  ``--anneal-restart-workers`` configure the annealing solver's
  multistart fan-out and surface its per-restart stats);
* ``repro stream [apps…]`` — replay app traces as live requirement
  streams through the sharded serving layer
  (:class:`~repro.serve.shard.ShardPool`; ``--shards``/``--shard-procs``
  pick the fleet shape, 1 thread shard by default) and print
  per-session accounting plus steps/sec and hyper-rate metrics —
  finite replays and live sockets share this code path;
* ``repro serve`` — run the network serving process: asyncio TCP (or
  ``--stdin``) front door over the shard pool, speaking the framed
  JSON protocol of :mod:`repro.serve.protocol`
  (``--metrics-port`` exposes ``GET /metrics``, ``--stats-interval``
  prints periodic telemetry, ``--slow-ms`` tunes the slow-request
  log);
* ``repro serve-stats`` — scrape a running server's metrics endpoint
  (text, ``--json``, or ``--check`` which parses the exposition and
  requires the core series);
* ``repro serve-bench`` — loopback load generator: spin up (or connect
  to) a server, drive a synthetic session fleet through real client
  connections, print throughput and optionally verify per-session
  costs against a single-hub replay;
* ``repro solvers`` — list the registered solver zoo with capability
  tags;
* ``repro portfolio`` — inspect a portfolio run ledger
  (``repro batch --ledger`` grows one), dump the learned per-bucket
  model, or replay decisions offline with any strategy/seed;
* ``repro experiment`` — the full paper reproduction (E1–E3 artifacts);
* ``repro stats <app>`` — trace statistics and phase structure;
* ``repro bench`` — run the benchmark smoke suite (every ``bench_e*``
  at reduced size) and print its tables, including the E14/E15 speedup
  tables.

All solving goes through the solver registry and the serving engine
(:mod:`repro.engine`), never through ad-hoc solver imports.

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.experiments import run_counter_experiment
from repro.analysis.figures import render_fig2, render_fig3
from repro.analysis.report import counter_cost_table, paper_comparison_table
from repro.analysis.trace_stats import demand_profile, detect_period
from repro.core.cost_single import no_hyper_cost
from repro.core.packed import masks_to_lanes
from repro.engine.batch import BatchEngine
from repro.engine.registry import default_registry
from repro.engine.requests import SolveRequest
from repro.shyra.apps.adder import adder_registers, build_adder_program
from repro.shyra.apps.comparator import (
    build_comparator_program,
    comparator_registers,
)
from repro.shyra.apps.counter import build_counter_program, counter_registers
from repro.shyra.apps.gray import build_gray_program, gray_registers
from repro.shyra.apps.lfsr import build_lfsr_program, lfsr_registers
from repro.shyra.apps.parity import build_parity_program, parity_registers
from repro.shyra.tasks import component_masks, shyra_task_system
from repro.shyra.trace import RequirementSemantics, run_and_trace
from repro.util.texttable import format_table

__all__ = ["main", "APPS"]

#: app name -> (program builder, default initial registers)
APPS = {
    "counter": (build_counter_program, lambda: counter_registers(0, 10)),
    "comparator": (build_comparator_program, lambda: comparator_registers(11, 5)),
    "adder": (build_adder_program, lambda: adder_registers(9, 6)),
    "gray": (build_gray_program, lambda: gray_registers(12)),
    "parity": (build_parity_program, lambda: parity_registers(0xA5)),
    "lfsr": (build_lfsr_program, lambda: lfsr_registers(1)),
}


def _trace_app(args) -> "tuple":
    build, registers = APPS[args.app]
    program = build(hold_unused=not args.naive)
    semantics = (
        RequirementSemantics.WRITTEN
        if args.semantics == "written"
        else RequirementSemantics.DELTA
    )
    trace = run_and_trace(
        program, initial_registers=registers(), semantics=semantics
    )
    return program, trace


def cmd_trace(args) -> int:
    _program, trace = _trace_app(args)
    profile = demand_profile(trace.requirements, component_masks())
    if args.json:
        payload = {
            "app": args.app,
            "n": trace.n,
            "requirement_masks": [hex(m) for m in trace.requirements.masks],
            "config_words": [hex(w) for w in trace.config_words],
            "final_registers": list(trace.final_registers),
            "mean_demand": profile.mean_demand,
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    print(f"app: {args.app}  n = {trace.n} reconfigurations")
    print(f"mean demand: {profile.mean_demand:.1f} / {profile.universe_size}")
    print(f"trace union: {profile.total_union_size} switches")
    period = detect_period(trace.requirements, skip=trace.n // 4)
    print(f"detected period (after warm-up): {period}")
    rows = [
        [name, round(mean, 2)]
        for name, mean in profile.per_component_mean.items()
    ]
    print(format_table(["component", "mean demand"], rows))
    return 0


def cmd_solve(args) -> int:
    _program, trace = _trace_app(args)
    seq = trace.requirements
    system = shyra_task_system()
    base = no_hyper_cost(seq)
    engine = BatchEngine()
    single_res = engine.solve(
        SolveRequest.single(seq, w=float(seq.universe.size))
    )
    multi_res = engine.solve(
        SolveRequest.multi(
            system, system.split_requirements(seq), solver="mt_greedy"
        )
    )
    for res in (single_res, multi_res):
        if not res.ok:
            print(f"solve failed: {res.error}", file=sys.stderr)
            return 1
    single, multi = single_res.value, multi_res.value
    rows = [
        ["hyperreconfiguration disabled", base, 100.0, "-"],
        ["single task (optimal DP)", single.cost,
         round(100 * single.cost / base, 1), single.schedule.r],
        ["multi task (greedy+LS)", multi.cost,
         round(100 * multi.cost / base, 1),
         len(multi.schedule.hyper_columns())],
    ]
    print(format_table(
        ["configuration", "cost", "% of disabled", "hyper steps"],
        rows,
        title=f"{args.app}: scheduling (n={trace.n})",
    ))
    return 0


def _batch_requests(apps, *, naive: bool, solver: str, solver_kwargs=None):
    """One single- and one multi-task request per app trace."""
    requests = []
    labels = []
    system = shyra_task_system()
    solver_kwargs = solver_kwargs or {}
    for app in apps:
        build, registers = APPS[app]
        program = build(hold_unused=not naive)
        trace = run_and_trace(program, initial_registers=registers())
        seq = trace.requirements
        requests.append(SolveRequest.single(seq, w=float(seq.universe.size)))
        labels.append((app, "single"))
        requests.append(
            SolveRequest.multi(
                system,
                system.split_requirements(seq),
                solver=solver,
                **solver_kwargs,
            )
        )
        labels.append((app, "multi"))
    return requests, labels


def _anneal_kwargs(args) -> dict:
    """Solver kwargs for the annealing multistart flags (empty unless
    the selected solver actually anneals)."""
    if args.solver not in ("mt_annealing", "mt_annealing_multistart"):
        return {}
    if args.anneal_restarts == 1 and args.anneal_restart_workers == 1:
        return {}
    from repro.solvers.mt_annealing import AnnealParams

    return {
        "params": AnnealParams(
            restarts=args.anneal_restarts,
            restart_workers=args.anneal_restart_workers,
        )
    }


def _restart_rows(results, labels):
    """Per-restart stat rows of the annealing solves in a batch."""
    rows = []
    seen = set()
    for (app, kind), res in zip(labels, results):
        if not res.ok or (app, kind) in seen:
            continue
        seen.add((app, kind))
        stats = res.value.stats or {}
        costs = stats.get("restart_costs")
        if not costs or len(costs) < 2:
            continue
        accepted = stats.get("restart_accepted", [0] * len(costs))
        for r, (cost, acc) in enumerate(zip(costs, accepted)):
            rows.append([app, r, round(cost, 1), acc])
    return rows


def cmd_batch(args) -> int:
    if args.repeat < 1:
        print("--repeat must be at least 1", file=sys.stderr)
        return 2
    apps = args.apps or sorted(APPS)
    for app in apps:
        if app not in APPS:
            print(f"unknown app {app!r}; choose from {sorted(APPS)}",
                  file=sys.stderr)
            return 2
    try:
        engine = BatchEngine(
            workers=args.workers,
            cache_size=args.cache_size,
            timeout=args.timeout,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        solver_kwargs = _anneal_kwargs(args)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    state = None
    if getattr(args, "ledger", None):
        from pathlib import Path

        from repro.portfolio import PortfolioState, set_default_state

        ledger_path = Path(args.ledger)
        if ledger_path.exists():
            try:
                state = PortfolioState.load(ledger_path)
            except ValueError as exc:
                print(f"bad ledger {ledger_path}: {exc}", file=sys.stderr)
                return 2
        else:
            state = PortfolioState()
        set_default_state(state)
    requests, labels = _batch_requests(
        apps, naive=args.naive, solver=args.solver, solver_kwargs=solver_kwargs
    )
    requests = requests * args.repeat
    labels = labels * args.repeat
    results = engine.solve_batch(requests)
    if state is not None:
        state.save(args.ledger)
    if args.json:
        payload = engine.metrics.snapshot(engine.cache.stats)
        payload["results"] = [
            {
                "app": app,
                "kind": kind,
                "ok": res.ok,
                "cost": res.value.cost if res.ok else None,
                "solver": res.value.solver if res.ok else None,
                "error": res.error,
                "cached": res.cached,
                "elapsed_s": res.elapsed,
            }
            for (app, kind), res in zip(labels, results)
        ]
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0 if all(r.ok for r in results) else 1
    # One row per unique request: the first occurrence's solve plus how
    # many of its duplicates the cache served.
    summary: dict[tuple, dict] = {}
    for label, res in zip(labels, results):
        entry = summary.setdefault(label, {"res": res, "hits": 0})
        if res.cached:
            entry["hits"] += 1
    rows = []
    for (app, kind), entry in summary.items():
        res = entry["res"]
        rows.append([
            app,
            kind,
            res.value.solver if res.ok else f"error: {res.error}",
            round(res.value.cost, 1) if res.ok else "-",
            f"{res.elapsed * 1e3:.1f} ms",
            entry["hits"],
        ])
    print(format_table(
        ["app", "kind", "solver", "cost", "solve", "cache hits"],
        rows,
        title=f"batch: {len(requests)} requests "
              f"({args.repeat}× {len(rows)} unique), "
              f"{args.workers} worker(s)",
    ))
    restart_rows = _restart_rows(results, labels)
    if restart_rows:
        print()
        print(format_table(
            ["app", "restart", "best cost", "accepted"],
            restart_rows,
            title="annealing restarts",
        ))
    print()
    print(engine.metrics.format_report(engine.cache.stats))
    return 0 if all(r.ok for r in results) else 1


def _stream_policy(args, w: float):
    from repro.solvers.online import (
        RentOrBuyScheduler,
        ScalarOnly,
        WindowScheduler,
    )

    if args.policy == "window":
        scheduler = WindowScheduler(k=args.window)
    else:
        scheduler = RentOrBuyScheduler(
            w, alpha=args.alpha, memory=args.memory
        )
    if args.scalar:
        return ScalarOnly(scheduler, name=f"{scheduler.name} [scalar]")
    return scheduler


def cmd_stream(args) -> int:
    from repro.serve.shard import ShardPool, shard_index

    if args.sessions < 1 or args.repeat < 1 or args.chunk < 1:
        print("--sessions, --repeat and --chunk must be at least 1",
              file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2
    apps = args.apps or sorted(APPS)
    for app in apps:
        if app not in APPS:
            print(f"unknown app {app!r}; choose from {sorted(APPS)}",
                  file=sys.stderr)
            return 2
    traces = {}
    for app in apps:
        build, registers = APPS[app]
        program = build(hold_unused=not args.naive)
        trace = run_and_trace(program, initial_registers=registers())
        traces[app] = trace.requirements
    if args.w is not None and args.w <= 0:
        print("--w must be positive", file=sys.stderr)
        return 2
    # Finite replays run through the same shard layer a live socket
    # fleet does (repro serve); a 1-shard pool is the old single-hub
    # behavior, per-session results are identical for any shape.
    pool = ShardPool(args.shards, procs=args.shard_procs)
    try:
        sessions = []  # (session_id, app, masks)
        for app in apps:
            seq = traces[app]
            w = args.w if args.w is not None else float(seq.universe.size)
            try:
                policy = _stream_policy(args, w)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            # Pack once per app: lane chunks take the hub's fused
            # epoch-sweep path, the way serve ingest feeds it; scalar
            # (--scalar) sessions unpack them transparently.
            masks = masks_to_lanes(
                list(seq.masks) * args.repeat, seq.universe.size
            )
            for r in range(args.sessions):
                sid = pool.open(policy, seq.universe, w,
                                session_id=f"{app}/{r}")
                sessions.append((sid, app, masks))
        # Feed every session chunk by chunk — one feed_many call
        # advances the whole fleet per round, the way a serving loop
        # would, fanning out across the shard pool.
        pos = 0
        longest = max(len(masks) for _sid, _app, masks in sessions)
        while pos < longest:
            chunks = {
                sid: masks[pos : pos + args.chunk]
                for sid, _app, masks in sessions
                if pos < len(masks)
            }
            pool.feed_many(chunks)
            pos += args.chunk
        runs = pool.finish_all()
        stats = pool.stats()
    finally:
        pool.close()
    if args.json:
        payload = stats["engine"]
        payload["shards"] = stats["shards"]
        payload["sessions"] = [
            {
                "session": sid,
                "app": app,
                "shard": shard_index(sid, args.shards),
                "solver": runs[sid].solver,
                "steps": runs[sid].schedule.n,
                "hypers": runs[sid].schedule.r,
                "cost": runs[sid].cost,
            }
            for sid, app, _masks in sessions
        ]
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    rows = []
    for sid, app, _masks in sessions:
        run = runs[sid]
        rows.append([
            sid,
            run.solver,
            run.schedule.n,
            run.schedule.r,
            round(run.cost, 1),
        ])
    kind = "proc" if args.shard_procs else "thread"
    print(format_table(
        ["session", "policy", "steps", "hypers", "cost"],
        rows,
        title=f"stream: {len(sessions)} session(s), "
              f"{args.shards} {kind} shard(s), "
              f"chunk={args.chunk}, repeat={args.repeat}",
    ))
    print()
    print(pool.metrics.format_report())
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve.server import ServeConfig, StreamServer

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            shards=args.shards,
            shard_procs=args.shard_procs,
            max_sessions=args.max_sessions,
            max_chunk_steps=args.max_chunk,
            queue_depth=args.queue_depth,
            metrics_port=args.metrics_port,
            stats_interval=args.stats_interval,
            slow_ms=args.slow_ms,
            proto=args.proto,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2

    async def _run() -> None:
        import contextlib
        import signal

        server = StreamServer(config)
        await server.start(listen=not args.stdin)
        # SIGTERM (what a process manager sends) drains as gracefully
        # as Ctrl-C; SIGINT keeps its KeyboardInterrupt path.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        try:
            if args.stdin:
                print("serving on stdin/stdout "
                      f"({config.shards} shard(s))", file=sys.stderr)
                stdin_task = asyncio.ensure_future(server.serve_stdin())
                stop_task = asyncio.ensure_future(stop.wait())
                done, pending = await asyncio.wait(
                    {stdin_task, stop_task},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for task in pending:
                    task.cancel()
                for task in done:
                    task.result()  # surface stdin-loop errors
            else:
                host, port = server.address
                print(f"serving on {host}:{port} "
                      f"({config.shards} "
                      f"{'proc' if config.shard_procs else 'thread'} "
                      f"shard(s))", file=sys.stderr)
                if server.metrics_address is not None:
                    mhost, mport = server.metrics_address
                    print(f"metrics on http://{mhost}:{mport}/metrics",
                          file=sys.stderr)
                await stop.wait()  # until SIGTERM or KeyboardInterrupt
        finally:
            await server.stop()
            print(server.pool.metrics.format_report(), file=sys.stderr)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


#: exposition series every healthy server must emit (``serve-stats
#: --check``): families are created eagerly, so these exist even on a
#: freshly started, idle server.
CORE_SERIES = (
    "repro_uptime_seconds",
    "repro_sessions",
    "repro_server_opens_total",
    "repro_server_feeds_total",
    "repro_stream_steps_total",
    "repro_stream_fused_sessions_total",
    "repro_stream_fused_fallback_total",
    "repro_stream_replay_epochs_total",
    "repro_stream_replay_triggers_total",
    "repro_feed_latency_seconds_count",
    "repro_drain_cycle_seconds_count",
    "repro_stream_chunk_steps_count",
    "repro_session_cost_count",
    # wire protocol accounting is pre-seeded for both generations, so
    # an idle server already exposes the {proto="json"|"bin"} series.
    "repro_wire_bytes_in_total",
    "repro_wire_bytes_out_total",
    "repro_wire_decode_seconds_total",
    # the portfolio decision counter renders an unlabeled zero row
    # until the first decision, so the series exists on an idle server.
    "repro_portfolio_decisions_total",
)


def cmd_serve_stats(args) -> int:
    import urllib.error
    import urllib.request

    from repro.obs.expo import parse_exposition

    path = "/metrics.json" if args.json else "/metrics"
    url = f"http://{args.host}:{args.metrics_port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as resp:
            body = resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError) as exc:
        print(f"scrape failed: {url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        # Round-trip through json to fail loudly on a bad body.
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            print(f"bad JSON from {url}: {exc}", file=sys.stderr)
            return 1
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    if args.check:
        try:
            series = parse_exposition(body)
        except ValueError as exc:
            print(f"exposition does not parse: {exc}", file=sys.stderr)
            return 1
        missing = [name for name in CORE_SERIES if name not in series]
        if missing:
            print("missing core series: " + ", ".join(missing),
                  file=sys.stderr)
            return 1
        print(f"ok: {len(series)} series, all "
              f"{len(CORE_SERIES)} core series present")
        return 0
    sys.stdout.write(body)
    return 0


def cmd_serve_bench(args) -> int:
    from repro.serve.loadgen import run_loadgen
    from repro.serve.server import ServeConfig, ServerThread

    if args.sessions < 1 or args.steps < 1 or args.chunk < 1:
        print("--sessions, --steps and --chunk must be at least 1",
              file=sys.stderr)
        return 2
    shard_counts = sorted(set(args.shard_counts or [1, 2, 4]))
    if any(s < 1 for s in shard_counts):
        print("--shard-counts entries must be at least 1", file=sys.stderr)
        return 2
    policy_params = (
        {"alpha": args.alpha, "memory": args.memory}
        if args.policy == "rent_or_buy"
        else {"k": args.window}
    )
    from repro.obs.histogram import Histogram
    from repro.serve.client import ServeClient

    rows = []
    payload = []
    for shards in shard_counts:
        config = ServeConfig(
            shards=shards,
            shard_procs=args.shard_procs,
            max_sessions=max(4096, args.sessions + 1),
        )
        with ServerThread(config) as (host, port):
            result = run_loadgen(
                host,
                port,
                sessions=args.sessions,
                steps=args.steps,
                chunk=args.chunk,
                width=args.width,
                policy=args.policy,
                policy_params=policy_params,
                clients=args.clients,
                verify=args.verify,
                proto=args.proto,
                pipeline=args.pipeline,
            )
            # Server-side view of the same traffic, over the wire:
            # merged drain-cycle histogram across all shards, plus the
            # per-protocol decode-CPU counters.
            with ServeClient(host, port) as probe:
                telemetry = probe.metrics()
                wire = telemetry["histograms"]
                decode = {
                    proto: series["decode_s"]
                    for proto, series in
                    telemetry["metrics"]["engine"]["wire"].items()
                }
                stream = telemetry["metrics"]["engine"]["stream"]
        drain = Histogram.from_wire_aggregate(
            wire.get("drain_cycle_seconds")
        )
        lat = result.latency
        ms = 1e3
        decode_ms = sum(decode.values()) * ms
        rows.append([
            shards,
            result.proto,
            result.sessions,
            result.steps,
            round(result.wall_s, 2),
            f"{result.steps_per_s:,.0f}",
            f"{stream['fused_fraction']:.1%}",
            f"{result.frames_per_s:,.0f}",
            f"{result.bytes_out:,}",
            f"{decode_ms:.1f}",
            f"{lat.p50 * ms:.1f} / {lat.p95 * ms:.1f} / {lat.p99 * ms:.1f}",
            f"{drain.p50 * ms:.1f} / {drain.p95 * ms:.1f} "
            f"/ {drain.p99 * ms:.1f}",
            "yes" if result.verified else "-",
        ])
        payload.append({
            "shards": shards,
            "proto": result.proto,
            "pipeline": args.pipeline,
            "sessions": result.sessions,
            "steps": result.steps,
            "wall_s": result.wall_s,
            "steps_per_s": result.steps_per_s,
            "fused_sessions": stream["fused_sessions"],
            "fused_fallback": stream["fused_fallback"],
            "fused_fraction": stream["fused_fraction"],
            "replay_epochs": stream["replay_epochs"],
            "replay_triggers": stream["replay_triggers"],
            "frames_per_s": result.frames_per_s,
            "bytes_out": result.bytes_out,
            "bytes_in": result.bytes_in,
            "decode_s": decode,
            "client_latency": lat.snapshot(),
            "server_drain": drain.snapshot(),
            "verified": result.verified,
        })
    if args.json:
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    kind = "proc" if args.shard_procs else "thread"
    print(format_table(
        ["shards", "proto", "sessions", "steps", "wall s", "steps/s",
         "fused %", "frames/s", "req bytes", "decode ms",
         "client p50/p95/p99 ms", "drain p50/p95/p99 ms", "verified"],
        rows,
        title=f"serve-bench: loopback, {kind} shards, "
              f"{args.clients} client(s), chunk={args.chunk}, "
              f"policy={args.policy}",
    ))
    return 0


def cmd_solvers(_args) -> int:
    print(format_table(
        ["solver", "kind", "exact", "cost model", "tags"],
        default_registry().describe(),
        title="registered solvers",
    ))
    return 0


def cmd_portfolio(args) -> int:
    from pathlib import Path

    from repro.portfolio import PortfolioState

    path = Path(args.ledger)
    if not path.exists():
        print(f"no ledger at {path}", file=sys.stderr)
        return 2
    try:
        state = PortfolioState.load(path)
    except ValueError as exc:
        print(f"bad ledger {path}: {exc}", file=sys.stderr)
        return 2

    if args.action == "inspect":
        per_solver: dict[str, dict] = {}
        buckets = set()
        for rec in state.ledger:
            buckets.add(rec.features.bucket())
            entry = per_solver.setdefault(
                rec.solver,
                {"runs": 0, "failures": 0, "runtime": 0.0, "costs": []},
            )
            entry["runs"] += 1
            entry["runtime"] += rec.runtime
            if rec.ok:
                entry["costs"].append(rec.cost)
            else:
                entry["failures"] += 1
        if args.json:
            payload = {
                "ledger": str(path),
                "records": len(state.ledger),
                "buckets": sorted(buckets),
                "solvers": {
                    name: {
                        "runs": e["runs"],
                        "failures": e["failures"],
                        "mean_runtime_s": e["runtime"] / e["runs"],
                        "mean_cost": (
                            sum(e["costs"]) / len(e["costs"])
                            if e["costs"] else None
                        ),
                    }
                    for name, e in sorted(per_solver.items())
                },
            }
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
            return 0
        rows = [
            [
                name,
                e["runs"],
                e["failures"],
                f"{e['runtime'] / e['runs'] * 1e3:.1f} ms",
                (f"{sum(e['costs']) / len(e['costs']):.1f}"
                 if e["costs"] else "-"),
            ]
            for name, e in sorted(per_solver.items())
        ]
        print(format_table(
            ["solver", "runs", "failures", "mean runtime", "mean cost"],
            rows,
            title=f"ledger {path}: {len(state.ledger)} records, "
                  f"{len(buckets)} feature bucket(s)",
        ))
        return 0

    if args.action == "model":
        snapshot = state.model.snapshot()
        if args.json:
            json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
            print()
            return 0
        rows = [
            [
                bucket,
                solver,
                arm["runs"],
                arm["failures"],
                (f"{arm['runtime_p50_s'] * 1e3:.1f} ms"
                 if arm["runtime_p50_s"] is not None else "-"),
                (f"{arm['cost_p50']:.1f}"
                 if arm["cost_p50"] is not None else "-"),
            ]
            for bucket, solvers in sorted(snapshot.items())
            for solver, arm in sorted(solvers.items())
        ]
        print(format_table(
            ["bucket", "solver", "runs", "failures", "runtime p50",
             "cost p50"],
            rows,
            title=f"portfolio model from {path}",
        ))
        return 0

    # replay: re-run the decision offline for every feature bucket the
    # ledger has seen, with the model the full ledger implies.  Uses
    # the same seeded rng scheme as the live engine, so a fixed
    # --seed reproduces the live choices bit-for-bit.
    import numpy as np

    from repro.portfolio import make_strategy, portfolio_candidates

    try:
        strategy = make_strategy(args.strategy)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    candidates = portfolio_candidates(default_registry())
    representatives: dict[str, object] = {}
    for rec in state.ledger:
        representatives.setdefault(rec.features.bucket(), rec.features)
    decisions = []
    for index, (bucket, features) in enumerate(
        sorted(representatives.items())
    ):
        rng = np.random.default_rng([args.seed & 0x7FFFFFFF, index])
        rng.integers(2 ** 31)  # solver seed draw, as the engine does
        decision = strategy.decide(state.model, features, candidates, rng)
        decisions.append((bucket, decision))
    if args.json:
        payload = [
            {
                "bucket": bucket,
                "strategy": d.strategy,
                "chosen": d.chosen[0] if d.chosen else None,
                "ranking": list(d.chosen),
                "mode": d.mode,
                "explore": d.explore,
                "reason": d.reason,
            }
            for bucket, d in decisions
        ]
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    rows = [
        [
            bucket,
            d.chosen[0] if d.chosen else "-",
            d.mode,
            "yes" if d.explore else "no",
            d.reason,
        ]
        for bucket, d in decisions
    ]
    print(format_table(
        ["bucket", "choice", "mode", "explore", "reason"],
        rows,
        title=f"offline replay: strategy={args.strategy} seed={args.seed}",
    ))
    return 0


def cmd_experiment(args) -> int:
    from repro.solvers.mt_genetic import GAParams

    params = (
        GAParams(population_size=32, generations=120, stall_generations=40)
        if args.fast
        else None
    )
    exp = run_counter_experiment(ga_params=params, seed=args.seed)
    print(counter_cost_table(exp))
    print()
    print(paper_comparison_table(exp))
    if args.figures:
        print()
        print(render_fig2(exp))
        print()
        print(render_fig3(exp))
    if args.archive:
        from repro.analysis.export import dump_experiment

        path = dump_experiment(exp, args.archive)
        print(f"\narchived run to {path}")
    return 0


def _find_benchmarks_dir():
    """Locate the benchmark harness: the cwd first, then the checkout
    this package was imported from (site installs do not ship it)."""
    import pathlib

    candidates = [
        pathlib.Path.cwd() / "benchmarks",
        pathlib.Path(__file__).resolve().parents[2] / "benchmarks",
    ]
    for candidate in candidates:
        if (candidate / "conftest.py").is_file():
            return candidate
    return None


def cmd_bench(args) -> int:
    import importlib.util
    import os
    import pathlib
    import subprocess

    if importlib.util.find_spec("pytest") is None:
        print(
            "repro bench needs pytest (install the '[test]' extra)",
            file=sys.stderr,
        )
        return 2
    bench_dir = _find_benchmarks_dir()
    if bench_dir is None:
        print(
            "benchmarks/ not found: run from a repository checkout "
            "(the benchmark harness is not installed with the package)",
            file=sys.stderr,
        )
        return 2
    cmd = [sys.executable, "-m", "pytest", str(bench_dir), "-q", "-s"]
    if not args.full:
        cmd.append("--smoke")
    if args.select:
        cmd.extend(["-k", args.select])
    if args.sessions is not None:
        if args.sessions < 1:
            print("--sessions must be at least 1", file=sys.stderr)
            return 2
        cmd.extend(["--sessions", str(args.sessions)])
    # Child processes must import this same repro tree even when it was
    # never pip-installed (the PYTHONPATH=src workflow).
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1])
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    return subprocess.call(cmd, env=env, cwd=str(bench_dir.parent))


def cmd_stats(args) -> int:
    from repro.analysis.trace_stats import segment_phases

    _program, trace = _trace_app(args)
    seq = trace.requirements
    profile = demand_profile(seq, component_masks())
    print(f"app: {args.app}  n = {trace.n}")
    print(f"mean demand {profile.mean_demand:.2f}, max {profile.max_demand}, "
          f"union {profile.total_union_size}/{profile.universe_size}")
    period = detect_period(seq, skip=trace.n // 4)
    print(f"period after warm-up: {period}")
    segments = segment_phases(seq, drift_threshold=args.drift)
    rows = [
        [s.start, s.stop, s.length, bin(s.working_set_mask).count("1")]
        for s in segments
    ]
    print(format_table(
        ["start", "stop", "len", "|working set|"],
        rows,
        title=f"phase segmentation (drift threshold {args.drift})",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-task hyperreconfigurable architectures (IPPS 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("app", choices=sorted(APPS))
    common.add_argument(
        "--semantics", choices=["delta", "written"], default="delta"
    )
    common.add_argument(
        "--naive", action="store_true",
        help="use the naive (non-holding) compiler mapping",
    )

    p_trace = sub.add_parser(
        "trace", parents=[common], help="simulate an app and dump its trace"
    )
    p_trace.add_argument("--json", action="store_true")
    p_trace.set_defaults(func=cmd_trace)

    p_solve = sub.add_parser(
        "solve", parents=[common], help="trace an app and solve scheduling"
    )
    p_solve.set_defaults(func=cmd_solve)

    p_batch = sub.add_parser(
        "batch",
        help="solve a mixed app workload through the batch engine",
    )
    p_batch.add_argument(
        "apps", nargs="*", metavar="app",
        help=f"apps to trace and solve (default: all of {sorted(APPS)})",
    )
    p_batch.add_argument(
        "--solver", default="mt_greedy",
        help="registry name of the multi-task solver (default: mt_greedy)",
    )
    p_batch.add_argument("--workers", type=int, default=1)
    p_batch.add_argument(
        "--repeat", type=int, default=2,
        help="duplicate the workload N times (exercises the result cache)",
    )
    p_batch.add_argument("--cache-size", type=int, default=1024)
    p_batch.add_argument(
        "--timeout", type=float, default=None,
        help="per-request solve budget in seconds",
    )
    p_batch.add_argument(
        "--naive", action="store_true",
        help="use the naive (non-holding) compiler mapping",
    )
    p_batch.add_argument("--json", action="store_true")
    p_batch.add_argument(
        "--anneal-restarts", type=int, default=1, metavar="N",
        help="annealing solvers: independent restarts per solve",
    )
    p_batch.add_argument(
        "--anneal-restart-workers", type=int, default=1, metavar="K",
        help="annealing solvers: processes the restarts fan across "
             "(bit-identical to sequential)",
    )
    p_batch.add_argument(
        "--ledger", metavar="PATH",
        help="portfolio run ledger: load learned state before solving, "
             "save the grown ledger after (created if missing)",
    )
    p_batch.set_defaults(func=cmd_batch)

    p_stream = sub.add_parser(
        "stream",
        help="replay app traces as live requirement streams (StreamHub)",
    )
    p_stream.add_argument(
        "apps", nargs="*", metavar="app",
        help=f"apps to trace and stream (default: all of {sorted(APPS)})",
    )
    p_stream.add_argument(
        "--policy", choices=["rent_or_buy", "window"], default="rent_or_buy",
    )
    p_stream.add_argument(
        "--alpha", type=float, default=1.0,
        help="rent-or-buy regret factor (threshold alpha·w)",
    )
    p_stream.add_argument(
        "--memory", type=int, default=4,
        help="rent-or-buy working-set estimate: union of the last "
             "MEMORY requirements",
    )
    p_stream.add_argument(
        "-k", "--window", type=int, default=8,
        help="window policy cadence",
    )
    p_stream.add_argument(
        "--w", type=float, default=None,
        help="hyperreconfiguration cost (default: universe size)",
    )
    p_stream.add_argument(
        "--sessions", type=int, default=4,
        help="concurrent sessions per app",
    )
    p_stream.add_argument(
        "--repeat", type=int, default=1,
        help="feed each trace N times per session",
    )
    p_stream.add_argument(
        "--chunk", type=int, default=256,
        help="requirements per feed_many chunk",
    )
    p_stream.add_argument(
        "--scalar", action="store_true",
        help="force the scalar cursor path (throughput baseline)",
    )
    p_stream.add_argument(
        "--shards", type=int, default=1,
        help="hub shards the sessions hash-partition across",
    )
    p_stream.add_argument(
        "--shard-procs", action="store_true",
        help="process shards instead of threads (true parallelism)",
    )
    p_stream.add_argument(
        "--naive", action="store_true",
        help="use the naive (non-holding) compiler mapping",
    )
    p_stream.add_argument("--json", action="store_true")
    p_stream.set_defaults(func=cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="run the streaming scheduler as a network service "
             "(framed JSON over TCP or stdin)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7411,
        help="TCP port (0 picks an ephemeral one)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1,
        help="hub shards the sessions hash-partition across",
    )
    p_serve.add_argument(
        "--shard-procs", action="store_true",
        help="process shards instead of threads",
    )
    p_serve.add_argument(
        "--max-sessions", type=int, default=4096,
        help="admission control: reject opens past this many live sessions",
    )
    p_serve.add_argument(
        "--max-chunk", type=int, default=65536,
        help="admission control: reject feed frames beyond this many steps",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=64,
        help="bounded per-shard feed queue (backpressure)",
    )
    p_serve.add_argument(
        "--stdin", action="store_true",
        help="speak the protocol over stdin/stdout instead of TCP",
    )
    p_serve.add_argument(
        "--proto", choices=["auto", "json"], default="auto",
        help="wire protocols to accept: auto negotiates binary v2 "
             "frames with willing clients, json declines them "
             "(default: auto)",
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve Prometheus text at http://HOST:PORT/metrics "
             "(0 picks an ephemeral port; default: off)",
    )
    p_serve.add_argument(
        "--stats-interval", type=float, default=None, metavar="SECONDS",
        help="print a one-line telemetry report to stderr every "
             "SECONDS (default: off)",
    )
    p_serve.add_argument(
        "--slow-ms", type=float, default=100.0, metavar="MS",
        help="slow-request log threshold in milliseconds "
             "(0 disables; default: 100)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_sstats = sub.add_parser(
        "serve-stats",
        help="scrape a running server's /metrics endpoint",
    )
    p_sstats.add_argument("--host", default="127.0.0.1")
    p_sstats.add_argument(
        "--metrics-port", type=int, required=True, metavar="PORT",
        help="metrics port of the target server (its --metrics-port)",
    )
    p_sstats.add_argument(
        "--timeout", type=float, default=10.0,
        help="HTTP timeout in seconds",
    )
    p_sstats.add_argument(
        "--json", action="store_true",
        help="fetch /metrics.json instead of the text exposition",
    )
    p_sstats.add_argument(
        "--check", action="store_true",
        help="parse the exposition and require the core series "
             "(nonzero exit when any is missing)",
    )
    p_sstats.set_defaults(func=cmd_serve_stats)

    p_sbench = sub.add_parser(
        "serve-bench",
        help="loopback load generator against the serving layer",
    )
    p_sbench.add_argument(
        "--sessions", type=int, default=64,
        help="concurrent sessions in the fleet",
    )
    p_sbench.add_argument(
        "--steps", type=int, default=2000,
        help="requirements per session",
    )
    p_sbench.add_argument("--chunk", type=int, default=256)
    p_sbench.add_argument(
        "--width", type=int, default=96,
        help="switch universe size of the synthetic workload",
    )
    p_sbench.add_argument(
        "--clients", type=int, default=4,
        help="concurrent client connections",
    )
    p_sbench.add_argument(
        "--shard-counts", type=int, nargs="*", metavar="N",
        help="shard counts to sweep (default: 1 2 4)",
    )
    p_sbench.add_argument(
        "--shard-procs", action="store_true",
        help="process shards instead of threads",
    )
    p_sbench.add_argument(
        "--policy", choices=["rent_or_buy", "window"], default="rent_or_buy",
    )
    p_sbench.add_argument("--alpha", type=float, default=1.0)
    p_sbench.add_argument("--memory", type=int, default=4)
    p_sbench.add_argument("-k", "--window", type=int, default=8)
    p_sbench.add_argument(
        "--verify", action="store_true",
        help="replay every trace through a single StreamHub and require "
             "exact per-session cost equality",
    )
    p_sbench.add_argument(
        "--proto", choices=["auto", "json", "bin"], default="auto",
        help="client wire protocol (default: auto-negotiate v2)",
    )
    p_sbench.add_argument(
        "--pipeline", action="store_true",
        help="pipeline each fleet round as one multi-frame burst per "
             "client connection",
    )
    p_sbench.add_argument("--json", action="store_true")
    p_sbench.set_defaults(func=cmd_serve_bench)

    p_solvers = sub.add_parser(
        "solvers", help="list the registered solver zoo"
    )
    p_solvers.set_defaults(func=cmd_solvers)

    p_portfolio = sub.add_parser(
        "portfolio",
        help="inspect a portfolio run ledger, dump its learned model, "
             "or replay decisions offline",
    )
    p_portfolio.add_argument(
        "action", choices=["inspect", "model", "replay"],
        help="inspect: per-solver ledger summary; model: learned "
             "per-bucket predictions; replay: re-run the decision for "
             "every seen feature bucket",
    )
    p_portfolio.add_argument(
        "--ledger", metavar="PATH", required=True,
        help="ledger JSON written by `repro batch --ledger` or "
             "PortfolioState.save()",
    )
    p_portfolio.add_argument(
        "--strategy", default="best",
        help="replay strategy spec: best[:tol] | egreedy[:eps] | "
             "ucb[:c] | race[:budget][,k=K][,restarts=R]",
    )
    p_portfolio.add_argument(
        "--seed", type=int, default=0,
        help="replay decision seed (same scheme as the live engine)",
    )
    p_portfolio.add_argument("--json", action="store_true")
    p_portfolio.set_defaults(func=cmd_portfolio)

    p_exp = sub.add_parser(
        "experiment", help="run the full paper reproduction"
    )
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--fast", action="store_true")
    p_exp.add_argument("--figures", action="store_true")
    p_exp.add_argument(
        "--archive", metavar="PATH", default=None,
        help="write a JSON archive of the run",
    )
    p_exp.set_defaults(func=cmd_experiment)

    p_stats = sub.add_parser(
        "stats", parents=[common], help="trace statistics and phase structure"
    )
    p_stats.add_argument("--drift", type=float, default=0.5)
    p_stats.set_defaults(func=cmd_stats)

    p_bench = sub.add_parser(
        "bench",
        help="run the benchmark smoke suite and print the speedup tables",
    )
    p_bench.add_argument(
        "--full", action="store_true",
        help="full-size benchmarks instead of the reduced smoke mode",
    )
    p_bench.add_argument(
        "-k", "--select", default=None, metavar="EXPR",
        help="pytest -k expression (e.g. 'e14 or e15' for the speedup "
             "benches only)",
    )
    p_bench.add_argument(
        "--sessions", type=int, default=None, metavar="N",
        help="extend the streaming/serving session axis to N concurrent "
             "sessions (E16/E17 hub and shard tables)",
    )
    p_bench.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
