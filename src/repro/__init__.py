"""repro — Multi-task hyperreconfigurable architectures.

A production-quality reproduction of

    S. Lange, M. Middendorf: *Models and Reconfiguration Problems for
    Multi Task Hyperreconfigurable Architectures*, IPPS/RAW 2004.

The library provides

* the paper's cost models for hyperreconfigurable machines — single-
  and multi-task, switch/DAG/general, synchronous and asynchronous,
  with the full resource/synchronization taxonomy (:mod:`repro.core`);
* exact and heuristic solvers for the optimal-(hyper)reconfiguration
  problems, including the polynomial single-task DP, an exact
  multi-task DP, and the paper's genetic algorithm
  (:mod:`repro.solvers`);
* a cycle-accurate simulator of SHyRA, the paper's example
  architecture, with a micro-assembler and the evaluation applications
  (:mod:`repro.shyra`);
* experiment drivers regenerating every figure and headline number of
  the evaluation section (:mod:`repro.analysis`);
* a batch & streaming serving engine (:mod:`repro.engine`): a
  declarative solver registry with capability tags, canonical solve
  requests with structural deduplication, an LRU result cache, a
  multiprocessing batch executor with per-request timeouts, streaming
  sessions for the online policies, and throughput/latency/cache
  metrics (also exposed as the ``repro batch`` CLI subcommand).

Quickstart (one instance)::

    from repro.shyra.apps import build_counter_program, counter_registers
    from repro.shyra import run_and_trace, shyra_task_system
    from repro.solvers import solve_single_switch

    trace = run_and_trace(build_counter_program(),
                          initial_registers=counter_registers(0, 10))
    result = solve_single_switch(trace.requirements, w=48)
    print(trace.n, result.cost)

Quickstart (serving many instances)::

    from repro.engine import BatchEngine, SolveRequest

    engine = BatchEngine(workers=2)
    requests = [SolveRequest.single(trace.requirements, w=48.0)
                for trace in traces]
    results = engine.solve_batch(requests)
    print(engine.metrics.format_report(engine.cache.stats))
"""

from repro.core import (
    MachineClass,
    MachineModel,
    MultiTaskSchedule,
    RequirementSequence,
    SingleTaskSchedule,
    SwitchSet,
    SwitchUniverse,
    SyncMode,
    Task,
    TaskSystem,
    UploadMode,
    no_hyper_cost,
    switch_cost,
    sync_switch_cost,
)
from repro.engine import (
    BatchEngine,
    SolveRequest,
    StreamHub,
    StreamSession,
    default_registry,
)
from repro.solvers import (
    GAParams,
    solve_mt_exact,
    solve_mt_genetic,
    solve_mt_greedy_merge,
    solve_single_switch,
)

# 2.0.0: the serving-engine release; breaking — WindowScheduler lost
# its unused ``w`` parameter and now predicts from the previous window.
# 2.1.0: the streaming release — lane-packed online cursors
# (step_many), StreamSession.feed_many, StreamHub multiplexing, and
# shared-memory lane fan-out in BatchEngine; fully backward compatible.
__version__ = "2.1.0"

__all__ = [
    "MachineClass",
    "MachineModel",
    "MultiTaskSchedule",
    "RequirementSequence",
    "SingleTaskSchedule",
    "SwitchSet",
    "SwitchUniverse",
    "SyncMode",
    "Task",
    "TaskSystem",
    "UploadMode",
    "no_hyper_cost",
    "switch_cost",
    "sync_switch_cost",
    "GAParams",
    "solve_mt_exact",
    "solve_mt_genetic",
    "solve_mt_greedy_merge",
    "solve_single_switch",
    "BatchEngine",
    "SolveRequest",
    "StreamHub",
    "StreamSession",
    "default_registry",
    "__version__",
]
