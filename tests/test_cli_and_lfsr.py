"""Tests for the command-line interface (repro.cli) and the LFSR app."""

import json

import pytest

from repro.cli import APPS, main
from repro.shyra.apps.lfsr import (
    ACC_REG,
    CYCLES_PER_ITERATION,
    STATE_REGS,
    build_lfsr_program,
    lfsr_registers,
    reference_lfsr_period,
    reference_lfsr_step,
)
from repro.shyra.machine import ShyraMachine


def _as_int(regs, indices):
    return sum(regs[r] << k for k, r in enumerate(indices))


class TestLfsrReference:
    def test_maximal_length_for_all_seeds(self):
        for seed in range(1, 16):
            assert reference_lfsr_period(seed) == 15

    def test_zero_is_fixpoint(self):
        assert reference_lfsr_step(0) == 0

    def test_step_bijective_on_nonzero(self):
        images = {reference_lfsr_step(s) for s in range(1, 16)}
        assert images == set(range(1, 16))


class TestLfsrOnShyra:
    @pytest.mark.parametrize("seed", [1, 7, 15])
    def test_cycles_back_to_seed(self, seed):
        program = build_lfsr_program()
        machine = ShyraMachine(lfsr_registers(seed))
        machine.run(program, record=False, max_cycles=300)
        regs = machine.registers.snapshot()
        assert _as_int(regs, STATE_REGS) == seed
        assert regs[ACC_REG] == 1
        assert machine.cycles == 15 * CYCLES_PER_ITERATION == 135

    def test_states_follow_reference(self):
        program = build_lfsr_program()
        machine = ShyraMachine(lfsr_registers(1))
        records = machine.run(program, max_cycles=300)
        state = 1
        # After the 4th cycle of each iteration the shift is complete.
        for k in range(15):
            state = reference_lfsr_step(state)
            regs = records[k * CYCLES_PER_ITERATION + 3].registers_after
            assert _as_int(regs, STATE_REGS) == state

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            lfsr_registers(0)
        with pytest.raises(ValueError):
            lfsr_registers(16)


class TestCli:
    def test_trace_text(self, capsys):
        assert main(["trace", "counter"]) == 0
        out = capsys.readouterr().out
        assert "n = 110" in out
        assert "MUX" in out

    def test_trace_json(self, capsys):
        assert main(["trace", "adder", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "adder"
        assert payload["n"] == len(payload["requirement_masks"])

    def test_solve(self, capsys):
        assert main(["solve", "lfsr", "--naive"]) == 0
        out = capsys.readouterr().out
        assert "hyperreconfiguration disabled" in out
        assert "single task" in out

    def test_solve_written_semantics(self, capsys):
        assert main(["solve", "parity", "--semantics", "written"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_experiment_fast(self, capsys):
        assert main(["experiment", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "5280" in out and "3761" in out

    def test_all_registered_apps_trace(self, capsys):
        for app in APPS:
            assert main(["trace", app]) == 0
            capsys.readouterr()

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonexistent"])

    def test_stats(self, capsys):
        assert main(["stats", "counter", "--naive"]) == 0
        out = capsys.readouterr().out
        assert "phase segmentation" in out
        assert "period after warm-up: 11" in out

    def test_experiment_archive(self, capsys, tmp_path):
        path = tmp_path / "run.json"
        assert main(["experiment", "--fast", "--archive", str(path)]) == 0
        capsys.readouterr()
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["n"] == 110
