"""Tests for the synthetic workload generators (repro.analysis.workloads),
focused on the scenario-diversity families (markov, adversarial)."""

import pytest

from repro.analysis.workloads import (
    adversarial_workload,
    markov_workload,
    random_task_workloads,
)
from repro.core.switches import SwitchUniverse
from repro.core.task import TaskSystem
from repro.solvers.online import RentOrBuyScheduler, run_online
from repro.solvers.single_dp import solve_single_switch

U = SwitchUniverse.of_size(16)


class TestMarkovWorkload:
    def test_shape_and_range(self):
        seq = markov_workload(U, 50, seed=0)
        assert len(seq) == 50
        assert all(0 <= m <= U.full_mask for m in seq.masks)

    def test_deterministic_under_seed(self):
        a = markov_workload(U, 40, seed=7)
        b = markov_workload(U, 40, seed=7)
        assert a.masks == b.masks

    def test_single_state_never_jumps(self):
        """With one state every mask is a subset of one working set."""
        seq = markov_workload(U, 60, states=1, working_set=0.4, seed=1)
        union = 0
        for m in seq.masks:
            union |= m
        working = markov_workload(U, 1, states=1, working_set=0.4, seed=1)
        # the first drawn mask is a subset of the single working set
        assert all(m & ~union == 0 for m in seq.masks)

    def test_stay_one_is_a_single_phase(self):
        seq = markov_workload(U, 60, states=4, stay=1.0, seed=2)
        dense = markov_workload(U, 60, states=4, stay=1.0, step_density=1.0,
                                seed=2)
        # with step_density=1 and no jumps every step demands the same set
        assert len(set(dense.masks)) == 1
        assert len(seq) == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            markov_workload(U, -1)
        with pytest.raises(ValueError):
            markov_workload(U, 5, states=0)
        with pytest.raises(ValueError):
            markov_workload(U, 5, stay=1.5)

    def test_available_to_random_task_workloads(self):
        system = TaskSystem.from_contiguous(U, [8, 8])
        seqs = random_task_workloads(
            U, list(system.local_masks), 20, kind="markov", seed=0
        )
        assert len(seqs) == 2
        for seq, mask in zip(seqs, system.local_masks):
            assert all(m & ~mask == 0 for m in seq.masks)


class TestAdversarialWorkload:
    def test_two_disjoint_alternating_sides(self):
        seq = adversarial_workload(U, 30, block=1, seed=0)
        sides = sorted(set(seq.masks))
        assert len(sides) == 2
        assert sides[0] & sides[1] == 0
        assert sides[0] and sides[1]
        for i, m in enumerate(seq.masks):
            assert m == seq.masks[i % 2]

    def test_block_length_respected(self):
        seq = adversarial_workload(U, 24, block=4, seed=1)
        for i, m in enumerate(seq.masks):
            assert m == seq.masks[(i // 4) * 4]
            if i >= 4:
                assert (m == seq.masks[i - 4]) == ((i // 4) % 2 == (i - 4) // 4 % 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            adversarial_workload(U, -1)
        with pytest.raises(ValueError):
            adversarial_workload(U, 5, block=0)
        with pytest.raises(ValueError):
            adversarial_workload(SwitchUniverse.of_size(1), 5)

    def test_hurts_narrow_memory_online_policies(self):
        """The family exists to punish policies that install only what
        they just saw: with memory=1 every phase change forces a full
        hyperreconfiguration, while the offline optimum installs both
        sides once.  (Wider memory unions the sides away — that contrast
        is the point of the workload.)"""
        w = float(U.size)
        seq = adversarial_workload(U, 60, block=2, seed=3)
        optimum = solve_single_switch(seq, w=w)
        narrow = run_online(RentOrBuyScheduler(w, memory=1), seq, w)
        wide = run_online(RentOrBuyScheduler(w, memory=4), seq, w)
        assert narrow.cost > 1.3 * optimum.cost
        assert wide.cost < narrow.cost
