"""Tests for SHyRA components, machine, assembler and programs."""

import itertools

import pytest

from repro.shyra.assembler import LUT_OPS, LogicFn, ProgramBuilder
from repro.shyra.components import Demux, Lut, Mux, RegisterFile
from repro.shyra.config import ConfigWord
from repro.shyra.machine import MachineError, ShyraMachine
from repro.shyra.program import HALT, Branch, Microprogram, ProgramStep


class TestLut:
    def test_exhaustive_identity_table(self):
        lut = Lut(0b10101010)  # output = input a
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert lut.evaluate(a, b, c) == a

    def test_exhaustive_majority(self):
        maj_tt = LUT_OPS["MAJ3"].truth_table()
        lut = Lut(maj_tt)
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert lut.evaluate(a, b, c) == int(a + b + c >= 2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            Lut(0).evaluate(2, 0, 0)

    def test_tt_validation(self):
        with pytest.raises(ValueError):
            Lut(300)


class TestRegisterFile:
    def test_initial_zero(self):
        assert RegisterFile().snapshot() == (0,) * 10

    def test_simultaneous_writes(self):
        rf = RegisterFile()
        rf.write_many([(0, 1), (5, 1)])
        assert rf.read(0) == 1 and rf.read(5) == 1

    def test_conflict_detected(self):
        with pytest.raises(ValueError, match="conflict"):
            RegisterFile().write_many([(3, 1), (3, 0)])

    def test_int_roundtrip(self):
        rf = RegisterFile()
        rf.set_int([0, 1, 2, 3], 0b1010)
        assert rf.as_int([0, 1, 2, 3]) == 0b1010
        assert rf.snapshot()[:4] == (0, 1, 0, 1)

    def test_set_int_range(self):
        with pytest.raises(ValueError):
            RegisterFile().set_int([0, 1], 4)

    def test_load_validation(self):
        with pytest.raises(ValueError):
            RegisterFile().load([0] * 9)
        with pytest.raises(ValueError):
            RegisterFile([2] + [0] * 9)


class TestMuxDemux:
    def test_mux_select(self):
        rf = RegisterFile([1, 0, 1, 0, 0, 0, 0, 0, 0, 1])
        assert Mux.select(rf, [0, 2, 9]) == [1, 1, 1]
        assert Mux.select(rf, [1, 3, 4]) == [0, 0, 0]

    def test_demux_routes(self):
        rf = RegisterFile()
        Demux.route(rf, [(4, 1), (7, 1)])
        assert rf.read(4) == 1 and rf.read(7) == 1


class TestMachineStep:
    def test_read_then_write_semantics(self):
        """Both LUTs read cycle-start values even when targets overlap
        sources — r0 is read before being overwritten."""
        machine = ShyraMachine([1] + [0] * 9)
        cfg = ConfigWord(
            lut1_tt=LUT_OPS["NOT"].truth_table(),
            lut2_tt=LUT_OPS["ID"].truth_table(),
            demux1=0,  # NOT r0 -> r0
            demux2=8,  # ID r0 -> r8
            mux=(0, 0, 0, 0, 0, 0),
        )
        machine.step(cfg)
        regs = machine.registers.snapshot()
        assert regs[0] == 0  # NOT 1
        assert regs[8] == 1  # old value of r0

    def test_cycle_counter(self):
        machine = ShyraMachine()
        cfg = ConfigWord()
        machine.step(cfg)
        machine.step(cfg)
        assert machine.cycles == 2


class TestProgramControlFlow:
    def _jump_program(self):
        ID = LUT_OPS["ID"]
        NOT = LUT_OPS["NOT"]
        b = ProgramBuilder()
        # toggle r0 each cycle; loop until r0 == 1
        b.step(lut1=(NOT, [0], 0), lut2=(ID, [1], 8), label="top")
        b.branch_if(0, 0, "top")
        return b.build()

    def test_loop_until_condition(self):
        program = self._jump_program()
        machine = ShyraMachine()
        records = machine.run(program)
        assert len(records) == 1  # r0: 0 -> 1, condition r0==0 fails
        machine2 = ShyraMachine([1] + [0] * 9)
        records2 = machine2.run(program)
        assert len(records2) == 2  # 1 -> 0 (loop) -> 1 (halt)

    def test_halt_target(self):
        ID = LUT_OPS["ID"]
        b = ProgramBuilder()
        b.step(lut1=(ID, [0], 2), lut2=(ID, [1], 8))
        b.branch_if(0, 0, HALT)
        b.step(lut1=(ID, [0], 3), lut2=(ID, [1], 8))
        program = b.build()
        records = ShyraMachine().run(program)
        assert len(records) == 1  # halted before the second step

    def test_max_cycles_guard(self):
        ID, NOT = LUT_OPS["ID"], LUT_OPS["NOT"]
        b = ProgramBuilder()
        b.step(lut1=(ID, [0], 0), lut2=(ID, [1], 8), label="spin")
        b.branch_if(9, 0, "spin")  # r9 stays 0 forever
        program = b.build()
        with pytest.raises(MachineError, match="cycles"):
            ShyraMachine().run(program, max_cycles=50)

    def test_records_capture_configs(self):
        program = self._jump_program()
        records = ShyraMachine().run(program)
        assert records[0].config_word == program[0].config.encode()
        assert records[0].cycle == 1


class TestMicroprogramValidation:
    def test_duplicate_labels(self):
        step = ProgramStep(config=ConfigWord())
        labeled = ProgramStep(config=ConfigWord(), label="x")
        with pytest.raises(ValueError, match="duplicate"):
            Microprogram([labeled, labeled])

    def test_undefined_branch_target(self):
        step = ProgramStep(
            config=ConfigWord(), branch=Branch(0, 1, "nowhere")
        )
        with pytest.raises(ValueError, match="undefined"):
            Microprogram([step])

    def test_reserved_label(self):
        step = ProgramStep(config=ConfigWord(), label=HALT)
        with pytest.raises(ValueError, match="reserved"):
            Microprogram([step])

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            Microprogram([])

    def test_branch_validation(self):
        with pytest.raises(ValueError):
            Branch(11, 0, "x")
        with pytest.raises(ValueError):
            Branch(0, 2, "x")
        with pytest.raises(ValueError):
            Branch(0, 1, "")

    def test_disassemble_mentions_labels_and_branches(self):
        ID = LUT_OPS["ID"]
        b = ProgramBuilder()
        b.step(lut1=(ID, [0], 2), lut2=(ID, [1], 8), label="top", comment="hi")
        b.branch_if(0, 1, "top")
        text = b.build().disassemble()
        assert "top:" in text and "goto top" in text and "# hi" in text


class TestAssembler:
    def test_truth_tables_ignore_unused_inputs(self):
        """Arity-expanded tables are insensitive to unused inputs, so a
        held third selector can never change behaviour."""
        for op in LUT_OPS.values():
            tt = op.truth_table()
            for idx in range(8):
                bits = (idx & 1, (idx >> 1) & 1, (idx >> 2) & 1)
                expected = op.fn(*bits[: op.arity])
                assert (tt >> idx) & 1 == expected

    def test_all_ops_boolean_exhaustive(self):
        for name, op in LUT_OPS.items():
            for bits in itertools.product((0, 1), repeat=op.arity):
                assert op(*bits) in (0, 1), name

    def test_hold_semantics(self):
        ID, NOT = LUT_OPS["ID"], LUT_OPS["NOT"]
        b = ProgramBuilder(hold_unused=True)
        b.step(lut1=(ID, [5], 2), lut2=(ID, [1], 8))
        b.step(lut2=(NOT, [3], 9))  # lut1 unspecified: holds everything
        prog = b.build()
        assert prog[1].config.lut1_tt == prog[0].config.lut1_tt
        assert prog[1].config.demux1 == prog[0].config.demux1
        assert prog[1].config.mux[0:3] == prog[0].config.mux[0:3]

    def test_written_mask_excludes_held_fields(self):
        ID = LUT_OPS["ID"]
        b = ProgramBuilder(hold_unused=True)
        b.step(lut1=(ID, [5], 2), lut2=(ID, [1], 8))
        step = b.build()[0]
        # ID has arity 1: selectors for inputs b, c are not written.
        assert step.written_mask & ConfigWord.field_mask("mux1") == 0
        assert step.written_mask & ConfigWord.field_mask("mux0")
        assert step.written_mask & ConfigWord.field_mask("lut1_tt")

    def test_naive_mode_writes_unused_selectors(self):
        ID = LUT_OPS["ID"]
        b = ProgramBuilder(hold_unused=False)
        b.step(lut1=(ID, [5], 2), lut2=(ID, [1], 8))
        step = b.build()[0]
        assert step.written_mask & ConfigWord.field_mask("mux1")
        assert step.config.mux[1] == 5  # pointed at the first operand

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="inputs"):
            ProgramBuilder().step(
                lut1=(LUT_OPS["AND"], [0], 2), lut2=(LUT_OPS["ID"], [0], 8)
            )

    def test_conflicting_targets_rejected(self):
        ID = LUT_OPS["ID"]
        with pytest.raises(ValueError, match="conflict"):
            ProgramBuilder().step(lut1=(ID, [0], 5), lut2=(ID, [1], 5))

    def test_branch_without_step(self):
        with pytest.raises(ValueError):
            ProgramBuilder().branch_if(0, 1, "x")

    def test_double_branch_rejected(self):
        ID = LUT_OPS["ID"]
        b = ProgramBuilder()
        b.step(lut1=(ID, [0], 2), lut2=(ID, [1], 8), label="top")
        b.branch_if(0, 1, "top")
        with pytest.raises(ValueError, match="already"):
            b.branch_if(0, 0, "top")

    def test_raw_step_claims_all_bits_by_default(self):
        b = ProgramBuilder()
        b.raw_step(ConfigWord())
        assert b.build()[0].written_mask == (1 << 48) - 1

    def test_logic_fn_arity_validation(self):
        with pytest.raises(ValueError):
            LogicFn("BAD", 4, lambda a, b, c, d: 0)

    def test_non_boolean_fn_rejected(self):
        bad = LogicFn("BAD", 1, lambda a: 2)
        with pytest.raises(ValueError):
            bad.truth_table()
