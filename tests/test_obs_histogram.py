"""Histogram suite: bucket geometry, merge algebra, wire transport.

The property the serving stack depends on: fixed bucket boundaries
make merging pure per-bucket addition, so any split of an observation
stream across recorders merges back to exactly the whole-stream
histogram (the bit-identity that lets a sharded pool aggregate to the
single-hub oracle).
"""

import json

import numpy as np
import pytest

from repro.obs.histogram import (
    TIME_SCHEME,
    VALUE_SCHEME,
    BucketScheme,
    Histogram,
    HistogramFamily,
)
from repro.util.rng import make_rng


class TestBucketScheme:
    def test_registry_and_geometry(self):
        assert BucketScheme.by_name("time") is TIME_SCHEME
        assert BucketScheme.by_name("value") is VALUE_SCHEME
        with pytest.raises(ValueError):
            BucketScheme.by_name("nope")
        with pytest.raises(ValueError):
            BucketScheme.geometric("time", start=1.0, factor=2, buckets=4)
        bounds = TIME_SCHEME.bounds
        assert bounds[0] == pytest.approx(1e-6)
        assert np.all(np.diff(bounds) > 0)
        # ~19% relative resolution: consecutive bound ratio is 2**0.25.
        assert bounds[1] / bounds[0] == pytest.approx(2**0.25)

    def test_index_covers_full_range(self):
        assert TIME_SCHEME.index(0.0) == 0
        assert TIME_SCHEME.index(1e-9) == 0
        # Values past the last bound land in the overflow bucket.
        assert TIME_SCHEME.index(1e9) == len(TIME_SCHEME) - 1
        # A bound itself belongs to its own bucket: (lo, hi] semantics
        # via bisect_left on the upper bounds.
        b = TIME_SCHEME.bounds[10]
        assert TIME_SCHEME.index(float(b)) == 10

    def test_immutable_bounds(self):
        with pytest.raises(ValueError):
            TIME_SCHEME.bounds[0] = 99.0


class TestHistogram:
    def test_empty_is_canonical_zero(self):
        h = Histogram(TIME_SCHEME)
        assert h.count == 0
        assert (h.min, h.max, h.mean) == (0.0, 0.0, 0.0)
        assert (h.p50, h.p95, h.p99) == (0.0, 0.0, 0.0)

    def test_basic_stats_and_quantiles(self):
        h = Histogram(TIME_SCHEME)
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for v in values:
            h.observe(v)
        assert h.count == 100
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.1)
        assert h.mean == pytest.approx(np.mean(values))
        # ~19% bucket resolution: quantile within one bucket of truth.
        assert h.p50 == pytest.approx(0.050, rel=0.25)
        assert h.p99 == pytest.approx(0.099, rel=0.25)
        assert h.min <= h.p50 <= h.p95 <= h.p99 <= h.max

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram(TIME_SCHEME)
        h.observe(0.0042)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.0042)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_observe_many_equals_loop(self):
        rng = make_rng(7)
        values = rng.lognormal(-6, 2, size=500)
        a, b = Histogram(TIME_SCHEME), Histogram(TIME_SCHEME)
        for v in values:
            a.observe(float(v))
        b.observe_many(values)
        assert a == b
        b.observe_many([])  # no-op
        assert a == b

    def test_split_merge_equals_whole(self):
        rng = make_rng(13)
        values = rng.lognormal(-5, 3, size=1000)
        whole = Histogram(TIME_SCHEME)
        whole.observe_many(values)
        parts = [Histogram(TIME_SCHEME) for _ in range(7)]
        for i, part in enumerate(parts):
            part.observe_many(values[i::7])
        merged = Histogram(TIME_SCHEME)
        for part in parts:
            merged.merge(part)
        assert merged == whole
        assert merged.key() == whole.key()
        assert merged.total == pytest.approx(whole.total)

    def test_merge_rejects_scheme_mismatch(self):
        with pytest.raises(ValueError):
            Histogram(TIME_SCHEME).merge(Histogram(VALUE_SCHEME))

    def test_merge_empty_is_identity(self):
        h = Histogram(VALUE_SCHEME)
        h.observe(5)
        before = h.key()
        h.merge(Histogram(VALUE_SCHEME))
        assert h.key() == before

    def test_wire_round_trip_is_json_safe(self):
        h = Histogram(VALUE_SCHEME)
        h.observe_many([1, 2, 3, 1000, 2.5e9])
        wire = json.loads(json.dumps(h.to_wire()))
        back = Histogram.from_wire(wire)
        assert back == h
        assert back.snapshot() == h.snapshot()
        # Sparse: only touched buckets travel.
        assert len(wire["buckets"]) <= 5

    def test_clone_is_independent(self):
        h = Histogram(TIME_SCHEME)
        h.observe(0.5)
        c = h.clone()
        c.observe(0.5)
        assert h.count == 1 and c.count == 2

    def test_overflow_bucket_quantile(self):
        h = Histogram(VALUE_SCHEME)
        top = float(VALUE_SCHEME.bounds[-1])
        h.observe(top * 8)  # overflow bucket
        assert h.p99 == pytest.approx(top * 8)


class TestHistogramFamily:
    def test_label_routing_and_aggregate(self):
        fam = HistogramFamily("lat", TIME_SCHEME, help="x")
        fam.observe(0.001, solver="a")
        fam.observe(0.002, solver="a")
        fam.observe(0.100, solver="b")
        assert len(fam) == 2
        assert fam.labels(solver="a").count == 2
        agg = fam.aggregate()
        assert agg.count == 3
        assert agg.max == pytest.approx(0.100)

    def test_wire_round_trip_and_shard_tagging(self):
        fam = HistogramFamily("lat", TIME_SCHEME)
        fam.observe(0.01, solver="a")
        merged = HistogramFamily("lat", TIME_SCHEME)
        merged.merge_wire(fam.to_wire(), extra_labels={"shard": 0})
        merged.merge_wire(fam.to_wire(), extra_labels={"shard": 1})
        series = dict(
            (tuple(sorted(lbl.items())), h) for lbl, h in merged.series()
        )
        assert len(series) == 2
        key0 = (("shard", "0"), ("solver", "a"))
        assert series[key0].count == 1
        assert merged.aggregate().count == 2

    def test_from_wire_round_trip(self):
        fam = HistogramFamily("steps", VALUE_SCHEME, help="per chunk")
        fam.observe(64)
        fam.observe(128)
        back = HistogramFamily.from_wire(
            json.loads(json.dumps(fam.to_wire()))
        )
        assert back.name == "steps"
        assert back.help == "per chunk"
        assert back.aggregate() == fam.aggregate()

    def test_from_wire_aggregate_helper(self):
        fam = HistogramFamily("lat", TIME_SCHEME)
        fam.observe(0.01, shard="0")
        fam.observe(0.02, shard="1")
        agg = Histogram.from_wire_aggregate(fam.to_wire())
        assert agg == fam.aggregate()
        empty = Histogram.from_wire_aggregate(None)
        assert empty.count == 0
