"""Tests for the asynchronous MT-Switch solver (repro.solvers.mt_async)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import RequirementSequence
from repro.core.mt_cost import async_switch_cost
from repro.core.schedule import SingleTaskSchedule
from repro.core.switches import SwitchUniverse
from repro.core.task import TaskSystem
from repro.solvers.exhaustive import enumerate_single_schedules
from repro.solvers.mt_async import async_vs_sync_gap, solve_mt_async

U = SwitchUniverse.of_size(8)


def _instance(masks_a, masks_b):
    system = TaskSystem.from_contiguous(U, [4, 4], names=["A", "B"])
    seqs = [
        RequirementSequence(U, [m & 0x0F for m in masks_a]),
        RequirementSequence(U, [(m & 0x0F) << 4 for m in masks_b]),
    ]
    return system, seqs


small = st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=7)


class TestSolveMtAsync:
    def test_per_task_costs_reported(self):
        system, seqs = _instance([1, 2], [15, 15])
        res = solve_mt_async(system, seqs)
        assert res.optimal
        assert len(res.per_task_costs) == 2
        assert res.cost == max(res.per_task_costs)
        assert res.critical_task == 1  # dense task dominates

    def test_w_added(self):
        system, seqs = _instance([1], [1])
        base = solve_mt_async(system, seqs).cost
        assert solve_mt_async(system, seqs, w=7.0).cost == base + 7.0

    def test_arity_check(self):
        system, _ = _instance([1], [1])
        with pytest.raises(ValueError):
            solve_mt_async(system, [])

    def test_negative_w_rejected(self):
        system, seqs = _instance([1], [1])
        with pytest.raises(ValueError):
            solve_mt_async(system, seqs, w=-1)

    def test_unaligned_lengths_allowed(self):
        system, _ = _instance([1], [1])
        seqs = [
            RequirementSequence(U, [1, 2, 3]),
            RequirementSequence(U, [16]),
        ]
        res = solve_mt_async(system, seqs)
        assert res.optimal

    def test_empty_task_sequence(self):
        system, _ = _instance([1], [1])
        seqs = [RequirementSequence(U, []), RequirementSequence(U, [16, 32])]
        res = solve_mt_async(system, seqs)
        assert res.per_task_costs[0] == 0.0

    @settings(deadline=None, max_examples=25)
    @given(small, st.data())
    def test_optimal_against_bruteforce(self, masks_a, data):
        """The async objective decomposes; verify against enumerating
        every pair of per-task partitions."""
        masks_b = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=15),
                min_size=len(masks_a),
                max_size=len(masks_a),
            )
        )
        system, seqs = _instance(masks_a, masks_b)
        res = solve_mt_async(system, seqs)
        n = len(masks_a)
        best = float("inf")
        for sa in enumerate_single_schedules(n):
            for sb in enumerate_single_schedules(n):
                cost = async_switch_cost(system, seqs, [sa, sb])
                best = min(best, cost)
        assert res.cost == pytest.approx(best)


class TestAsyncVsSyncGap:
    def test_gap_keys_and_sanity(self):
        system, seqs = _instance([1, 2, 3, 4], [8, 4, 2, 1])
        gap = async_vs_sync_gap(system, seqs)
        assert set(gap) == {"async_optimal", "sync_same_schedule", "ratio"}
        assert gap["ratio"] > 0

    def test_requires_alignment(self):
        system, _ = _instance([1], [1])
        seqs = [
            RequirementSequence(U, [1, 2]),
            RequirementSequence(U, [16]),
        ]
        with pytest.raises(ValueError, match="aligned"):
            async_vs_sync_gap(system, seqs)
