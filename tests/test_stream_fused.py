"""Equivalence suite for the fused multi-cursor sweep kernel.

The scalar cursors remain the correctness oracle; the fused
``sweep_many`` path — epoch-synchronous struct-of-arrays sweeps over
whole fleets inside :meth:`StreamHub.feed_many`, batched trigger
replay included — must reproduce the sequential per-session path (and
therefore the scalar oracle) *bit for bit*: across mixed universe
widths straddling the lane boundary, mixed policies and
hyper-parameters, chunkings from single steps to 4096-step blocks,
ragged per-session chunk lengths, and adversarial trigger-every-step
streams.  The suite also pins the satellite contracts of the fused
PRs: batched ``PackedStream.extend_many`` vs per-stream ``extend``
(ragged lengths included), the O(1) ``total_steps``/``total_hypers``
counters, the galloping-scan bound tunables, and shard-placement
independence through the fused path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packed import PackedStream, masks_to_lanes
from repro.core.switches import SwitchUniverse
from repro.engine.stream import StreamHub, StreamSession
from repro.serve.shard import ShardPool
from repro.solvers import online
from repro.solvers.online import (
    RentOrBuyScheduler,
    ScalarOnly,
    WindowScheduler,
)
from repro.util.rng import make_rng

#: Universe sizes straddling the uint64 lane boundary.
BOUNDARY_WIDTHS = [63, 64, 65]


@pytest.fixture(autouse=True)
def force_epoch_kernel(request, monkeypatch):
    """Pin the small-stack crossover to 0 so every fleet in this suite
    drives the epoch kernel — the adversarial cases exist to cover it,
    and production fleets below ``SMALL_STACK_SESSIONS`` would
    otherwise delegate to per-cursor ``step_many``.  Tests marked
    ``default_crossover`` keep the production threshold."""
    if "default_crossover" in request.keywords:
        return
    monkeypatch.setattr(online, "SMALL_STACK_SESSIONS", 0)


def _drift_masks(width, n, seed, *, phase=40, flip=0.05):
    """Working-set stream with drift — calm stretches + occasional
    trigger steps, the shape the fused kernel is built around."""
    rng = make_rng(seed)
    full = (1 << width) - 1
    nbytes = (width + 7) // 8

    def _random_mask():
        return int.from_bytes(rng.bytes(nbytes), "little") & full

    working = _random_mask()
    masks = []
    for i in range(n):
        if phase and i and i % phase == 0:
            working = _random_mask()
        mask = working
        if rng.random() < flip:
            mask |= 1 << int(rng.integers(0, width))
        masks.append(mask & full)
    return masks


def _mixed_scheduler(idx, w, k=5):
    if idx % 3 == 2:
        return WindowScheduler(k=k)
    return RentOrBuyScheduler(
        w, alpha=(0.5, 2.0)[idx % 2], memory=2 + idx % 3
    )


def _run_hub(fleet, *, fused, chunk_sizes):
    """Feed every session the same chunking; return costs + schedules."""
    hub = StreamHub(fused=fused)
    for sid, (universe, w, scheduler, _masks, lanes) in fleet.items():
        hub.open(scheduler, universe, w, session_id=sid)
    pos = {sid: 0 for sid in fleet}
    for size in chunk_sizes:
        chunks = {}
        for sid, (_u, _w, _s, _m, lanes) in fleet.items():
            lo = pos[sid]
            if lo >= len(lanes):
                continue
            chunks[sid] = lanes[lo : lo + size]
            pos[sid] = lo + len(chunks[sid])
        if chunks:
            hub.feed_many(chunks)
    runs = hub.finish_all()
    return (
        {sid: run.cost for sid, run in runs.items()},
        {sid: run.schedule.hyper_steps for sid, run in runs.items()},
        hub,
    )


def _oracle(universe, w, scheduler, masks):
    session = StreamSession(ScalarOnly(scheduler), universe, w)
    for mask in masks:
        session.feed(mask)
    return session.cost, session.finish().schedule.hyper_steps


@st.composite
def fused_fleets(draw):
    """A small mixed fleet plus a chunking schedule."""
    n = draw(st.integers(min_value=1, max_value=48))
    fleet = {}
    for idx in range(draw(st.integers(min_value=2, max_value=5))):
        width = draw(
            st.one_of(
                st.sampled_from(BOUNDARY_WIDTHS),
                st.integers(min_value=1, max_value=100),
            )
        )
        universe = SwitchUniverse.of_size(width)
        w = float(draw(st.integers(min_value=1, max_value=10)))
        kind = draw(st.sampled_from(["rent_or_buy", "window"]))
        if kind == "rent_or_buy":
            scheduler = RentOrBuyScheduler(
                w,
                alpha=draw(st.sampled_from([0.5, 1.0, 3.0])),
                memory=draw(st.integers(min_value=1, max_value=5)),
            )
        else:
            scheduler = WindowScheduler(
                k=draw(st.integers(min_value=1, max_value=7))
            )
        mask_st = st.integers(min_value=0, max_value=universe.full_mask)
        style = draw(st.sampled_from(["random", "calm", "drift"]))
        if style == "random":
            masks = [draw(mask_st) for _ in range(n)]
        elif style == "calm":
            masks = [draw(mask_st)] * n
        else:
            masks = _drift_masks(
                width, n, seed=draw(st.integers(0, 1000)), phase=8
            )
        fleet[f"u{idx}"] = (
            universe, w, scheduler, masks, masks_to_lanes(masks, width)
        )
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=17), min_size=1, max_size=12
        )
    )
    return fleet, sizes


class TestFusedHubEquivalence:
    @settings(deadline=None, max_examples=60)
    @given(fused_fleets())
    def test_fused_equals_sequential_equals_scalar(self, case):
        """Costs and hyper schedules are identical on the fused path,
        the per-session path, and the scalar oracle, for every fleet
        mix and chunking hypothesis finds."""
        fleet, sizes = case
        # Pad the chunking so every session's stream is fully consumed.
        total = max(len(m) for *_rest, m, _l in
                    ((u, w, s, m, l) for u, w, s, m, l in fleet.values()))
        sizes = list(sizes) + [total]
        fused_costs, fused_scheds, _ = _run_hub(
            fleet, fused=True, chunk_sizes=sizes
        )
        seq_costs, seq_scheds, _ = _run_hub(
            fleet, fused=False, chunk_sizes=sizes
        )
        assert fused_costs == seq_costs
        assert fused_scheds == seq_scheds
        for sid, (universe, w, scheduler, masks, _lanes) in fleet.items():
            cost, sched = _oracle(universe, w, scheduler, masks)
            assert fused_costs[sid] == cost
            assert fused_scheds[sid] == sched

    @pytest.mark.parametrize("width", BOUNDARY_WIDTHS)
    @pytest.mark.parametrize("chunk", [1, 3, 64, 777, 4096])
    def test_chunk_size_sweep_at_lane_boundary(self, width, chunk):
        """Single-step through 4096-step chunkings at 63/64/65 switches
        all reproduce the scalar oracle bit for bit."""
        n = 4096
        universe = SwitchUniverse.of_size(width)
        w = float(width)

        def scheduler_for(idx):
            # Two RoB sessions share memory (same history → same fused
            # group; alpha may differ inside it), two windows share k.
            if idx < 2:
                return RentOrBuyScheduler(
                    w, alpha=(0.5, 2.0)[idx], memory=3
                )
            return WindowScheduler(k=64)

        fleet = {}
        for idx in range(4):
            masks = _drift_masks(width, n, seed=idx * 7 + width, phase=300)
            fleet[f"u{idx}"] = (
                universe, w, scheduler_for(idx), masks,
                masks_to_lanes(masks, width),
            )
        sizes = [chunk] * ((n + chunk - 1) // chunk)
        fused_costs, fused_scheds, hub = _run_hub(
            fleet, fused=True, chunk_sizes=sizes
        )
        for idx, (sid, (u, _w, _s, masks, _l)) in enumerate(fleet.items()):
            cost, sched = _oracle(u, w, scheduler_for(idx), masks)
            assert fused_costs[sid] == cost
            assert fused_scheds[sid] == sched
        # The kernel actually engaged somewhere on calm stretches
        # (wide chunks on drifting streams always trigger; narrow
        # ones mostly don't).
        m = hub.metrics
        assert m.stream_fused + m.stream_fused_fallback > 0

    def test_trigger_heavy_stream_fuses_with_batched_replay(self):
        """Adversarial streams that misfit every chunk: batched trigger
        replay keeps every session inside the kernel — zero per-session
        fallback — and stays bit-identical to the oracle."""
        width = 64
        universe = SwitchUniverse.of_size(width)
        w = 4.0
        n, chunk = 256, 8
        fleet = {}
        for idx in range(4):
            # Alternate two disjoint masks: served never covers the
            # next requirement, so every chunk used to escape the old
            # quiet-only sweep.
            a = 0x5555555555555555 >> idx
            b = ~a & universe.full_mask
            masks = [a if i % 2 == 0 else b for i in range(n)]
            fleet[f"u{idx}"] = (
                universe,
                w,
                RentOrBuyScheduler(w, alpha=0.5, memory=1),
                masks,
                masks_to_lanes(masks, width),
            )
        sizes = [chunk] * (n // chunk)
        fused_costs, fused_scheds, hub = _run_hub(
            fleet, fused=True, chunk_sizes=sizes
        )
        assert hub.metrics.stream_fused == len(fleet) * len(sizes)
        assert hub.metrics.stream_fused_fallback == 0
        assert hub.metrics.stream_replay_epochs > 0
        assert hub.metrics.stream_replay_triggers > 0
        for sid, (u, _w, s, masks, _l) in fleet.items():
            cost, sched = _oracle(
                u, w, RentOrBuyScheduler(w, alpha=0.5, memory=1), masks
            )
            assert fused_costs[sid] == cost
            assert fused_scheds[sid] == sched
        # Replay telemetry counts real installs: every session installs
        # at least once, and the counter is bounded by total steps.
        total_installs = sum(len(s) for s in fused_scheds.values())
        assert hub.metrics.stream_replay_triggers == total_installs

    def test_fused_flag_off_never_records_fused(self):
        width = 66
        universe = SwitchUniverse.of_size(width)
        w = 3.0
        masks = _drift_masks(width, 40, seed=5)
        lanes = masks_to_lanes(masks, width)
        hub = StreamHub(fused=False)
        for idx in range(3):
            hub.open(
                RentOrBuyScheduler(w, alpha=1.0, memory=2),
                universe,
                w,
                session_id=f"u{idx}",
            )
        hub.feed_many({f"u{idx}": lanes for idx in range(3)})
        assert hub.metrics.stream_fused == 0
        assert hub.metrics.stream_fused_fallback == 0
        assert hub.last_fused == (0, 0, (), 0, 0)


class TestBatchedTriggerReplay:
    """Adversarial epoch-replay cases: hectic phases, mixed fleets,
    ragged chunk lengths.  Every case pins fused ≡ sequential ≡ scalar."""

    @pytest.mark.parametrize("width", BOUNDARY_WIDTHS)
    def test_every_step_window_trigger(self, width):
        """WindowScheduler(k=1) installs on every step — the densest
        possible trigger epoch sequence."""
        universe = SwitchUniverse.of_size(width)
        w = 2.0
        n, chunk = 160, 32
        fleet = {}
        rng = make_rng(width)
        for idx in range(3):
            masks = [
                int.from_bytes(rng.bytes((width + 7) // 8), "little")
                & universe.full_mask
                for _ in range(n)
            ]
            fleet[f"u{idx}"] = (
                universe, w, WindowScheduler(k=1), masks,
                masks_to_lanes(masks, width),
            )
        sizes = [chunk] * (n // chunk)
        fused_costs, fused_scheds, hub = _run_hub(
            fleet, fused=True, chunk_sizes=sizes
        )
        assert hub.metrics.stream_fused == len(fleet) * len(sizes)
        assert hub.metrics.stream_fused_fallback == 0
        # k=1 cadence fires every step.
        assert hub.metrics.stream_replay_triggers == len(fleet) * n
        for sid, (u, _w, _s, masks, _l) in fleet.items():
            cost, sched = _oracle(u, w, WindowScheduler(k=1), masks)
            assert fused_costs[sid] == cost
            assert fused_scheds[sid] == sched
            assert len(sched) == n

    def test_mixed_quiet_and_hectic_sessions_one_group(self):
        """Calm and every-step-trigger sessions sharing one group key
        sweep together: the quiet rows coast to the epoch horizon while
        the hectic rows replay, with no cross-contamination."""
        width = 65
        universe = SwitchUniverse.of_size(width)
        w = 6.0
        n, chunk = 240, 48
        scheduler = RentOrBuyScheduler(w, alpha=0.5, memory=1)
        a = (0x5555555555555555 << 1) & universe.full_mask
        b = ~a & universe.full_mask
        fleet = {}
        for idx in range(6):
            if idx % 2 == 0:
                masks = [a] * n  # quiet after the first install
            else:
                masks = [a if i % 2 == 0 else b for i in range(n)]
            fleet[f"u{idx}"] = (
                universe,
                w,
                RentOrBuyScheduler(w, alpha=0.5, memory=1),
                masks,
                masks_to_lanes(masks, width),
            )
        sizes = [chunk] * (n // chunk)
        fused_costs, fused_scheds, hub = _run_hub(
            fleet, fused=True, chunk_sizes=sizes
        )
        seq_costs, seq_scheds, _ = _run_hub(
            fleet, fused=False, chunk_sizes=sizes
        )
        assert fused_costs == seq_costs
        assert fused_scheds == seq_scheds
        assert hub.metrics.stream_fused == len(fleet) * len(sizes)
        assert hub.metrics.stream_fused_fallback == 0
        # All six sessions share (type, lanes, history): one group.
        assert hub.last_fused[2] == (len(fleet),)
        for sid, (u, _w, _s, masks, _l) in fleet.items():
            cost, sched = _oracle(
                u, w, RentOrBuyScheduler(w, alpha=0.5, memory=1), masks
            )
            assert fused_costs[sid] == cost
            assert fused_scheds[sid] == sched

    @pytest.mark.parametrize("width", BOUNDARY_WIDTHS)
    def test_ragged_chunk_lengths_fuse_in_one_group(self, width):
        """Sessions with different chunk lengths in the same feed_many
        call fuse under the length-free group key — including lone
        sessions that previously short-circuited — and reproduce the
        oracle bit for bit."""
        universe = SwitchUniverse.of_size(width)
        w = float(width)
        lengths = [37, 64, 101, 5, 128]
        scheduler_args = dict(alpha=1.0, memory=3)
        fleet = {}
        for idx, total in enumerate(lengths):
            masks = _drift_masks(width, total, seed=idx * 11 + width, phase=9)
            fleet[f"u{idx}"] = (
                universe,
                w,
                RentOrBuyScheduler(w, **scheduler_args),
                masks,
                masks_to_lanes(masks, width),
            )
        for fused in (True, False):
            hub = StreamHub(fused=fused)
            for sid, (u, _w, s, _m, _l) in fleet.items():
                hub.open(s, u, w, session_id=sid)
            pos = {sid: 0 for sid in fleet}
            # Ragged rounds: session idx advances by a per-session
            # stride, so each feed_many carries mixed chunk lengths.
            strides = [7, 16, 23, 1, 31]
            while any(pos[sid] < len(fleet[sid][3]) for sid in fleet):
                chunks = {}
                for idx, sid in enumerate(fleet):
                    lo = pos[sid]
                    ln = fleet[sid][4]
                    if lo >= len(ln):
                        continue
                    chunks[sid] = ln[lo : lo + strides[idx]]
                    pos[sid] = lo + len(chunks[sid])
                hub.feed_many(chunks)
            if fused:
                assert hub.metrics.stream_fused > 0
                assert hub.metrics.stream_fused_fallback == 0
                # The final round is a lone leftover session — the old
                # singleton short-circuit would have skipped it.
                assert max(hub.last_fused[2], default=0) >= 1
            runs = hub.finish_all()
            for sid, (u, _w, _s, masks, _l) in fleet.items():
                cost, sched = _oracle(
                    u, w, RentOrBuyScheduler(w, **scheduler_args), masks
                )
                assert runs[sid].cost == cost
                assert runs[sid].schedule.hyper_steps == sched

    def test_lone_session_group_fuses(self):
        """A single-session feed_many goes through the kernel: the
        lone-session short-circuit is gone."""
        width = 64
        universe = SwitchUniverse.of_size(width)
        w = 3.0
        masks = _drift_masks(width, 200, seed=3, phase=25)
        lanes = masks_to_lanes(masks, width)
        hub = StreamHub(fused=True)
        sid = hub.open(
            RentOrBuyScheduler(w, alpha=1.0, memory=2), universe, w
        )
        for lo in range(0, 200, 50):
            hub.feed_many({sid: lanes[lo : lo + 50]})
        assert hub.metrics.stream_fused == 4
        assert hub.metrics.stream_fused_fallback == 0
        cost, sched = _oracle(
            universe, w, RentOrBuyScheduler(w, alpha=1.0, memory=2), masks
        )
        run = hub.finish(sid)
        assert run.cost == cost
        assert run.schedule.hyper_steps == sched

    @pytest.mark.default_crossover
    def test_small_stack_crossover_is_equivalent(self):
        """At the production threshold, small groups delegate to
        per-cursor ``step_many`` inside the sweep contract: the hub
        still reports every session fused (no fallback branch), replay
        telemetry still counts real installs, and decisions match the
        oracle bit for bit."""
        assert online.SMALL_STACK_SESSIONS > 0
        width = 65
        universe = SwitchUniverse.of_size(width)
        w = 4.0
        n, chunk = 192, 48
        fleet = {}
        for idx in range(online.SMALL_STACK_SESSIONS):
            masks = _drift_masks(width, n, seed=idx, phase=9)
            fleet[f"u{idx}"] = (
                universe,
                w,
                RentOrBuyScheduler(w, alpha=1.0, memory=2),
                masks,
                masks_to_lanes(masks, width),
            )
        sizes = [chunk] * (n // chunk)
        fused_costs, fused_scheds, hub = _run_hub(
            fleet, fused=True, chunk_sizes=sizes
        )
        assert hub.metrics.stream_fused == len(fleet) * len(sizes)
        assert hub.metrics.stream_fused_fallback == 0
        total_installs = sum(len(s) for s in fused_scheds.values())
        assert hub.metrics.stream_replay_triggers == total_installs
        assert hub.metrics.stream_replay_epochs > 0
        for sid, (u, _w, _s, masks, _l) in fleet.items():
            cost, sched = _oracle(
                u, w, RentOrBuyScheduler(w, alpha=1.0, memory=2), masks
            )
            assert fused_costs[sid] == cost
            assert fused_scheds[sid] == sched


class TestExtendMany:
    @settings(deadline=None, max_examples=60)
    @given(
        st.integers(min_value=1, max_value=130),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    def test_extend_many_matches_per_stream_extend(
        self, width, history, chunk, streams, seed
    ):
        """Batched extend over S streams is observably identical to
        per-stream extend: totals, window unions, tail rows, counts."""
        rng = make_rng(seed)
        L = (width + 63) // 64
        block = rng.integers(
            0, 1 << 63, size=(streams, chunk, L), dtype=np.uint64
        )
        # Seed each stream with a distinct prefix so ring state differs.
        prefixes = [
            rng.integers(
                0, 1 << 63, size=(int(rng.integers(0, 2 * history + 2)), L),
                dtype=np.uint64,
            )
            for _ in range(streams)
        ]
        batched = [PackedStream(width, history=history) for _ in range(streams)]
        solo = [PackedStream(width, history=history) for _ in range(streams)]
        for s in range(streams):
            if len(prefixes[s]):
                batched[s].extend(prefixes[s])
                solo[s].extend(prefixes[s])
        PackedStream.extend_many(batched, block)
        for s in range(streams):
            solo[s].extend(block[s])
        for s in range(streams):
            assert batched[s].n == solo[s].n
            assert batched[s].union_mask == solo[s].union_mask
            assert batched[s].union_size == solo[s].union_size
            if history:
                assert (
                    batched[s].window_union_mask()
                    == solo[s].window_union_mask()
                )
                tail = min(batched[s].n, history)
                np.testing.assert_array_equal(
                    batched[s].tail_rows(tail), solo[s].tail_rows(tail)
                )


class TestTotalsCounters:
    def test_running_counters_match_per_session_sums(self):
        width = 80
        universe = SwitchUniverse.of_size(width)
        w = 5.0
        hub = StreamHub()
        lanes = {}
        for idx in range(5):
            sid = hub.open(
                _mixed_scheduler(idx, w), universe, w, session_id=f"u{idx}"
            )
            lanes[sid] = masks_to_lanes(
                _drift_masks(width, 30 + idx * 7, seed=idx), width
            )
        for lo in range(0, 60, 10):
            hub.feed_many({
                sid: ln[lo : lo + 10]
                for sid, ln in lanes.items()
                if lo < len(ln)
            })
        expect_steps = sum(len(ln) for ln in lanes.values())
        assert hub.total_steps == expect_steps
        assert hub.total_hypers == sum(
            hub.session(sid).hyper_count for sid in lanes
        )
        # Closing with retained runs keeps the totals; the counters
        # must agree with what a re-sum would have said.
        runs = hub.finish_all()
        assert hub.total_steps == sum(r.schedule.n for r in runs.values())
        assert hub.total_hypers == sum(r.schedule.r for r in runs.values())

    def test_counters_drop_on_unretained_finish(self):
        width = 40
        universe = SwitchUniverse.of_size(width)
        w = 2.0
        hub = StreamHub(retain_runs=False)
        sid = hub.open(RentOrBuyScheduler(w, alpha=1.0), universe, w)
        hub.feed_many({
            sid: masks_to_lanes(_drift_masks(width, 25, seed=1), width)
        })
        assert hub.total_steps == 25
        hub.finish(sid)
        assert hub.total_steps == 0
        assert hub.total_hypers == 0


class TestScanBoundTunables:
    def test_scan_bounds_never_change_decisions(self):
        width = 72
        universe = SwitchUniverse.of_size(width)
        w = float(width)
        masks = _drift_masks(width, 600, seed=9, phase=37)
        lanes = masks_to_lanes(masks, width)
        reference = None
        for scan_min, scan_max in [
            (None, None), (1, 1), (1, 8), (5, 4096), (4096, 4096),
        ]:
            scheduler = RentOrBuyScheduler(
                w, alpha=1.5, memory=3,
                scan_min=scan_min, scan_max=scan_max,
            )
            session = StreamSession(scheduler, universe, w)
            for lo in range(0, len(lanes), 50):
                session.feed_many(lanes[lo : lo + 50])
            run = session.finish()
            key = (run.cost, run.schedule.hyper_steps)
            if reference is None:
                reference = key
            assert key == reference
        cost, sched = _oracle(
            universe, w, RentOrBuyScheduler(w, alpha=1.5, memory=3), masks
        )
        assert reference == (cost, sched)

    def test_scan_bound_validation(self):
        with pytest.raises(ValueError):
            RentOrBuyScheduler(4.0, scan_min=0)
        with pytest.raises(ValueError):
            RentOrBuyScheduler(4.0, scan_min=16, scan_max=8)
        # A lone small scan_max caps scan_min implicitly.
        scheduler = RentOrBuyScheduler(4.0, scan_max=2)
        cursor = scheduler.batched_cursor(64)
        assert cursor.scan_max == 2
        assert cursor.scan_min <= 2


class TestShardPlacementIndependence:
    def test_fused_pool_costs_independent_of_shard_count(self):
        """The fused drain path must keep the serving invariant: shard
        placement changes speed, never answers — and the pool metrics
        see the shard hubs' fused/fallback counts."""
        width = 96
        universe = SwitchUniverse.of_size(width)
        w = float(width)
        sessions, steps, chunk = 24, 360, 40
        feeds = {
            f"u{s}": masks_to_lanes(
                _drift_masks(width, steps, seed=s, phase=120, flip=0.01),
                width,
            )
            for s in range(sessions)
        }
        reference = None
        for shards in (1, 2, 5):
            with ShardPool(shards) as pool:
                for s, sid in enumerate(feeds):
                    pool.open(
                        _mixed_scheduler(s, w, k=90),
                        universe,
                        w,
                        session_id=sid,
                    )
                for lo in range(0, steps, chunk):
                    pool.feed_many({
                        sid: ln[lo : lo + chunk]
                        for sid, ln in feeds.items()
                    })
                fused = pool.metrics.stream_fused
                fallback = pool.metrics.stream_fused_fallback
                costs = {
                    sid: run.cost
                    for sid, run in pool.finish_all().items()
                }
            # Lone sessions fuse too now, so every eligible chunk goes
            # through the kernel regardless of placement: the split is
            # exact and placement-invariant.
            assert fused == sessions * (steps // chunk)
            assert fallback == 0
            if reference is None:
                reference = costs
            else:
                assert costs == reference
