"""Wire protocol v2: binary frames, intern arenas, negotiation.

Three layers of pinning:

* **golden frames** (``tests/data/wire_v1_frames.jsonl``,
  ``wire_v2_raw.bin``, ``wire_v2_interned.bin``) — the byte-exact wire
  form of canonical v1 and v2 frames.  Re-encoding the same inputs must
  reproduce the stored bytes bit for bit (a codec change that silently
  breaks old clients fails here first).  The binary fixtures are
  non-deflated on purpose: zlib output may vary across library
  versions, so compression is pinned by round-trip properties instead.
* **property round-trips** — raw/interned × deflate binary frames
  survive encode → parse → resolve across universe widths spanning
  every lane-count boundary.
* **served behavior** — a v1-only client completes the full
  open/feed/close/stats flow against a v2 server unchanged; v2 clients
  (raw, interned, deflated, pipelined) produce bit-identical costs to
  the single-hub oracle over thread *and* process shard pools; epoch
  drift and malformed binary frames earn error replies on a surviving
  connection.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packed import lane_count, masks_to_lanes
from repro.core.switches import SwitchUniverse
from repro.engine.intern import MaskArena, arena_for, arena_stats
from repro.engine.stream import StreamSession
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ARENA_PROBE_ROWS,
    BIN_FLAG_DEFLATE,
    BIN_FLAG_INTERNED,
    BIN_HEADER,
    BIN_MAGIC,
    BIN_OP_FEED,
    BIN_VERSION,
    ClientArena,
    ProtocolError,
    encode_feed_bin,
    encode_frame,
    encode_mask_chunk,
    parse_bin_feed,
    policy_from_spec,
)
from repro.serve.server import ServeConfig, ServerThread

DATA = pathlib.Path(__file__).parent / "data"

#: Universe sizes straddling every lane-count boundary.
BOUNDARY_SIZES = [1, 7, 63, 64, 65, 127, 128, 129, 150, 200]

masks_for = st.sampled_from(BOUNDARY_SIZES).flatmap(
    lambda width: st.tuples(
        st.just(width),
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            min_size=1,
            max_size=24,
        ),
    )
)


def _split_frames(blob: bytes) -> list[tuple[int, int, bytes]]:
    """Split concatenated binary frames into (opcode, flags, payload)."""
    frames = []
    pos = 0
    while pos < len(blob):
        magic, version, opcode, flags, length = BIN_HEADER.unpack_from(
            blob, pos
        )
        assert magic == BIN_MAGIC and version == BIN_VERSION
        pos += BIN_HEADER.size
        frames.append((opcode, flags, blob[pos : pos + length]))
        pos += length
    return frames


# ---------------------------------------------------------------------------
# Golden fixtures: the canonical frames and their byte-exact builders
# ---------------------------------------------------------------------------

#: The v1 fixture conversation (dict insertion order is the wire order).
V1_FRAMES = [
    {"op": "open", "policy": "rent_or_buy", "width": 8, "w": 4.0,
     "session": "golden", "alpha": 1.0, "memory": 4},
    {"op": "feed", "session": "golden", "count": 3,
     "masks": encode_mask_chunk([0b101, 0b11, 0b10000000], 8),
     "encoding": "b64"},
    {"op": "feed", "session": "golden", "count": 2,
     "masks": encode_mask_chunk([0b1, 0b101], 8, encoding="hex"),
     "encoding": "hex"},
    {"op": "close", "session": "golden"},
    {"op": "stats"},
]

#: Masks behind the v2 fixtures (width 96 = two lanes per row).
V2_WIDTH = 96
V2_RAW_MASKS = [0b101, (1 << 95) | 0b11, 1 << 64]
V2_INTERNED_CHUNKS = [
    [0b111, 0b101, 0b111, (1 << 70) | 1],   # 3 fresh rows, one repeat
    [0b101, 0b101, (1 << 70) | 1, 1 << 90],  # 1 fresh row, three hits
]


def v1_fixture_bytes() -> bytes:
    return b"".join(encode_frame(frame) for frame in V1_FRAMES)


def v2_raw_fixture_bytes() -> bytes:
    lanes = masks_to_lanes(V2_RAW_MASKS, V2_WIDTH)
    return encode_feed_bin("golden", lanes, V2_WIDTH, deflate=False)


def v2_interned_fixture_bytes() -> bytes:
    arena = ClientArena(V2_WIDTH)
    return b"".join(
        encode_feed_bin(
            "golden",
            masks_to_lanes(chunk, V2_WIDTH),
            V2_WIDTH,
            arena=arena,
            deflate=False,
        )
        for chunk in V2_INTERNED_CHUNKS
    )


class TestGoldenFrames:
    def test_v1_frames_byte_exact(self):
        assert (DATA / "wire_v1_frames.jsonl").read_bytes() == (
            v1_fixture_bytes()
        )

    def test_v2_raw_frame_byte_exact(self):
        assert (DATA / "wire_v2_raw.bin").read_bytes() == (
            v2_raw_fixture_bytes()
        )

    def test_v2_interned_frames_byte_exact(self):
        assert (DATA / "wire_v2_interned.bin").read_bytes() == (
            v2_interned_fixture_bytes()
        )

    def test_v2_raw_fixture_parses(self):
        ((opcode, flags, payload),) = _split_frames(
            (DATA / "wire_v2_raw.bin").read_bytes()
        )
        assert opcode == BIN_OP_FEED and flags == 0
        frame = parse_bin_feed(opcode, flags, payload)
        assert frame.session == "golden"
        assert not frame.interned and not frame.deflated
        lanes = frame.raw_lanes(V2_WIDTH)
        assert np.array_equal(
            lanes, masks_to_lanes(V2_RAW_MASKS, V2_WIDTH)
        )

    def test_v2_interned_fixture_parses(self):
        frames = _split_frames(
            (DATA / "wire_v2_interned.bin").read_bytes()
        )
        assert len(frames) == 2
        table = np.empty((0, lane_count(V2_WIDTH)), dtype=np.uint64)
        for (opcode, flags, payload), chunk in zip(
            frames, V2_INTERNED_CHUNKS
        ):
            assert flags == BIN_FLAG_INTERNED
            frame = parse_bin_feed(opcode, flags, payload)
            assert frame.base_epoch == table.shape[0]
            new_lanes, ids = frame.interned_parts(V2_WIDTH)
            table = np.concatenate([table, new_lanes])
            assert np.array_equal(
                table[ids], masks_to_lanes(chunk, V2_WIDTH)
            )
        # 3 fresh + 1 fresh distinct rows across the two chunks.
        assert table.shape[0] == 4


# ---------------------------------------------------------------------------
# Property round-trips
# ---------------------------------------------------------------------------


class TestBinaryRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(masks_for, st.sampled_from([None, False, True]))
    def test_raw_frames_survive_the_wire(self, width_masks, deflate):
        width, masks = width_masks
        lanes = masks_to_lanes(masks, width)
        wire = encode_feed_bin("s", lanes, width, deflate=deflate)
        ((opcode, flags, payload),) = _split_frames(wire)
        frame = parse_bin_feed(opcode, flags, payload)
        assert frame.count == len(masks)
        assert frame.deflated == bool(flags & BIN_FLAG_DEFLATE)
        assert np.array_equal(frame.raw_lanes(width), lanes)

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(BOUNDARY_SIZES),
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=7),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=5,
        ),
        st.sampled_from([None, False, True]),
    )
    def test_interned_sequence_round_trip(self, width, picks, deflate):
        # Draw masks from a tiny pool so chunks actually repeat rows.
        pool = [((1 << width) - 1) & ((i * 0x9E3779B9) | 1) for i in
                range(8)]
        chunks = [[pool[i] for i in chunk] for chunk in picks]
        client = ClientArena(width)
        table = np.empty((0, lane_count(width)), dtype=np.uint64)
        for chunk in chunks:
            lanes = masks_to_lanes(chunk, width)
            wire = encode_feed_bin(
                "s", lanes, width, arena=client, deflate=deflate
            )
            ((opcode, flags, payload),) = _split_frames(wire)
            frame = parse_bin_feed(opcode, flags, payload)
            assert flags & BIN_FLAG_INTERNED
            assert frame.base_epoch == table.shape[0]
            new_lanes, ids = frame.interned_parts(width)
            table = np.concatenate([table, new_lanes])
            assert np.array_equal(table[ids], lanes)
        assert table.shape[0] == client.epoch <= 8

    def test_bad_section_length_rejected(self):
        lanes = masks_to_lanes([1, 2, 3], 8)
        wire = encode_feed_bin("s", lanes, 8, deflate=False)
        ((opcode, flags, payload),) = _split_frames(wire)
        frame = parse_bin_feed(opcode, flags, payload[:-4])
        with pytest.raises(ProtocolError, match="expected"):
            frame.raw_lanes(8)

    def test_out_of_universe_bits_rejected(self):
        lanes = masks_to_lanes([1 << 9], 16)
        wire = encode_feed_bin("s", lanes, 16, deflate=False)
        ((opcode, flags, payload),) = _split_frames(wire)
        with pytest.raises(ProtocolError, match="beyond"):
            parse_bin_feed(opcode, flags, payload).raw_lanes(8)

    def test_unknown_opcode_and_flags_rejected(self):
        lanes = masks_to_lanes([1], 8)
        wire = encode_feed_bin("s", lanes, 8, deflate=False)
        ((opcode, flags, payload),) = _split_frames(wire)
        with pytest.raises(ProtocolError, match="opcode"):
            parse_bin_feed(99, flags, payload)
        with pytest.raises(ProtocolError, match="flags"):
            parse_bin_feed(opcode, 0x80, payload)

    def test_corrupt_deflate_rejected(self):
        lanes = masks_to_lanes([1, 2, 3, 1, 2, 3], 8)
        wire = encode_feed_bin("s", lanes, 8, deflate=True)
        ((opcode, flags, payload),) = _split_frames(wire)
        assert flags & BIN_FLAG_DEFLATE
        broken = payload[:-3] + b"\x00\x00\x00"
        frame = parse_bin_feed(opcode, flags, broken)
        with pytest.raises(ProtocolError, match="deflate|expected"):
            frame.raw_lanes(8)


class TestClientArena:
    def test_dedup_and_epoch(self):
        arena = ClientArena(8)
        base, new_lanes, ids = arena.intern(
            masks_to_lanes([3, 5, 3, 7], 8)
        )
        assert base == 0 and new_lanes.shape[0] == 3
        assert list(ids) == [0, 1, 0, 2]
        base, new_lanes, ids = arena.intern(masks_to_lanes([7, 9], 8))
        assert base == 3 and new_lanes.shape[0] == 1
        assert list(ids) == [2, 3]
        assert arena.epoch == 4

    def test_overflow_goes_raw(self):
        arena = ClientArena(8, cap=2)
        assert arena.intern(masks_to_lanes([1, 2, 3], 8)) is None
        assert not arena.active
        assert arena.epoch == 0  # nothing committed

    def test_divergent_stream_gives_up(self):
        arena = ClientArena(64)
        lanes = masks_to_lanes(
            list(range(1, ARENA_PROBE_ROWS + 1)), 64
        )
        assert arena.intern(lanes) is None
        assert not arena.active
        assert arena.intern(masks_to_lanes([1, 1], 64)) is None

    def test_repetitive_stream_keeps_interning(self):
        arena = ClientArena(64)
        chunk = masks_to_lanes([1, 2, 3, 4] * 300, 64)
        assert arena.intern(chunk) is not None
        assert arena.active
        assert arena.rows_seen == 1200 and arena.epoch == 4


class TestMaskArena:
    def test_intern_gather_round_trip(self):
        arena = MaskArena(96)
        masks = [0b101, 1 << 90, 0b101, 7]
        ids = arena.intern_masks(masks)
        assert arena.epoch == 3
        assert list(ids) == [0, 1, 0, 2]
        assert arena.masks_for(ids) == tuple(masks)
        assert np.array_equal(
            arena.rows(ids), masks_to_lanes(masks, 96)
        )

    def test_unknown_id_rejected(self):
        arena = MaskArena(8)
        arena.intern_masks([1])
        with pytest.raises(KeyError, match="beyond epoch"):
            arena.rows(np.array([1], dtype=np.uint32))

    def test_snapshot_and_extend_replica_sync(self):
        source, replica = MaskArena(8), MaskArena(8)
        source.intern_masks([1, 2, 3])
        upto, rows = source.snapshot_since(0)
        replica.extend_to(upto, rows)
        source.intern_masks([4, 2, 5])
        upto2, rows2 = source.snapshot_since(upto)
        assert rows2.shape[0] == 2  # only the fresh rows ship
        replica.extend_to(upto2, rows2)
        assert replica.epoch == source.epoch == 5
        assert replica.masks_for(range(5)) == source.masks_for(range(5))

    def test_extend_overlap_skips_and_gap_rejected(self):
        source, replica = MaskArena(8), MaskArena(8)
        source.intern_masks([1, 2, 3, 4])
        upto, rows = source.snapshot_since(0)
        # Fork-style overlap: replica already holds a prefix, so the
        # delta's first two rows must be skipped, not duplicated.
        replica.intern_masks([1, 2])
        replica.extend_to(upto, rows)
        assert replica.epoch == 4
        assert replica.masks_for(range(4)) == (1, 2, 3, 4)
        # Stale delta is a no-op.
        replica.extend_to(upto, rows)
        assert replica.epoch == 4
        # A delta starting beyond the replica's epoch is a hard error.
        gappy = MaskArena(8)
        with pytest.raises(ValueError, match="arena gap"):
            gappy.extend_to(6, rows)

    def test_registry_is_per_width(self):
        assert arena_for(8) is arena_for(8)
        assert arena_for(8) is not arena_for(16)
        arena_for(8).intern_masks([1, 2])
        assert arena_stats() == {8: 2, 16: 0}


# ---------------------------------------------------------------------------
# Served behavior
# ---------------------------------------------------------------------------

WIDTH = 40
TRACE = [
    ((1 << (i % 7)) | (0b101 if i % 3 else (1 << 30)))
    for i in range(180)
]


def _oracle_cost(masks=TRACE, width=WIDTH, w=5.0) -> float:
    session = StreamSession(
        policy_from_spec("rent_or_buy", w, {}),
        SwitchUniverse.of_size(width),
        w,
    )
    for mask in masks:
        session.feed(mask)
    return session.finish().cost


@pytest.fixture(scope="module")
def oracle_cost() -> float:
    return _oracle_cost()


class TestServedProtocolV2:
    @pytest.mark.parametrize("procs", [False, True])
    @pytest.mark.parametrize(
        "proto,deflate", [("json", None), ("bin", False), ("bin", True)]
    )
    def test_costs_bit_identical_across_protocols(
        self, procs, proto, deflate, oracle_cost
    ):
        config = ServeConfig(shards=2, shard_procs=procs)
        with ServerThread(config) as (host, port):
            with ServeClient(
                host, port, proto=proto, deflate=deflate
            ) as client:
                sid = client.open(width=WIDTH, w=5.0)
                assert client.proto == proto
                for lo in range(0, len(TRACE), 45):
                    client.feed(sid, TRACE[lo : lo + 45])
                assert client.close_session(sid).cost == oracle_cost

    def test_v1_client_full_flow_against_v2_server(self):
        """A pre-v2 client (no proto field, JSON frames only) must see
        exactly the old protocol."""
        with ServerThread(ServeConfig(shards=2)) as (host, port):
            with ServeClient(host, port, proto="json") as client:
                sid = client.open(
                    policy="window", width=16, w=4.0, k=4,
                    session_id="v1-user",
                )
                assert sid == "v1-user"
                result = client.feed(sid, [3, 5, 3])
                assert result.steps == 3
                closed = client.close_session(sid)
                assert closed.steps == 3
                stats = client.stats()
                assert stats["server"]["feeds"] == 1
                # The server never saw (or sent) a binary byte.
                assert client.proto == "json"
                assert stats["engine"]["wire"]["bin"]["frames_in"] == 0

    def test_pipelined_feeds_match_sequential(self, oracle_cost):
        with ServerThread(ServeConfig(shards=2)) as (host, port):
            with ServeClient(host, port, proto="bin") as client:
                sids = [
                    client.open(width=WIDTH, w=5.0, session_id=f"p{i}")
                    for i in range(5)
                ]
                for lo in range(0, len(TRACE), 36):
                    results = client.feed_pipelined([
                        (sid, TRACE[lo : lo + 36]) for sid in sids
                    ])
                    assert [r.session for r in results] == sids
                for sid in sids:
                    assert client.close_session(sid).cost == oracle_cost

    def test_epoch_mismatch_rejected_connection_survives(self):
        with ServerThread(ServeConfig(shards=1)) as (host, port):
            with ServeClient(host, port, proto="bin") as client:
                sid = client.open(width=8, w=2.0)
                client.feed(sid, [1, 2, 1])
                # Forge an interned frame whose base epoch is ahead of
                # the connection's table.
                arena = ClientArena(8)
                arena.intern(masks_to_lanes([9, 9, 9], 8))
                rogue = encode_feed_bin(
                    sid,
                    masks_to_lanes([3, 3], 8),
                    8,
                    arena=arena,
                    deflate=False,
                )
                client._send(rogue)
                reply = client._recv_reply()
                assert not reply["ok"]
                assert "base epoch" in reply["error"]
                # The connection (and session) still work — the
                # server's id map was not advanced by the rejected
                # frame, so the client's real arena is still in sync.
                assert client.stats()["ok"]
                assert client.feed(sid, [1]).steps == 1
                assert client.close_session(sid).steps == 4

    def test_malformed_binary_payload_rejected(self):
        with ServerThread(ServeConfig(shards=1)) as (host, port):
            with ServeClient(host, port, proto="bin") as client:
                sid = client.open(width=8, w=2.0)
                wire = bytearray(
                    encode_feed_bin(
                        sid, masks_to_lanes([1, 2], 8), 8, deflate=False
                    )
                )
                wire[-8:] = b""  # truncate the lane section
                header = wire[: BIN_HEADER.size]
                magic, version, opcode, flags, _ = BIN_HEADER.unpack(
                    bytes(header)
                )
                payload = bytes(wire[BIN_HEADER.size :])
                client._send(
                    BIN_HEADER.pack(
                        magic, version, opcode, flags, len(payload)
                    )
                    + payload
                )
                reply = client._recv_reply()
                assert not reply["ok"]
                # The connection survives payload-level garbage.
                assert client.feed(sid, [1, 2]).steps == 2

    def test_wire_counters_track_both_protocols(self):
        with ServerThread(ServeConfig(shards=1)) as (host, port):
            with ServeClient(host, port, proto="bin") as client:
                sid = client.open(width=8, w=2.0)
                client.feed(sid, [1, 2, 3])
                client.close_session(sid)
                wire = client.stats()["engine"]["wire"]
            assert wire["bin"]["frames_in"] == 1
            assert wire["bin"]["bytes_in"] > 0
            assert wire["json"]["frames_in"] >= 3  # open/close/stats
            assert wire["json"]["bytes_out"] > 0

    def test_server_arena_shared_across_connections(self):
        """Two connections interning the same masks share global rows."""
        with ServerThread(ServeConfig(shards=1)) as (host, port):
            for _ in range(2):
                with ServeClient(
                    host, port, proto="bin", deflate=False
                ) as client:
                    sid = client.open(width=24, w=3.0)
                    client.feed(sid, [1, 2, 3, 1])
                    client.close_session(sid)
            with ServeClient(host, port) as probe:
                arenas = probe.stats()["arenas"]
            # Same three distinct rows from both connections.
            assert arenas == {"24": 3}
