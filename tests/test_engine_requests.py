"""Canonicalization property tests (repro.engine.requests).

The contract under test: structurally equal requests — identical masks
over same-size universes, identical (task, sequence) multisets in any
order — share one cache key, and a result cached under that key is
byte-for-byte as good as a fresh solve for *every* member of the
equivalence class.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import RequirementSequence
from repro.core.switches import SwitchUniverse
from repro.core.task import TaskSystem
from repro.engine.batch import BatchEngine
from repro.engine.requests import (
    SolveRequest,
    canonical_key,
    canonicalize,
    from_canonical_result,
    to_canonical_result,
)
from repro.solvers.exhaustive import solve_mt_exhaustive
from repro.solvers.mt_exact import solve_mt_exact
from repro.solvers.mt_greedy import solve_mt_greedy_merge
from repro.solvers.single_dp import solve_single_switch

U8 = SwitchUniverse.of_size(8)

mask_lists = st.lists(
    st.integers(min_value=0, max_value=U8.full_mask), min_size=1, max_size=12
)


def _multi_instance(masks_a, masks_b, universe=None):
    universe = universe or U8
    system = TaskSystem.from_contiguous(universe, [4, 4])
    lo, hi = system.local_masks
    seqs = [
        RequirementSequence(universe, [m & lo for m in masks_a]),
        RequirementSequence(universe, [m & hi for m in masks_b]),
    ]
    return system, seqs


class TestSingleCanonicalization:
    @settings(deadline=None, max_examples=50)
    @given(mask_lists)
    def test_renamed_universe_shares_key(self, masks):
        """Switch names never enter the key — only size and masks."""
        named = SwitchUniverse([f"sw_{i}" for i in range(8)])
        a = SolveRequest.single(RequirementSequence(U8, masks), 8.0)
        b = SolveRequest.single(RequirementSequence(named, masks), 8.0)
        assert canonical_key(a) == canonical_key(b)

    @settings(deadline=None, max_examples=50)
    @given(mask_lists, mask_lists)
    def test_distinct_sequences_distinct_keys(self, masks_a, masks_b):
        a = SolveRequest.single(RequirementSequence(U8, masks_a), 8.0)
        b = SolveRequest.single(RequirementSequence(U8, masks_b), 8.0)
        assert (canonical_key(a) == canonical_key(b)) == (
            tuple(masks_a) == tuple(masks_b)
        )

    def test_key_depends_on_w_solver_and_params(self):
        seq = RequirementSequence(U8, [1, 2, 3])
        base = SolveRequest.single(seq, 8.0)
        assert canonical_key(base) != canonical_key(SolveRequest.single(seq, 9.0))
        assert canonical_key(base) != canonical_key(
            SolveRequest.single(seq, 8.0, solver="single_exhaustive")
        )
        assert canonical_key(base) != canonical_key(
            SolveRequest.single(seq, 8.0, max_block=3)
        )

    def test_unhashable_param_rejected_early(self):
        seq = RequirementSequence(U8, [1])
        with pytest.raises(TypeError, match="not hashable"):
            SolveRequest.single(seq, 8.0, options=["a", "b"])


class TestMultiCanonicalization:
    @settings(deadline=None, max_examples=50)
    @given(mask_lists, st.integers(min_value=0, max_value=U8.full_mask))
    def test_task_permutation_shares_key(self, masks, salt):
        """Listing the same (task, sequence) pairs in any order gives
        one key (permutation-identical requests)."""
        system, seqs = _multi_instance(masks, [m ^ salt for m in masks])
        permuted_system = TaskSystem(
            system.universe, [system.tasks[1], system.tasks[0]]
        )
        a = SolveRequest.multi(system, seqs, solver="mt_greedy")
        b = SolveRequest.multi(
            permuted_system, [seqs[1], seqs[0]], solver="mt_greedy"
        )
        assert canonical_key(a) == canonical_key(b)

    @settings(deadline=None, max_examples=50)
    @given(mask_lists)
    def test_renamed_tasks_share_key(self, masks):
        """Task names never enter the key — only local masks, v, seqs."""
        system, seqs = _multi_instance(masks, masks)
        renamed = TaskSystem.from_contiguous(
            system.universe, [4, 4], names=["alpha", "beta"]
        )
        a = SolveRequest.multi(system, seqs, solver="mt_greedy")
        b = SolveRequest.multi(renamed, seqs, solver="mt_greedy")
        assert canonical_key(a) == canonical_key(b)

    def test_model_and_solver_enter_key(self):
        from repro.core.machine import MachineModel

        system, seqs = _multi_instance([1, 2], [3, 4])
        base = SolveRequest.multi(system, seqs, solver="mt_greedy")
        other_solver = SolveRequest.multi(system, seqs, solver="mt_exact")
        with_model = SolveRequest.multi(
            system, seqs, MachineModel.paper_experimental(), solver="mt_greedy"
        )
        assert canonical_key(base) != canonical_key(other_solver)
        assert canonical_key(base) != canonical_key(with_model)

    def test_seq_count_validated(self):
        system, seqs = _multi_instance([1], [2])
        with pytest.raises(ValueError, match="one sequence per task"):
            SolveRequest.multi(system, seqs[:1])

    @settings(deadline=None, max_examples=30)
    @given(mask_lists)
    def test_canonical_result_round_trip(self, masks):
        """to_canonical ∘ from_canonical is the identity on schedules."""
        system, seqs = _multi_instance(masks, list(reversed(masks)))
        result = solve_mt_greedy_merge(system, seqs)
        form = canonicalize(SolveRequest.multi(system, seqs, solver="mt_greedy"))
        round_tripped = from_canonical_result(
            to_canonical_result(result, form), form
        )
        assert round_tripped.schedule == result.schedule
        assert round_tripped.cost == result.cost


class TestCacheHitsEqualFreshSolves:
    """Satellite acceptance: cache hits return results equal to fresh
    solves across at least three solvers."""

    SOLVERS = {
        "mt_exhaustive": solve_mt_exhaustive,
        "mt_exact": solve_mt_exact,
        "mt_greedy": solve_mt_greedy_merge,
    }

    @pytest.mark.parametrize("name", sorted(SOLVERS))
    def test_multi_solver_hit_equals_fresh(self, name):
        system, seqs = _multi_instance([1, 3, 2, 6], [5, 1, 7, 2])
        fresh = self.SOLVERS[name](system, seqs, None)
        engine = BatchEngine()
        request = SolveRequest.multi(system, seqs, solver=name)
        first = engine.solve(request)
        second = engine.solve(request)
        assert not first.cached and second.cached
        for res in (first, second):
            assert res.ok
            assert res.value.cost == pytest.approx(fresh.cost)
            assert res.value.schedule == fresh.schedule
            assert res.value.optimal == fresh.optimal

    def test_single_solver_hit_equals_fresh(self):
        seq = RequirementSequence(U8, [1, 3, 2, 6, 4])
        fresh = solve_single_switch(seq, 8.0)
        engine = BatchEngine()
        request = SolveRequest.single(seq, 8.0)
        first = engine.solve(request)
        second = engine.solve(request)
        assert not first.cached and second.cached
        assert second.value.cost == fresh.cost
        assert second.value.schedule == fresh.schedule

    def test_permuted_hit_remaps_schedule_rows(self):
        """A cache hit for a task-permuted request returns each task its
        own row, not the canonical order's."""
        system, seqs = _multi_instance([1, 3, 2], [6, 5, 7])
        engine = BatchEngine()
        base = engine.solve(
            SolveRequest.multi(system, seqs, solver="mt_exhaustive")
        )
        permuted_system = TaskSystem(
            system.universe, [system.tasks[1], system.tasks[0]]
        )
        permuted = engine.solve(
            SolveRequest.multi(
                permuted_system, [seqs[1], seqs[0]], solver="mt_exhaustive"
            )
        )
        assert permuted.cached
        assert permuted.value.cost == base.value.cost
        assert (
            permuted.value.schedule.indicators[0]
            == base.value.schedule.indicators[1]
        )
        assert (
            permuted.value.schedule.indicators[1]
            == base.value.schedule.indicators[0]
        )
